//! Compile-once evaluation: guards, invariants and updates as flat programs.
//!
//! The generic evaluator walks the [`IntExpr`]/[`Pred`] AST on every guard
//! check — a pointer chase per node, a `Vec` allocation per call (the
//! binder stack), and a virtual dispatch per variable read. This module
//! lowers the whole expression language once, per network, into flat
//! stack-machine programs:
//!
//! * variable and array reads are pre-resolved to **slots** in the state's
//!   flattened `vars` vector (scalars first, then array cells);
//! * `&&`/`||`/`Ite` become **short-circuit jumps**;
//! * bounded quantifiers become **counted loops** over a frame stack, with
//!   the de Bruijn index resolved to an absolute frame slot at compile
//!   time;
//! * [`Update::If`] becomes a conditional jump; assignments carry their
//!   domain bounds inline, so an update program needs no declaration
//!   lookups at all.
//!
//! Evaluation is allocation-free after warm-up: every thread reuses one
//! scratch [`Vm`] (an operand stack plus a loop-frame stack).
//!
//! ## Exact equivalence with the AST walker
//!
//! The compiler preserves the AST evaluator's observable semantics
//! bit-for-bit, including error behaviour: operand evaluation order
//! (left-to-right, except `Div`/`Rem` which check the divisor *before*
//! evaluating the dividend), short-circuit order of `And`/`Or`, the
//! [`MAX_QUANTIFIER_RANGE`] check before the first loop iteration, and the
//! precedence of `IndexOutOfBounds` over `DomainViolation` in array
//! assignments. The differential test-suite asserts trace equality between
//! the two engines on every fixture and on randomized workloads.

use std::cell::RefCell;

use crate::error::{EvalError, SimError};
use crate::expr::{CmpOp, IntExpr, Pred, MAX_QUANTIFIER_RANGE};
use crate::guard::{atom_delay_window, DelayWindow, Guard, Invariant};
use crate::ids::{ArrayId, AutomatonId, ClockId, EdgeId, LocationId, VarId};
use crate::network::Network;
use crate::state::State;
use crate::update::{LValue, Update};

/// Which expression evaluator the interpreters use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalEngine {
    /// Walk the `IntExpr`/`Pred` AST recursively (the reference engine).
    Ast,
    /// Run flat pre-compiled programs (the default).
    #[default]
    Bytecode,
}

impl EvalEngine {
    /// Parses an engine name as accepted by the CLI (`ast` | `bytecode`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ast" => Some(Self::Ast),
            "bytecode" => Some(Self::Bytecode),
            _ => None,
        }
    }
}

impl std::fmt::Display for EvalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Ast => f.write_str("ast"),
            Self::Bytecode => f.write_str("bytecode"),
        }
    }
}

/// One instruction of the stack machine.
///
/// Booleans are represented as `0`/`1` on the operand stack; every
/// boolean-producing instruction (`Cmp`, `Not`, quantifier steps, `Push` of
/// a predicate literal) pushes exactly `0` or `1`, which `AndCheck`/
/// `OrCheck` rely on to keep the short-circuited value as the result.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push a literal.
    Push(i64),
    /// Push `vars[slot]`.
    LoadVar(u32),
    /// Pop an index, bounds-check it against `len`, push `vars[base + i]`.
    LoadElem { array: u32, base: u32, len: u32 },
    /// Push the loop counter of the frame at absolute depth `slot`.
    LoadBound(u32),
    /// Raise `EvalError::UnboundParam` (an unbound template parameter was
    /// reached at runtime — same laziness as the AST walker).
    FailParam(u32),
    /// Raise `EvalError::UnboundIndex`.
    FailBound(u32),
    /// Pop `b`, pop `a`, push `a + b` (checked).
    Add,
    /// Pop `b`, pop `a`, push `a - b` (checked).
    Sub,
    /// Pop `b`, pop `a`, push `a * b` (checked).
    Mul,
    /// Peek the divisor; raise `DivisionByZero` if it is `0`. Emitted
    /// between the divisor and the dividend so the zero check happens
    /// before the dividend is evaluated, exactly as the AST walker does.
    CheckDivisor,
    /// Pop `a`, pop `d`, push `a.div_euclid(d)` (checked).
    Div,
    /// Pop `a`, pop `d`, push `a.rem_euclid(d)` (checked).
    Rem,
    /// Pop `a`, push `-a` (checked).
    Neg,
    /// Pop `b`, pop `a`, push `min(a, b)`.
    Min,
    /// Pop `b`, pop `a`, push `max(a, b)`.
    Max,
    /// Pop `b`, pop `a`, push `a ⋈ b` as `0`/`1`.
    Cmp(CmpOp),
    /// Pop `x`, push `!x`.
    Not,
    /// Fused `Push(k); Add`: pop `a`, push `a + k` (checked).
    AddConst(i64),
    /// Fused `Push(k); Cmp(op)`: pop `a`, push `a ⋈ k`.
    CmpConst { op: CmpOp, k: i64 },
    /// Fused `LoadVar(slot); Cmp(op)`: pop `a`, push `a ⋈ vars[slot]`.
    CmpVar { op: CmpOp, slot: u32 },
    /// Fused `LoadVar(slot); AddConst(add)`: push `vars[slot] + add`
    /// (checked).
    LoadVarConst { slot: u32, add: i64 },
    /// Fused `LoadBound(frame); AddConst(add)`: push `frames[frame].i + add`
    /// (checked).
    LoadBoundConst { frame: u32, add: i64 },
    /// Fused `LoadBound(frame); AddConst(add); LoadElem`: compute
    /// `frames[frame].i + add` (checked, in that order), bounds-check it,
    /// push `vars[base + i]`. `add == 0` is the plain
    /// `LoadBound; LoadElem` pair (the checked add of `0` cannot fail, so
    /// error behavior is unchanged).
    LoadElemBound { frame: u32, array: u32, base: u32, len: u32, add: i64 },
    /// Fused `CmpConst; OrCheck`: pop `a`; on `a ⋈ k` push `1` and jump.
    CmpConstOr { op: CmpOp, k: i64, target: u32 },
    /// Fused `CmpConst; AndCheck`: pop `a`; on `¬(a ⋈ k)` push `0` and
    /// jump.
    CmpConstAnd { op: CmpOp, k: i64, target: u32 },
    /// Fused `CmpVar; OrCheck`.
    CmpVarOr { op: CmpOp, slot: u32, target: u32 },
    /// Fused `CmpVar; AndCheck`.
    CmpVarAnd { op: CmpOp, slot: u32, target: u32 },
    /// Fused `Cmp; OrCheck`: pop `b`, pop `a`; on `a ⋈ b` push `1` and
    /// jump.
    CmpOr { op: CmpOp, target: u32 },
    /// Fused `Cmp; AndCheck`: pop `b`, pop `a`; on `¬(a ⋈ b)` push `0` and
    /// jump.
    CmpAnd { op: CmpOp, target: u32 },
    /// Fused `LoadElemBound; CmpVar`: push
    /// `vars[base + frames[frame].i + add] ⋈ vars[slot]` after the checked
    /// add and bounds check.
    CmpElemVar { frame: u32, array: u32, base: u32, len: u32, add: i64, op: CmpOp, slot: u32 },
    /// Fused `CmpElemVar; OrCheck`.
    CmpElemVarOr {
        frame: u32,
        array: u32,
        base: u32,
        len: u32,
        add: i64,
        op: CmpOp,
        slot: u32,
        target: u32,
    },
    /// Fused `CmpElemVar; AndCheck`.
    CmpElemVarAnd {
        frame: u32,
        array: u32,
        base: u32,
        len: u32,
        add: i64,
        op: CmpOp,
        slot: u32,
        target: u32,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump if the popped value is `0`.
    JumpIfFalse(u32),
    /// Short-circuit `&&`: if the top is `0` jump (keeping the `0` as the
    /// result), else pop and continue with the next conjunct.
    AndCheck(u32),
    /// Short-circuit `||`: if the top is non-`0` jump (keeping it), else
    /// pop and continue with the next disjunct.
    OrCheck(u32),
    /// Pop `hi`, pop `lo`; range-check; on an empty range push `1` and
    /// jump to `exit`, otherwise open a loop frame.
    ForAllEnter(u32),
    /// Pop the body's value; `0` closes the frame with result `0`;
    /// otherwise advance the counter and loop to `head` or close the frame
    /// with result `1` when exhausted.
    ForAllStep { head: u32, exit: u32 },
    /// As [`Op::ForAllEnter`] with result `0` on an empty range.
    ExistsEnter(u32),
    /// Dual of [`Op::ForAllStep`].
    ExistsStep { head: u32, exit: u32 },
    /// Fused quantifier-head scan for bodies gated on `arr[i + k] == lit`
    /// (`i` the loop counter): advance the innermost frame counter to the
    /// next gated index in a tight loop over the state vector, closing the
    /// frame with `identity` when none remains. Skipped iterations
    /// replicate the gate's own checked-add and bounds errors, and a
    /// gate-failing body evaluates to the loop identity without touching
    /// the rest of the body in both engines, so the scan is
    /// observationally identical to dispatching the body per index.
    LoopScanEq {
        /// Array id, for the out-of-bounds error payload.
        array: u32,
        /// Offset of the array's first cell in the state vector.
        base: u32,
        /// Array length (bounds check, as the unfused load).
        len: u32,
        /// Literal added to the loop counter by the gate's index.
        k: i64,
        /// Literal the gated cell is compared against.
        lit: i64,
        /// Result when the scan exhausts the range (`true` = forall).
        identity: bool,
        /// Jump target on exhaustion (the quantifier's exit).
        exit: u32,
    },
    /// Pop a value, check it against the inlined domain, store to
    /// `vars[slot]`.
    StoreVar { slot: u32, var: u32, min: i64, max: i64 },
    /// Pop an index, pop a value; bounds-check, domain-check, store to
    /// `vars[base + i]`.
    StoreElem { array: u32, base: u32, len: u32, min: i64, max: i64 },
    /// Reset a clock to zero.
    ClockReset(u32),
    /// Stop a clock.
    ClockStop(u32),
    /// Start a clock.
    ClockStart(u32),
}

/// One open quantifier loop: the current counter and the exclusive bound.
#[derive(Debug, Clone, Copy)]
struct Frame {
    i: i64,
    hi: i64,
}

/// Reusable evaluation scratch: the operand stack and the loop frames.
#[derive(Debug, Default)]
struct Vm {
    stack: Vec<i64>,
    frames: Vec<Frame>,
}

impl Vm {
    const fn new() -> Self {
        Self {
            stack: Vec::new(),
            frames: Vec::new(),
        }
    }
}

thread_local! {
    /// Per-thread scratch so evaluation never allocates after warm-up.
    /// Const-initialized: access compiles to the `#[thread_local]` fast
    /// path with no lazy-registration check.
    static SCRATCH: RefCell<Vm> = const { RefCell::new(Vm::new()) };
}

/// Where loads read from and stores write to.
///
/// Pure programs (guards, invariants, expressions) run against a read-only
/// variable slice; update programs run against the full mutable state. The
/// interpreter is generic over this so both monomorphize without branches.
trait Env {
    fn vars(&self) -> &[i64];
    fn set_var(&mut self, slot: usize, value: i64);
    fn clock_reset(&mut self, clock: usize);
    fn clock_stop(&mut self, clock: usize);
    fn clock_start(&mut self, clock: usize);
}

/// Read-only environment for pure programs.
struct ReadEnv<'a> {
    vars: &'a [i64],
}

impl Env for ReadEnv<'_> {
    #[inline]
    fn vars(&self) -> &[i64] {
        self.vars
    }

    fn set_var(&mut self, _slot: usize, _value: i64) {
        unreachable!("pure programs contain no store instructions")
    }

    fn clock_reset(&mut self, _clock: usize) {
        unreachable!("pure programs contain no clock instructions")
    }

    fn clock_stop(&mut self, _clock: usize) {
        unreachable!("pure programs contain no clock instructions")
    }

    fn clock_start(&mut self, _clock: usize) {
        unreachable!("pure programs contain no clock instructions")
    }
}

/// Mutable environment for update programs.
struct WriteEnv<'a> {
    state: &'a mut State,
}

impl Env for WriteEnv<'_> {
    #[inline]
    fn vars(&self) -> &[i64] {
        &self.state.vars
    }

    #[inline]
    fn set_var(&mut self, slot: usize, value: i64) {
        self.state.vars[slot] = value;
    }

    #[inline]
    fn clock_reset(&mut self, clock: usize) {
        self.state.reset_clock_at(clock);
    }

    #[inline]
    fn clock_stop(&mut self, clock: usize) {
        self.state.stop_clock_at(clock);
    }

    #[inline]
    fn clock_start(&mut self, clock: usize) {
        self.state.start_clock_at(clock);
    }
}

/// A compiled, flat, allocation-free program.
///
/// Obtained from [`Program::from_expr`], [`Program::from_pred`] or
/// [`Program::from_updates`]; slots are resolved against the network the
/// program was compiled for, so a program must only ever run against states
/// of that network (or a clone of it).
#[derive(Debug, Clone, Default)]
pub struct Program {
    code: Vec<Op>,
}

impl Program {
    /// Compiles an integer expression.
    #[must_use]
    pub fn from_expr(expr: &IntExpr, network: &Network) -> Self {
        let mut c = Compiler::new(network);
        c.expr(expr);
        Self { code: fuse(c.code) }
    }

    /// Compiles a predicate; the program leaves `0`/`1` on the stack.
    #[must_use]
    pub fn from_pred(pred: &Pred, network: &Network) -> Self {
        let mut c = Compiler::new(network);
        c.pred(pred);
        Self { code: fuse(c.code) }
    }

    /// Compiles an update sequence into one effectful program.
    #[must_use]
    pub fn from_updates(updates: &[Update], network: &Network) -> Self {
        let mut c = Compiler::new(network);
        for u in updates {
            c.update(u);
        }
        Self { code: fuse(c.code) }
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Evaluates a pure integer program against a state.
    ///
    /// # Errors
    ///
    /// Returns the same [`EvalError`] the AST walker would.
    pub fn eval_int(&self, state: &State) -> Result<i64, EvalError> {
        self.eval_vars(&state.vars)
    }

    /// Evaluates a pure integer program against a raw variable slice.
    ///
    /// # Errors
    ///
    /// Returns the same [`EvalError`] the AST walker would.
    pub fn eval_vars(&self, vars: &[i64]) -> Result<i64, EvalError> {
        SCRATCH.with(|scratch| {
            let vm = &mut *scratch.borrow_mut();
            let mut env = ReadEnv { vars };
            match run(&self.code, &mut env, vm) {
                Ok(()) => Ok(vm.stack.pop().expect("pure program leaves its result")),
                Err(SimError::Eval(e)) => Err(e),
                Err(other) => unreachable!("pure program raised {other}"),
            }
        })
    }

    /// Evaluates a pure boolean program against a state.
    ///
    /// # Errors
    ///
    /// Returns the same [`EvalError`] the AST walker would.
    pub fn eval_bool(&self, state: &State) -> Result<bool, EvalError> {
        Ok(self.eval_int(state)? != 0)
    }

    /// Runs an update program, mutating the state.
    ///
    /// # Errors
    ///
    /// Returns the same [`SimError`] as [`State::apply_updates`].
    pub fn exec(&self, state: &mut State) -> Result<(), SimError> {
        if self.code.is_empty() {
            return Ok(());
        }
        SCRATCH.with(|scratch| {
            let vm = &mut *scratch.borrow_mut();
            let mut env = WriteEnv { state };
            run(&self.code, &mut env, vm)
        })
    }
}

/// Splits a quantifier body whose first evaluated term gates every
/// iteration on `arr[i + k] == lit`, with `i` the loop's own counter:
/// `Or[Not(gate), rest…]` for forall (an implication), `And[gate, rest…]`
/// for exists. Scheduler-style models spend most iterations failing the
/// gate, so the loop head can advance the counter in a tight scan instead
/// of dispatching the body. Both engines evaluate the gate first and
/// short-circuit on failure, its comparison cannot error beyond the
/// replicated checked-add/bounds checks, and `rest` keeps its original
/// order — so the fused loop is observationally identical.
fn scan_gate(body: &Pred, forall: bool) -> Option<(ArrayId, i64, i64, &[Pred])> {
    if forall {
        let Pred::Or(ps) = body else { return None };
        let Pred::Not(gate) = ps.first()? else {
            return None;
        };
        let (a, k, lit) = elem_eq_gate(gate)?;
        Some((a, k, lit, &ps[1..]))
    } else {
        let Pred::And(ps) = body else { return None };
        let (a, k, lit) = elem_eq_gate(ps.first()?)?;
        Some((a, k, lit, &ps[1..]))
    }
}

/// Matches `arr[Bound(0) + k] == lit` (either operand order, `k`
/// optional), the gate shape [`scan_gate`] accepts.
fn elem_eq_gate(p: &Pred) -> Option<(ArrayId, i64, i64)> {
    let Pred::Cmp(CmpOp::Eq, l, r) = p else {
        return None;
    };
    let (elem, lit) = match (l.as_ref(), r.as_ref()) {
        (e @ IntExpr::Elem(..), IntExpr::Lit(c)) | (IntExpr::Lit(c), e @ IntExpr::Elem(..)) => {
            (e, *c)
        }
        _ => return None,
    };
    let IntExpr::Elem(a, idx) = elem else {
        return None;
    };
    let k = match idx.as_ref() {
        IntExpr::Bound(0) => 0,
        IntExpr::Add(x, y) => match (x.as_ref(), y.as_ref()) {
            (IntExpr::Bound(0), IntExpr::Lit(k)) | (IntExpr::Lit(k), IntExpr::Bound(0)) => *k,
            _ => return None,
        },
        _ => return None,
    };
    Some((*a, k, lit))
}

fn negate_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
    }
}

/// The jump targets of a program (positions that a fusion must not
/// swallow: fusing across one would change where the jump lands).
fn jump_targets(code: &[Op]) -> Vec<bool> {
    let mut t = vec![false; code.len() + 1];
    for op in code {
        match *op {
            Op::Jump(x)
            | Op::JumpIfFalse(x)
            | Op::AndCheck(x)
            | Op::OrCheck(x)
            | Op::ForAllEnter(x)
            | Op::ExistsEnter(x)
            | Op::CmpConstOr { target: x, .. }
            | Op::CmpConstAnd { target: x, .. }
            | Op::CmpVarOr { target: x, .. }
            | Op::CmpVarAnd { target: x, .. }
            | Op::CmpOr { target: x, .. }
            | Op::CmpAnd { target: x, .. }
            | Op::CmpElemVarOr { target: x, .. }
            | Op::CmpElemVarAnd { target: x, .. }
            | Op::LoopScanEq { exit: x, .. } => t[x as usize] = true,
            Op::ForAllStep { head, exit } | Op::ExistsStep { head, exit } => {
                t[head as usize] = true;
                t[exit as usize] = true;
            }
            _ => {}
        }
    }
    t
}

/// One superinstruction-fusion pass: collapses adjacent pairs into fused
/// opcodes (never across a jump target) and remaps every jump. Returns
/// `None` when nothing fused.
fn fuse_once(code: &[Op]) -> Option<Vec<Op>> {
    let targets = jump_targets(code);
    let mut new = Vec::with_capacity(code.len());
    let mut map = vec![0u32; code.len() + 1];
    let mut i = 0;
    let mut fused = false;
    while i < code.len() {
        map[i] = u32::try_from(new.len()).expect("program fits u32 addresses");
        let pair = (!targets[i + 1]).then(|| code.get(i + 1).copied()).flatten();
        let replacement = match (code[i], pair) {
            (Op::Push(k), Some(Op::Add)) => Some(Op::AddConst(k)),
            (Op::Push(k), Some(Op::Sub)) if k != i64::MIN => Some(Op::AddConst(-k)),
            (Op::Push(k), Some(Op::Cmp(op))) => Some(Op::CmpConst { op, k }),
            (Op::LoadVar(slot), Some(Op::Cmp(op))) => Some(Op::CmpVar { op, slot }),
            (Op::LoadVar(slot), Some(Op::AddConst(add))) => Some(Op::LoadVarConst { slot, add }),
            (Op::LoadBound(frame), Some(Op::AddConst(add))) => {
                Some(Op::LoadBoundConst { frame, add })
            }
            (Op::LoadBound(frame), Some(Op::LoadElem { array, base, len })) => {
                Some(Op::LoadElemBound {
                    frame,
                    array,
                    base,
                    len,
                    add: 0,
                })
            }
            (Op::LoadBoundConst { frame, add }, Some(Op::LoadElem { array, base, len })) => {
                Some(Op::LoadElemBound {
                    frame,
                    array,
                    base,
                    len,
                    add,
                })
            }
            (Op::CmpConst { op, k }, Some(Op::OrCheck(target))) => {
                Some(Op::CmpConstOr { op, k, target })
            }
            (Op::CmpConst { op, k }, Some(Op::AndCheck(target))) => {
                Some(Op::CmpConstAnd { op, k, target })
            }
            (Op::CmpVar { op, slot }, Some(Op::OrCheck(target))) => {
                Some(Op::CmpVarOr { op, slot, target })
            }
            (Op::CmpVar { op, slot }, Some(Op::AndCheck(target))) => {
                Some(Op::CmpVarAnd { op, slot, target })
            }
            (Op::Cmp(op), Some(Op::OrCheck(target))) => Some(Op::CmpOr { op, target }),
            (Op::Cmp(op), Some(Op::AndCheck(target))) => Some(Op::CmpAnd { op, target }),
            (
                Op::LoadElemBound {
                    frame,
                    array,
                    base,
                    len,
                    add,
                },
                Some(Op::CmpVar { op, slot }),
            ) => Some(Op::CmpElemVar {
                frame,
                array,
                base,
                len,
                add,
                op,
                slot,
            }),
            (
                Op::CmpElemVar {
                    frame,
                    array,
                    base,
                    len,
                    add,
                    op,
                    slot,
                },
                Some(Op::OrCheck(target)),
            ) => Some(Op::CmpElemVarOr {
                frame,
                array,
                base,
                len,
                add,
                op,
                slot,
                target,
            }),
            (
                Op::CmpElemVar {
                    frame,
                    array,
                    base,
                    len,
                    add,
                    op,
                    slot,
                },
                Some(Op::AndCheck(target)),
            ) => Some(Op::CmpElemVarAnd {
                frame,
                array,
                base,
                len,
                add,
                op,
                slot,
                target,
            }),
            (
                Op::CmpElemVar {
                    frame,
                    array,
                    base,
                    len,
                    add,
                    op,
                    slot,
                },
                Some(Op::Not),
            ) => Some(Op::CmpElemVar {
                frame,
                array,
                base,
                len,
                add,
                op: negate_cmp(op),
                slot,
            }),
            (Op::Cmp(op), Some(Op::Not)) => Some(Op::Cmp(negate_cmp(op))),
            (Op::CmpConst { op, k }, Some(Op::Not)) => Some(Op::CmpConst {
                op: negate_cmp(op),
                k,
            }),
            (Op::CmpVar { op, slot }, Some(Op::Not)) => Some(Op::CmpVar {
                op: negate_cmp(op),
                slot,
            }),
            _ => None,
        };
        if let Some(op) = replacement {
            map[i + 1] = map[i];
            new.push(op);
            fused = true;
            i += 2;
        } else {
            new.push(code[i]);
            i += 1;
        }
    }
    if !fused {
        return None;
    }
    map[code.len()] = u32::try_from(new.len()).expect("program fits u32 addresses");
    for op in &mut new {
        match op {
            Op::Jump(x)
            | Op::JumpIfFalse(x)
            | Op::AndCheck(x)
            | Op::OrCheck(x)
            | Op::ForAllEnter(x)
            | Op::ExistsEnter(x)
            | Op::CmpConstOr { target: x, .. }
            | Op::CmpConstAnd { target: x, .. }
            | Op::CmpVarOr { target: x, .. }
            | Op::CmpVarAnd { target: x, .. }
            | Op::CmpOr { target: x, .. }
            | Op::CmpAnd { target: x, .. }
            | Op::CmpElemVarOr { target: x, .. }
            | Op::CmpElemVarAnd { target: x, .. }
            | Op::LoopScanEq { exit: x, .. } => *x = map[*x as usize],
            Op::ForAllStep { head, exit } | Op::ExistsStep { head, exit } => {
                *head = map[*head as usize];
                *exit = map[*exit as usize];
            }
            _ => {}
        }
    }
    Some(new)
}

/// Runs fusion passes to a fixpoint (fused opcodes enable further pairs,
/// e.g. `Cmp`+`Not` exposing a `Push`+`Cmp`).
fn fuse(mut code: Vec<Op>) -> Vec<Op> {
    while let Some(next) = fuse_once(&code) {
        code = next;
    }
    code
}


/// The interpreter loop, monomorphized per environment.
#[allow(clippy::too_many_lines)]
fn run<E: Env>(code: &[Op], env: &mut E, vm: &mut Vm) -> Result<(), SimError> {
    vm.stack.clear();
    vm.frames.clear();
    let stack = &mut vm.stack;
    let frames = &mut vm.frames;
    let mut pc = 0usize;

    macro_rules! pop {
        () => {
            stack.pop().expect("balanced program")
        };
    }
    macro_rules! binop {
        ($f:ident) => {{
            let b = pop!();
            let a = pop!();
            stack.push(a.$f(b).ok_or(EvalError::Overflow)?);
        }};
    }
    // Shared body of the `LoadElemBound`-family ops: checked add of the
    // constant offset to the loop counter, then the bounds check — the
    // exact error order of the unfused `LoadBound; AddConst; LoadElem`.
    macro_rules! elem_bound {
        ($frame:expr, $array:expr, $base:expr, $len:expr, $add:expr) => {{
            let index = frames[$frame as usize]
                .i
                .checked_add($add)
                .ok_or(EvalError::Overflow)?;
            let Some(i) = usize::try_from(index).ok().filter(|i| *i < $len as usize) else {
                return Err(EvalError::IndexOutOfBounds {
                    array: $array,
                    index,
                    len: $len as usize,
                }
                .into());
            };
            env.vars()[$base as usize + i]
        }};
    }

    while let Some(op) = code.get(pc) {
        match *op {
            Op::Push(v) => stack.push(v),
            Op::LoadVar(slot) => stack.push(env.vars()[slot as usize]),
            Op::LoadElem { array, base, len } => {
                let index = pop!();
                let Some(i) = usize::try_from(index).ok().filter(|i| *i < len as usize) else {
                    return Err(EvalError::IndexOutOfBounds {
                        array,
                        index,
                        len: len as usize,
                    }
                    .into());
                };
                stack.push(env.vars()[base as usize + i]);
            }
            Op::LoadBound(slot) => stack.push(frames[slot as usize].i),
            Op::FailParam(p) => return Err(EvalError::UnboundParam(p).into()),
            Op::FailBound(d) => return Err(EvalError::UnboundIndex(d as usize).into()),
            Op::Add => binop!(checked_add),
            Op::Sub => binop!(checked_sub),
            Op::Mul => binop!(checked_mul),
            Op::CheckDivisor => {
                if *stack.last().expect("balanced program") == 0 {
                    return Err(EvalError::DivisionByZero.into());
                }
            }
            Op::Div => {
                let a = pop!();
                let d = pop!();
                stack.push(a.checked_div_euclid(d).ok_or(EvalError::Overflow)?);
            }
            Op::Rem => {
                let a = pop!();
                let d = pop!();
                stack.push(a.checked_rem_euclid(d).ok_or(EvalError::Overflow)?);
            }
            Op::Neg => {
                let a = pop!();
                stack.push(a.checked_neg().ok_or(EvalError::Overflow)?);
            }
            Op::Min => {
                let b = pop!();
                let a = pop!();
                stack.push(a.min(b));
            }
            Op::Max => {
                let b = pop!();
                let a = pop!();
                stack.push(a.max(b));
            }
            Op::Cmp(cmp) => {
                let b = pop!();
                let a = pop!();
                stack.push(i64::from(cmp.apply(a, b)));
            }
            Op::Not => {
                let x = pop!();
                stack.push(i64::from(x == 0));
            }
            Op::AddConst(k) => {
                let a = pop!();
                stack.push(a.checked_add(k).ok_or(EvalError::Overflow)?);
            }
            Op::CmpConst { op, k } => {
                let a = pop!();
                stack.push(i64::from(op.apply(a, k)));
            }
            Op::CmpVar { op, slot } => {
                let a = pop!();
                stack.push(i64::from(op.apply(a, env.vars()[slot as usize])));
            }
            Op::LoadVarConst { slot, add } => {
                let v = env.vars()[slot as usize]
                    .checked_add(add)
                    .ok_or(EvalError::Overflow)?;
                stack.push(v);
            }
            Op::LoadBoundConst { frame, add } => {
                let v = frames[frame as usize]
                    .i
                    .checked_add(add)
                    .ok_or(EvalError::Overflow)?;
                stack.push(v);
            }
            Op::LoadElemBound {
                frame,
                array,
                base,
                len,
                add,
            } => {
                let v = elem_bound!(frame, array, base, len, add);
                stack.push(v);
            }
            Op::CmpConstOr { op, k, target } => {
                let a = pop!();
                if op.apply(a, k) {
                    stack.push(1);
                    pc = target as usize;
                    continue;
                }
            }
            Op::CmpConstAnd { op, k, target } => {
                let a = pop!();
                if !op.apply(a, k) {
                    stack.push(0);
                    pc = target as usize;
                    continue;
                }
            }
            Op::CmpVarOr { op, slot, target } => {
                let a = pop!();
                if op.apply(a, env.vars()[slot as usize]) {
                    stack.push(1);
                    pc = target as usize;
                    continue;
                }
            }
            Op::CmpVarAnd { op, slot, target } => {
                let a = pop!();
                if !op.apply(a, env.vars()[slot as usize]) {
                    stack.push(0);
                    pc = target as usize;
                    continue;
                }
            }
            Op::CmpOr { op, target } => {
                let b = pop!();
                let a = pop!();
                if op.apply(a, b) {
                    stack.push(1);
                    pc = target as usize;
                    continue;
                }
            }
            Op::CmpAnd { op, target } => {
                let b = pop!();
                let a = pop!();
                if !op.apply(a, b) {
                    stack.push(0);
                    pc = target as usize;
                    continue;
                }
            }
            Op::CmpElemVar {
                frame,
                array,
                base,
                len,
                add,
                op,
                slot,
            } => {
                let a = elem_bound!(frame, array, base, len, add);
                stack.push(i64::from(op.apply(a, env.vars()[slot as usize])));
            }
            Op::CmpElemVarOr {
                frame,
                array,
                base,
                len,
                add,
                op,
                slot,
                target,
            } => {
                let a = elem_bound!(frame, array, base, len, add);
                if op.apply(a, env.vars()[slot as usize]) {
                    stack.push(1);
                    pc = target as usize;
                    continue;
                }
            }
            Op::CmpElemVarAnd {
                frame,
                array,
                base,
                len,
                add,
                op,
                slot,
                target,
            } => {
                let a = elem_bound!(frame, array, base, len, add);
                if !op.apply(a, env.vars()[slot as usize]) {
                    stack.push(0);
                    pc = target as usize;
                    continue;
                }
            }
            Op::Jump(t) => {
                pc = t as usize;
                continue;
            }
            Op::JumpIfFalse(t) => {
                if pop!() == 0 {
                    pc = t as usize;
                    continue;
                }
            }
            Op::AndCheck(t) => {
                if *stack.last().expect("balanced program") == 0 {
                    pc = t as usize;
                    continue;
                }
                stack.pop();
            }
            Op::OrCheck(t) => {
                if *stack.last().expect("balanced program") != 0 {
                    pc = t as usize;
                    continue;
                }
                stack.pop();
            }
            Op::ForAllEnter(exit) => {
                let hi = pop!();
                let lo = pop!();
                if hi.saturating_sub(lo) > MAX_QUANTIFIER_RANGE {
                    return Err(EvalError::RangeTooLarge { lo, hi }.into());
                }
                if lo >= hi {
                    stack.push(1);
                    pc = exit as usize;
                    continue;
                }
                frames.push(Frame { i: lo, hi });
            }
            Op::ForAllStep { head, exit } => {
                let holds = pop!();
                let frame = frames.last_mut().expect("open loop frame");
                if holds == 0 {
                    frames.pop();
                    stack.push(0);
                } else {
                    frame.i += 1;
                    if frame.i < frame.hi {
                        pc = head as usize;
                        continue;
                    }
                    frames.pop();
                    stack.push(1);
                }
                pc = exit as usize;
                continue;
            }
            Op::ExistsEnter(exit) => {
                let hi = pop!();
                let lo = pop!();
                if hi.saturating_sub(lo) > MAX_QUANTIFIER_RANGE {
                    return Err(EvalError::RangeTooLarge { lo, hi }.into());
                }
                if lo >= hi {
                    stack.push(0);
                    pc = exit as usize;
                    continue;
                }
                frames.push(Frame { i: lo, hi });
            }
            Op::ExistsStep { head, exit } => {
                let holds = pop!();
                let frame = frames.last_mut().expect("open loop frame");
                if holds != 0 {
                    frames.pop();
                    stack.push(1);
                } else {
                    frame.i += 1;
                    if frame.i < frame.hi {
                        pc = head as usize;
                        continue;
                    }
                    frames.pop();
                    stack.push(0);
                }
                pc = exit as usize;
                continue;
            }
            Op::LoopScanEq {
                array,
                base,
                len,
                k,
                lit,
                identity,
                exit,
            } => {
                let frame = frames.last_mut().expect("open loop frame");
                loop {
                    if frame.i >= frame.hi {
                        frames.pop();
                        stack.push(i64::from(identity));
                        pc = exit as usize;
                        break;
                    }
                    let index = frame
                        .i
                        .checked_add(k)
                        .ok_or(EvalError::Overflow)?;
                    let Some(j) = usize::try_from(index).ok().filter(|j| *j < len as usize)
                    else {
                        return Err(EvalError::IndexOutOfBounds {
                            array,
                            index,
                            len: len as usize,
                        }
                        .into());
                    };
                    if env.vars()[base as usize + j] == lit {
                        pc += 1;
                        break;
                    }
                    frame.i += 1;
                }
                continue;
            }
            Op::StoreVar { slot, var, min, max } => {
                let value = pop!();
                if value < min || value > max {
                    return Err(SimError::DomainViolation {
                        var: VarId::from_raw(var),
                        value,
                        domain: (min, max),
                    });
                }
                env.set_var(slot as usize, value);
            }
            Op::StoreElem { array, base, len, min, max } => {
                let index = pop!();
                let value = pop!();
                let Some(i) = usize::try_from(index).ok().filter(|i| *i < len as usize) else {
                    return Err(SimError::Eval(EvalError::IndexOutOfBounds {
                        array,
                        index,
                        len: len as usize,
                    }));
                };
                if value < min || value > max {
                    return Err(SimError::DomainViolation {
                        var: VarId::from_raw(u32::MAX),
                        value,
                        domain: (min, max),
                    });
                }
                env.set_var(base as usize + i, value);
            }
            Op::ClockReset(c) => env.clock_reset(c as usize),
            Op::ClockStop(c) => env.clock_stop(c as usize),
            Op::ClockStart(c) => env.clock_start(c as usize),
        }
        pc += 1;
    }
    Ok(())
}

/// The lowering pass. `depth` tracks the static quantifier nesting so de
/// Bruijn indices resolve to absolute frame slots.
struct Compiler<'n> {
    network: &'n Network,
    code: Vec<Op>,
    depth: u32,
}

impl<'n> Compiler<'n> {
    fn new(network: &'n Network) -> Self {
        Self {
            network,
            code: Vec::new(),
            depth: 0,
        }
    }

    fn here(&self) -> u32 {
        u32::try_from(self.code.len()).expect("program fits u32 addresses")
    }

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.code.len() - 1
    }

    /// Rewrites the jump target of the instruction at `at` to `target`.
    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::AndCheck(t)
            | Op::OrCheck(t)
            | Op::ForAllEnter(t)
            | Op::ExistsEnter(t) => *t = target,
            Op::ForAllStep { exit, .. }
            | Op::ExistsStep { exit, .. }
            | Op::LoopScanEq { exit, .. } => *exit = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn expr(&mut self, e: &IntExpr) {
        match e {
            IntExpr::Lit(v) => {
                self.emit(Op::Push(*v));
            }
            IntExpr::Var(v) => {
                self.emit(Op::LoadVar(v.raw()));
            }
            IntExpr::Elem(a, idx) => {
                self.expr(idx);
                let base = u32::try_from(self.network.array_offset(*a))
                    .expect("state vector fits u32 slots");
                let len =
                    u32::try_from(self.network.array_len(*a)).expect("array length fits u32");
                // Peephole: a constant in-bounds index folds to a direct
                // slot load; out-of-range constants keep the checked form
                // so the runtime error is preserved.
                if let Some(Op::Push(i)) = self.code.last() {
                    if let Some(i) = u32::try_from(*i).ok().filter(|i| *i < len) {
                        self.code.pop();
                        self.emit(Op::LoadVar(base + i));
                        return;
                    }
                }
                self.emit(Op::LoadElem {
                    array: a.raw(),
                    base,
                    len,
                });
            }
            IntExpr::Param(p) => {
                // Never returns when executed, so no balancing push needed.
                self.emit(Op::FailParam(p.raw()));
            }
            IntExpr::Bound(d) => {
                if let Ok(d32) = u32::try_from(*d) {
                    if d32 < self.depth {
                        self.emit(Op::LoadBound(self.depth - 1 - d32));
                        return;
                    }
                }
                self.emit(Op::FailBound(u32::try_from(*d).unwrap_or(u32::MAX)));
            }
            IntExpr::Add(a, b) => {
                self.binop_folded(a, b, Op::Add, 0, i64::checked_add);
            }
            IntExpr::Sub(a, b) => {
                self.binop_folded(a, b, Op::Sub, 0, i64::checked_sub);
            }
            IntExpr::Mul(a, b) => {
                self.binop_folded(a, b, Op::Mul, 1, i64::checked_mul);
            }
            IntExpr::Div(a, b) => {
                // Divisor first, zero-checked before the dividend runs —
                // the AST walker's error order.
                self.expr(b);
                self.emit(Op::CheckDivisor);
                self.expr(a);
                self.emit(Op::Div);
            }
            IntExpr::Rem(a, b) => {
                self.expr(b);
                self.emit(Op::CheckDivisor);
                self.expr(a);
                self.emit(Op::Rem);
            }
            IntExpr::Neg(a) => {
                self.expr(a);
                self.emit(Op::Neg);
            }
            IntExpr::Min(a, b) => {
                self.expr(a);
                self.expr(b);
                self.emit(Op::Min);
            }
            IntExpr::Max(a, b) => {
                self.expr(a);
                self.expr(b);
                self.emit(Op::Max);
            }
            IntExpr::Ite(p, t, e) => {
                self.pred(p);
                let jf = self.emit(Op::JumpIfFalse(0));
                self.expr(t);
                let j = self.emit(Op::Jump(0));
                let else_at = self.here();
                self.patch(jf, else_at);
                self.expr(e);
                let end = self.here();
                self.patch(j, end);
            }
        }
    }

    /// Emits `a`, `b` and the operator, folding two literal operands into
    /// one `Push` (unless the fold itself would overflow — the runtime
    /// error is kept) and dropping the operation entirely when `b` is the
    /// right identity (`x + 0`, `x - 0`, `x * 1`).
    fn binop_folded(
        &mut self,
        a: &IntExpr,
        b: &IntExpr,
        op: Op,
        identity: i64,
        fold: fn(i64, i64) -> Option<i64>,
    ) {
        let a_start = self.code.len();
        self.expr(a);
        let b_start = self.code.len();
        self.expr(b);
        if self.code.len() == b_start + 1 {
            if let Some(Op::Push(y)) = self.code.last().copied() {
                // Both operands literal (a single op each) — fold.
                if b_start == a_start + 1 {
                    if let Op::Push(x) = self.code[a_start] {
                        if let Some(v) = fold(x, y) {
                            self.code.truncate(a_start);
                            self.emit(Op::Push(v));
                            return;
                        }
                    }
                }
                if y == identity {
                    self.code.pop();
                    return;
                }
            }
        }
        self.emit(op);
    }

    fn pred(&mut self, p: &Pred) {
        match p {
            Pred::Lit(b) => {
                self.emit(Op::Push(i64::from(*b)));
            }
            Pred::Cmp(op, a, b) => {
                self.expr(a);
                self.expr(b);
                self.emit(Op::Cmp(*op));
            }
            Pred::Not(q) => {
                self.pred(q);
                self.emit(Op::Not);
            }
            Pred::And(ps) => self.chain(ps, true),
            Pred::Or(ps) => self.chain(ps, false),
            Pred::ForAll { lo, hi, body } => self.quantifier(lo, hi, body, true),
            Pred::Exists { lo, hi, body } => self.quantifier(lo, hi, body, false),
        }
    }

    /// Short-circuit conjunction (`and = true`) or disjunction chain.
    fn chain(&mut self, ps: &[Pred], and: bool) {
        let Some((last, init)) = ps.split_last() else {
            self.emit(Op::Push(i64::from(and)));
            return;
        };
        let mut checks = Vec::with_capacity(init.len());
        for p in init {
            self.pred(p);
            checks.push(self.emit(if and { Op::AndCheck(0) } else { Op::OrCheck(0) }));
        }
        self.pred(last);
        let end = self.here();
        for at in checks {
            self.patch(at, end);
        }
    }

    /// Compiles a bounded quantifier, fusing a counter-gated body into a
    /// [`Op::LoopScanEq`] head when the shape allows (see [`scan_gate`]).
    fn quantifier(&mut self, lo: &IntExpr, hi: &IntExpr, body: &Pred, forall: bool) {
        self.expr(lo);
        self.expr(hi);
        let enter = self.emit(if forall {
            Op::ForAllEnter(0)
        } else {
            Op::ExistsEnter(0)
        });
        let head = self.here();
        let gate = scan_gate(body, forall);
        let scan = gate.map(|(a, k, lit, _)| {
            let base = u32::try_from(self.network.array_offset(a))
                .expect("state vector fits u32 slots");
            let len = u32::try_from(self.network.array_len(a)).expect("array length fits u32");
            self.emit(Op::LoopScanEq {
                array: a.raw(),
                base,
                len,
                k,
                lit,
                identity: forall,
                exit: 0,
            })
        });
        self.depth += 1;
        match gate {
            Some((_, _, _, rest)) => self.chain(rest, !forall),
            None => self.pred(body),
        }
        self.depth -= 1;
        let step = self.emit(if forall {
            Op::ForAllStep { head, exit: 0 }
        } else {
            Op::ExistsStep { head, exit: 0 }
        });
        let exit = self.here();
        self.patch(enter, exit);
        self.patch(step, exit);
        if let Some(at) = scan {
            self.patch(at, exit);
        }
    }

    fn update(&mut self, u: &Update) {
        match u {
            Update::Assign { target, value } => {
                self.expr(value);
                match target {
                    LValue::Var(v) => {
                        let decl = &self.network.vars()[v.index()];
                        self.emit(Op::StoreVar {
                            slot: v.raw(),
                            var: v.raw(),
                            min: decl.min,
                            max: decl.max,
                        });
                    }
                    LValue::Elem(a, idx) => {
                        self.expr(idx);
                        let decl = &self.network.arrays()[a.index()];
                        self.emit(Op::StoreElem {
                            array: a.raw(),
                            base: u32::try_from(self.network.array_offset(*a))
                                .expect("state vector fits u32 slots"),
                            len: u32::try_from(self.network.array_len(*a))
                                .expect("array length fits u32"),
                            min: decl.min,
                            max: decl.max,
                        });
                    }
                }
            }
            Update::ResetClock(c) => {
                self.emit(Op::ClockReset(c.raw()));
            }
            Update::StopClock(c) => {
                self.emit(Op::ClockStop(c.raw()));
            }
            Update::StartClock(c) => {
                self.emit(Op::ClockStart(c.raw()));
            }
            Update::If {
                cond,
                then,
                otherwise,
            } => {
                self.pred(cond);
                let jf = self.emit(Op::JumpIfFalse(0));
                for u in then {
                    self.update(u);
                }
                let j = self.emit(Op::Jump(0));
                let else_at = self.here();
                self.patch(jf, else_at);
                for u in otherwise {
                    self.update(u);
                }
                let end = self.here();
                self.patch(j, end);
            }
        }
    }
}

/// A guard in compiled form: the clock-free predicates as a short-circuit
/// conjunction of terms plus the clock atoms with compiled right-hand
/// sides.
#[derive(Debug, Clone)]
pub struct CompiledGuard {
    terms: Vec<PredTerm>,
    atoms: Vec<CompiledClockAtom>,
}

/// One operand of a fast-path comparison.
#[derive(Debug, Clone, Copy)]
enum Operand {
    Const(i64),
    Slot(u32),
}

impl Operand {
    fn of(op: &Op) -> Option<Self> {
        match op {
            Op::Push(v) => Some(Self::Const(*v)),
            Op::LoadVar(s) => Some(Self::Slot(*s)),
            _ => None,
        }
    }

    #[inline]
    fn get(self, vars: &[i64]) -> i64 {
        match self {
            Self::Const(v) => v,
            Self::Slot(s) => vars[s as usize],
        }
    }
}

/// One conjunct of a compiled guard predicate.
///
/// Scheduler-dispatch guards open with comparisons over variables and
/// constant-indexed array cells (`is_ready[3] == 1 && …`); those compile
/// to inline [`PredTerm::Cmp`] terms that evaluate — and short-circuit —
/// without entering the interpreter at all.
#[derive(Debug, Clone)]
enum PredTerm {
    Cmp { lhs: Operand, op: CmpOp, rhs: Operand },
    Prog(Program),
}

impl PredTerm {
    fn compile(pred: &Pred, network: &Network) -> Self {
        let p = Program::from_pred(pred, network);
        let fast = match p.code.as_slice() {
            [a, b, Op::Cmp(op)] => Operand::of(a)
                .zip(Operand::of(b))
                .map(|(lhs, rhs)| (lhs, *op, rhs)),
            [a, Op::CmpConst { op, k }] => {
                Operand::of(a).map(|lhs| (lhs, *op, Operand::Const(*k)))
            }
            [a, Op::CmpVar { op, slot }] => {
                Operand::of(a).map(|lhs| (lhs, *op, Operand::Slot(*slot)))
            }
            _ => None,
        };
        match fast {
            Some((lhs, op, rhs)) => Self::Cmp { lhs, op, rhs },
            None => Self::Prog(p),
        }
    }

    #[inline]
    fn eval(&self, vars: &[i64]) -> Result<bool, EvalError> {
        match self {
            Self::Cmp { lhs, op, rhs } => Ok(op.apply(lhs.get(vars), rhs.get(vars))),
            Self::Prog(p) => Ok(p.eval_vars(vars)? != 0),
        }
    }

    /// Instruction count for [`CompileStats`] (a fast comparison counts
    /// as the three instructions it replaced).
    fn ops(&self) -> usize {
        match self {
            Self::Cmp { .. } => 3,
            Self::Prog(p) => p.len(),
        }
    }
}

#[derive(Debug, Clone)]
struct CompiledClockAtom {
    clock: ClockId,
    op: CmpOp,
    rhs: Rhs,
}

/// A compiled right-hand side with the two overwhelmingly common shapes —
/// a literal and a bare variable — folded out of the interpreter entirely,
/// so `c ≤ 5` and `c ≤ deadline` cost a comparison, not a program run.
#[derive(Debug, Clone)]
enum Rhs {
    Const(i64),
    Var(u32),
    Prog(Program),
}

impl Rhs {
    fn compile(expr: &IntExpr, network: &Network) -> Self {
        let p = Program::from_expr(expr, network);
        match p.code.as_slice() {
            [Op::Push(v)] => Self::Const(*v),
            [Op::LoadVar(slot)] => Self::Var(*slot),
            _ => Self::Prog(p),
        }
    }

    #[inline]
    fn eval(&self, vars: &[i64]) -> Result<i64, EvalError> {
        match self {
            Self::Const(v) => Ok(*v),
            Self::Var(slot) => Ok(vars[*slot as usize]),
            Self::Prog(p) => p.eval_vars(vars),
        }
    }

    /// Instruction count for [`CompileStats`] (folded forms count as the
    /// one instruction they replaced).
    fn ops(&self) -> usize {
        match self {
            Self::Const(_) | Self::Var(_) => 1,
            Self::Prog(p) => p.len(),
        }
    }
}

/// Flattens a guard's clock-free part into its top-level conjuncts
/// (nested `Pred::And` nodes dissolve). This is the *conjunct numbering*
/// both engines share: `CompiledGuard` compiles one term per entry and
/// short-circuits left to right, and the forensic first-failing-conjunct
/// probe reports positions in exactly this list, so a diagnosis names the
/// same atom whichever engine produced it.
pub(crate) fn flatten_preds(preds: &[Pred]) -> Vec<&Pred> {
    fn flatten<'p>(p: &'p Pred, out: &mut Vec<&'p Pred>) {
        if let Pred::And(ps) = p {
            for q in ps {
                flatten(q, out);
            }
        } else {
            out.push(p);
        }
    }
    let mut flat = Vec::new();
    for p in preds {
        flatten(p, &mut flat);
    }
    flat
}

/// Position of the first failing conjunct of a guard, in the shared
/// numbering of [`flatten_preds`]: clock-free conjuncts first (in
/// flattened order), then clock atoms (in declaration order) — the order
/// both engines evaluate and short-circuit in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GuardConjunct {
    /// Index into the flattened clock-free conjunct list.
    Pred(usize),
    /// Index into `Guard::clock_atoms`.
    ClockAtom(usize),
}

impl CompiledGuard {
    /// Compiles a guard for `network`.
    #[must_use]
    pub fn compile(guard: &Guard, network: &Network) -> Self {
        // Top-level conjunctions flatten into separate terms: a dispatch
        // guard `a == 0 && ready[i] == 1 && ∀…` evaluates (and usually
        // short-circuits) on inline comparisons, entering the interpreter
        // only for the quantifier. Evaluation and error order match the
        // AST walker's left-to-right conjunction exactly.
        let terms = flatten_preds(&guard.preds)
            .into_iter()
            .map(|p| PredTerm::compile(p, network))
            .collect();
        let atoms = guard
            .clock_atoms
            .iter()
            .map(|a| CompiledClockAtom {
                clock: a.clock,
                op: a.op,
                rhs: Rhs::compile(&a.rhs, network),
            })
            .collect();
        Self { terms, atoms }
    }

    /// As [`Guard::holds`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors in the same order as the AST walker.
    pub fn holds(&self, state: &State) -> Result<bool, EvalError> {
        self.holds_flat(state.clock_values(), &state.vars)
    }

    /// As [`CompiledGuard::holds`], over pre-hoisted flat slices — the
    /// batch entry point used by the fast path's per-wakeup guard pass,
    /// where the clock-value and variable slices are loaded once for a
    /// whole ready set instead of per edge.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors in the same order as the AST walker.
    #[inline]
    pub fn holds_flat(&self, clock_values: &[i64], vars: &[i64]) -> Result<bool, EvalError> {
        for t in &self.terms {
            if !t.eval(vars)? {
                return Ok(false);
            }
        }
        for a in &self.atoms {
            let rhs = a.rhs.eval(vars)?;
            if !a.op.apply(clock_values[a.clock.index()], rhs) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// As [`Guard::enabling_window`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors in the same order as the AST walker.
    pub fn enabling_window(&self, state: &State) -> Result<Option<DelayWindow>, EvalError> {
        for t in &self.terms {
            if !t.eval(&state.vars)? {
                return Ok(None);
            }
        }
        let mut window = DelayWindow::full();
        for a in &self.atoms {
            let rhs = a.rhs.eval(&state.vars)?;
            let cv = state.clock(a.clock);
            match atom_delay_window(a.op, cv.value, cv.running, rhs) {
                None => return Ok(None),
                Some(w) => match window.intersect(w) {
                    None => return Ok(None),
                    Some(i) => window = i,
                },
            }
        }
        Ok(Some(window))
    }

    /// The short-circuit position at which this guard fails on `state`,
    /// or `None` if it holds. The numbering is shared with the AST walker
    /// (see [`flatten_preds`]), so forensics name the same conjunct under
    /// either engine.
    pub(crate) fn first_failing(&self, state: &State) -> Result<Option<GuardConjunct>, EvalError> {
        for (i, t) in self.terms.iter().enumerate() {
            if !t.eval(&state.vars)? {
                return Ok(Some(GuardConjunct::Pred(i)));
            }
        }
        for (i, a) in self.atoms.iter().enumerate() {
            let rhs = a.rhs.eval(&state.vars)?;
            if !a.op.apply(state.clock_value(a.clock), rhs) {
                return Ok(Some(GuardConjunct::ClockAtom(i)));
            }
        }
        Ok(None)
    }
}

/// An invariant in compiled form: upper-bound atoms with compiled
/// right-hand sides.
#[derive(Debug, Clone)]
pub struct CompiledInvariant {
    atoms: Vec<(ClockId, Rhs)>,
}

impl CompiledInvariant {
    /// Compiles an invariant for `network`.
    #[must_use]
    pub fn compile(invariant: &Invariant, network: &Network) -> Self {
        Self {
            atoms: invariant
                .atoms
                .iter()
                .map(|a| (a.clock, Rhs::compile(&a.rhs, network)))
                .collect(),
        }
    }

    /// As [`Invariant::holds`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors in the same order as the AST walker.
    pub fn holds(&self, state: &State) -> Result<bool, EvalError> {
        for (clock, rhs) in &self.atoms {
            let rhs = rhs.eval(&state.vars)?;
            if state.clock_value(*clock) > rhs {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// As [`Invariant::max_delay`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors in the same order as the AST walker.
    pub fn max_delay(&self, state: &State) -> Result<Option<i64>, EvalError> {
        let mut bound: Option<i64> = None;
        for (clock, rhs) in &self.atoms {
            let rhs = rhs.eval(&state.vars)?;
            let cv = state.clock(*clock);
            if cv.running {
                let d = rhs - cv.value;
                bound = Some(bound.map_or(d, |b| b.min(d)));
            } else if cv.value > rhs {
                return Ok(Some(-1));
            }
        }
        Ok(bound)
    }
}

/// Per-program-kind instruction counts, surfaced through
/// `CompileMetrics` in `swa-core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Number of compiled programs (guard predicates, atom right-hand
    /// sides, invariant bounds, update sequences).
    pub programs: usize,
    /// Total instructions across all programs.
    pub ops: usize,
}

/// Every guard, invariant and update of a network in compiled form,
/// indexed the same way the network indexes edges and locations.
///
/// Built lazily (and at most once) per network via
/// [`Network::compiled`]; cloning a network clones the compiled form with
/// it, which stays valid because programs only bake in slot offsets and
/// domains, both preserved by clone.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    /// `guards[automaton][edge]`.
    guards: Vec<Vec<CompiledGuard>>,
    /// `invariants[automaton][location]`.
    invariants: Vec<Vec<CompiledInvariant>>,
    /// `updates[automaton][edge]`.
    updates: Vec<Vec<Program>>,
    stats: CompileStats,
}

impl CompiledNetwork {
    /// Compiles every guard, invariant and update sequence of the network.
    #[must_use]
    pub fn compile(network: &Network) -> Self {
        let mut guards = Vec::with_capacity(network.automata().len());
        let mut invariants = Vec::with_capacity(network.automata().len());
        let mut updates = Vec::with_capacity(network.automata().len());
        for a in network.automata() {
            guards.push(
                a.edges
                    .iter()
                    .map(|e| CompiledGuard::compile(&e.guard, network))
                    .collect::<Vec<_>>(),
            );
            invariants.push(
                a.locations
                    .iter()
                    .map(|l| CompiledInvariant::compile(&l.invariant, network))
                    .collect::<Vec<_>>(),
            );
            updates.push(
                a.edges
                    .iter()
                    .map(|e| Program::from_updates(&e.updates, network))
                    .collect::<Vec<_>>(),
            );
        }
        let mut stats = CompileStats::default();
        let mut count = |ops: usize| {
            stats.programs += 1;
            stats.ops += ops;
        };
        for gs in &guards {
            for g in gs {
                for t in &g.terms {
                    count(t.ops());
                }
                for a in &g.atoms {
                    count(a.rhs.ops());
                }
            }
        }
        for is in &invariants {
            for i in is {
                for (_, rhs) in &i.atoms {
                    count(rhs.ops());
                }
            }
        }
        for us in &updates {
            for u in us {
                count(u.len());
            }
        }
        Self {
            guards,
            invariants,
            updates,
            stats,
        }
    }

    /// The compiled guard of an edge.
    #[must_use]
    pub fn guard(&self, automaton: AutomatonId, edge: EdgeId) -> &CompiledGuard {
        &self.guards[automaton.index()][edge.index()]
    }

    /// The compiled invariant of a location.
    #[must_use]
    pub fn invariant(&self, automaton: AutomatonId, location: LocationId) -> &CompiledInvariant {
        &self.invariants[automaton.index()][location.index()]
    }

    /// The compiled update program of an edge.
    #[must_use]
    pub fn updates(&self, automaton: AutomatonId, edge: EdgeId) -> &Program {
        &self.updates[automaton.index()][edge.index()]
    }

    /// Instruction-count statistics of the compilation.
    #[must_use]
    pub fn stats(&self) -> CompileStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Engine dispatch used by `semantics`, `sim` and `fastsim`.
//
// Each helper evaluates one model component through the selected engine;
// the AST arm is the reference implementation, the bytecode arm the
// compiled one. Both interpreters route every evaluation through these, so
// `--engine ast` really does exercise the AST walker end to end.
// ---------------------------------------------------------------------------

/// Evaluates an edge guard.
pub(crate) fn guard_holds(
    network: &Network,
    engine: EvalEngine,
    automaton: AutomatonId,
    edge: EdgeId,
    state: &State,
) -> Result<bool, EvalError> {
    match engine {
        EvalEngine::Ast => {
            let view = crate::state::EnvView { network, state };
            network
                .automaton(automaton)
                .edge(edge)
                .guard
                .holds(&view, &view)
        }
        EvalEngine::Bytecode => network.compiled().guard(automaton, edge).holds(state),
    }
}

/// Computes an edge guard's enabling window.
pub(crate) fn guard_window(
    network: &Network,
    engine: EvalEngine,
    automaton: AutomatonId,
    edge: EdgeId,
    state: &State,
) -> Result<Option<DelayWindow>, EvalError> {
    match engine {
        EvalEngine::Ast => {
            let view = crate::state::EnvView { network, state };
            network
                .automaton(automaton)
                .edge(edge)
                .guard
                .enabling_window(&view, &view)
        }
        EvalEngine::Bytecode => network
            .compiled()
            .guard(automaton, edge)
            .enabling_window(state),
    }
}

/// Evaluates a location invariant at the current instant.
pub(crate) fn invariant_holds(
    network: &Network,
    engine: EvalEngine,
    automaton: AutomatonId,
    location: LocationId,
    state: &State,
) -> Result<bool, EvalError> {
    match engine {
        EvalEngine::Ast => {
            let view = crate::state::EnvView { network, state };
            network
                .automaton(automaton)
                .location(location)
                .invariant
                .holds(&view, &view)
        }
        EvalEngine::Bytecode => network
            .compiled()
            .invariant(automaton, location)
            .holds(state),
    }
}

/// Computes a location invariant's maximum admissible delay.
pub(crate) fn invariant_max_delay(
    network: &Network,
    engine: EvalEngine,
    automaton: AutomatonId,
    location: LocationId,
    state: &State,
) -> Result<Option<i64>, EvalError> {
    match engine {
        EvalEngine::Ast => {
            let view = crate::state::EnvView { network, state };
            network
                .automaton(automaton)
                .location(location)
                .invariant
                .max_delay(&view, &view)
        }
        EvalEngine::Bytecode => network
            .compiled()
            .invariant(automaton, location)
            .max_delay(state),
    }
}

/// Finds the first failing conjunct of an edge guard (forensics; see
/// [`GuardConjunct`]). Both arms share the [`flatten_preds`] numbering and
/// the left-to-right short-circuit order, so the reported position is
/// engine-independent.
pub(crate) fn guard_first_failing(
    network: &Network,
    engine: EvalEngine,
    automaton: AutomatonId,
    edge: EdgeId,
    state: &State,
) -> Result<Option<GuardConjunct>, EvalError> {
    match engine {
        EvalEngine::Ast => {
            let view = crate::state::EnvView { network, state };
            let guard = &network.automaton(automaton).edge(edge).guard;
            for (i, p) in flatten_preds(&guard.preds).into_iter().enumerate() {
                if !p.eval(&view)? {
                    return Ok(Some(GuardConjunct::Pred(i)));
                }
            }
            for (i, a) in guard.clock_atoms.iter().enumerate() {
                if !a.holds(&view, &view)? {
                    return Ok(Some(GuardConjunct::ClockAtom(i)));
                }
            }
            Ok(None)
        }
        EvalEngine::Bytecode => network
            .compiled()
            .guard(automaton, edge)
            .first_failing(state),
    }
}

/// Runs an edge's update sequence against the state.
pub(crate) fn run_edge_updates(
    network: &Network,
    engine: EvalEngine,
    automaton: AutomatonId,
    edge: EdgeId,
    state: &mut State,
) -> Result<(), SimError> {
    match engine {
        EvalEngine::Ast => {
            let updates = &network.automaton(automaton).edge(edge).updates;
            state.apply_updates(network, updates)
        }
        EvalEngine::Bytecode => network.compiled().updates(automaton, edge).exec(state),
    }
}
