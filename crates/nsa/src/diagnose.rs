//! Failure forensics: structured, explainable diagnoses for simulation
//! failures.
//!
//! The paper's approach rests on *one* deterministic run per configuration,
//! so a single opaque `deadlock at t=…` kills a whole analysis with no way
//! to see which guard, invariant or channel blocked progress. When the
//! simulator hits a [`SimError::TimeLock`], [`SimError::CommittedDeadlock`]
//! or [`SimError::ZenoViolation`], [`Diagnosis::capture`] records the full
//! location vector, every clock valuation (frozen or running) and — for
//! every automaton — the outgoing edges that were considered, each with the
//! *first failing guard conjunct* (reusing the bytecode engine's
//! short-circuit position, so both engines name the same atom), the expired
//! invariant, or the missing binary-channel partner. For Zeno runs the
//! repeating edge cycle at the stuck instant is extracted from the trace
//! tail.
//!
//! Everything in a [`Diagnosis`] is resolved to owned strings at capture
//! time, so it outlives the network and renders without further lookups.

use std::fmt;

use crate::automaton::Sync;
use crate::bytecode::{self, EvalEngine, GuardConjunct};
use crate::error::SimError;
use crate::ids::{AutomatonId, EdgeId};
use crate::network::{ChannelKind, Network};
use crate::semantics::any_committed;
use crate::state::{EnvView, State};
use crate::trace::NsaTrace;

/// What kind of failure the diagnosis explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosisKind {
    /// An invariant expires before any transition can fire.
    TimeLock,
    /// A committed location has no enabled outgoing transition.
    CommittedDeadlock,
    /// Action transitions fire forever without time advancing.
    Zeno,
}

impl fmt::Display for DiagnosisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TimeLock => write!(f, "time lock"),
            Self::CommittedDeadlock => write!(f, "committed deadlock"),
            Self::Zeno => write!(f, "Zeno run"),
        }
    }
}

/// One clock's valuation at the moment of failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockSnapshot {
    /// Clock name.
    pub name: String,
    /// Current value.
    pub value: i64,
    /// Whether the clock was running (stopwatches freeze when stopped).
    pub running: bool,
}

/// Why one considered edge could not (or, for Zeno, could) fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockReason {
    /// A clock-free conjunct failed. `index` is the short-circuit position
    /// in the flattened conjunction — identical under both eval engines.
    FailedPred {
        /// Position among the flattened clock-free conjuncts.
        index: usize,
        /// The failing conjunct, rendered.
        pred: String,
    },
    /// A clock atom failed. `index` counts within the guard's clock atoms
    /// (evaluated after all clock-free conjuncts, in declaration order).
    FailedClockAtom {
        /// Position among the guard's clock atoms.
        index: usize,
        /// The failing atom, rendered.
        atom: String,
        /// Delays after which the atom would hold (`None`: never).
        enabled_in: Option<String>,
    },
    /// The guard holds, but no receiver on the binary channel is ready.
    NoBinaryPartner {
        /// The channel awaiting a partner.
        channel: String,
    },
    /// A receiving edge whose guard holds; it waits for a sender.
    AwaitsSender {
        /// The channel awaiting a sender.
        channel: String,
    },
    /// Enabled, but outranked by committed-location priority.
    CommittedPriority,
    /// Fully enabled (in a Zeno diagnosis: fires repeatedly).
    Enabled,
    /// Evaluating the guard itself failed.
    EvalFailed {
        /// The evaluation error, rendered.
        error: String,
    },
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FailedPred { index, pred } => {
                write!(f, "blocked by conjunct #{index} `{pred}`")
            }
            Self::FailedClockAtom {
                index,
                atom,
                enabled_in,
            } => {
                write!(f, "blocked by clock atom #{index} `{atom}`")?;
                match enabled_in {
                    Some(w) => write!(f, " (would hold after delay {w})"),
                    None => write!(f, " (can never hold from here)"),
                }
            }
            Self::NoBinaryPartner { channel } => {
                write!(f, "guard holds but no receiver is ready on channel {channel:?}")
            }
            Self::AwaitsSender { channel } => {
                write!(f, "receive edge awaiting a sender on channel {channel:?}")
            }
            Self::CommittedPriority => {
                write!(f, "enabled but outranked by a committed location")
            }
            Self::Enabled => write!(f, "enabled"),
            Self::EvalFailed { error } => write!(f, "guard evaluation failed: {error}"),
        }
    }
}

/// One outgoing edge of a stuck automaton, with the verdict on why it did
/// not resolve the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeDiagnosis {
    /// The edge id within its automaton.
    pub edge: EdgeId,
    /// Rendered edge: `from -> to [label] channel!/?`.
    pub description: String,
    /// Why the edge could not (or, for Zeno, could) fire.
    pub reason: BlockReason,
}

/// The situation of one automaton at the moment of failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AutomatonDiagnosis {
    /// The automaton's id.
    pub automaton: AutomatonId,
    /// The automaton's name.
    pub name: String,
    /// Name of the current location.
    pub location: String,
    /// Whether the current location is committed.
    pub committed: bool,
    /// The current location's invariant, rendered (`None` when trivial).
    pub invariant: Option<String>,
    /// Maximal delay the invariant admits: `Some(-1)` means a stopped
    /// clock already violates it, `None` means unbounded.
    pub invariant_slack: Option<i64>,
    /// Every outgoing edge of the current location, in canonical order.
    pub edges: Vec<EdgeDiagnosis>,
}

/// A structured, self-contained explanation of a simulation failure.
///
/// Captured by [`crate::sim::Simulator::run_explained`]; rendered with
/// [`Diagnosis::render`]. All names are resolved at capture time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// The failure class.
    pub kind: DiagnosisKind,
    /// Model time of the failure.
    pub time: i64,
    /// The automaton named by the error (the expiring invariant's owner
    /// for a time lock, the stuck committed automaton for a deadlock).
    pub blocking: Option<String>,
    /// The full location vector: `(automaton, location)` names in
    /// automaton order.
    pub locations: Vec<(String, String)>,
    /// Every clock's valuation.
    pub clocks: Vec<ClockSnapshot>,
    /// Per-automaton situation, in automaton order.
    pub automata: Vec<AutomatonDiagnosis>,
    /// For Zeno runs: the repeating edge cycle at the stuck instant
    /// (rendered events, shortest period first-to-last). Empty when the
    /// trace was not recorded or no repetition was found.
    pub zeno_cycle: Vec<String>,
}

impl Diagnosis {
    /// Captures a diagnosis for `error` in `state`, or `None` for error
    /// kinds forensics do not cover (evaluation failures, domain or
    /// invariant violations, overflow).
    #[must_use]
    pub fn capture(
        network: &Network,
        state: &State,
        trace: &NsaTrace,
        error: &SimError,
        engine: EvalEngine,
    ) -> Option<Self> {
        let (kind, time, named) = match error {
            SimError::TimeLock { time, automaton } => {
                (DiagnosisKind::TimeLock, *time, Some(*automaton))
            }
            SimError::CommittedDeadlock { automaton, time } => {
                (DiagnosisKind::CommittedDeadlock, *time, Some(*automaton))
            }
            SimError::ZenoViolation { time, .. } => (DiagnosisKind::Zeno, *time, None),
            _ => return None,
        };

        let committed_somewhere = any_committed(network, state);
        let mut locations = Vec::with_capacity(network.automata().len());
        let mut automata = Vec::with_capacity(network.automata().len());
        for (i, a) in network.automata().iter().enumerate() {
            let aid = AutomatonId::from_raw(u32::try_from(i).unwrap_or(u32::MAX));
            let lid = state.location_of(aid);
            let loc = a.location(lid);
            locations.push((a.name.clone(), loc.name.clone()));

            let invariant = if loc.invariant.atoms.is_empty() {
                None
            } else {
                Some(loc.invariant.to_string())
            };
            let invariant_slack =
                bytecode::invariant_max_delay(network, engine, aid, lid, state)
                    .ok()
                    .flatten();
            let edges = network
                .outgoing_edges(aid, lid)
                .iter()
                .map(|&eid| EdgeDiagnosis {
                    edge: eid,
                    description: describe_edge(network, aid, eid),
                    reason: edge_block_reason(
                        network,
                        engine,
                        aid,
                        eid,
                        state,
                        committed_somewhere && !loc.committed,
                    ),
                })
                .collect();
            automata.push(AutomatonDiagnosis {
                automaton: aid,
                name: a.name.clone(),
                location: loc.name.clone(),
                committed: loc.committed,
                invariant,
                invariant_slack,
                edges,
            });
        }

        let clocks = network
            .clocks()
            .iter()
            .zip(state.iter_clocks())
            .map(|(decl, cv)| ClockSnapshot {
                name: decl.name.clone(),
                value: cv.value,
                running: cv.running,
            })
            .collect();

        let zeno_cycle = if kind == DiagnosisKind::Zeno {
            zeno_cycle(network, trace, time)
        } else {
            Vec::new()
        };

        Some(Self {
            kind,
            time,
            blocking: named.map(|aid| network.automaton(aid).name.clone()),
            locations,
            clocks,
            automata,
            zeno_cycle,
        })
    }

    /// Renders the diagnosis as an indented multi-line report.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{} at time {}", self.kind, self.time);
        if let Some(b) = &self.blocking {
            let _ = write!(out, " (blocking automaton: {b})");
        }
        out.push('\n');

        let locs: Vec<String> = self
            .locations
            .iter()
            .map(|(a, l)| format!("{a}@{l}"))
            .collect();
        let _ = writeln!(out, "  locations: {}", locs.join(" "));

        if !self.clocks.is_empty() {
            let cs: Vec<String> = self
                .clocks
                .iter()
                .map(|c| {
                    format!(
                        "{}={}{}",
                        c.name,
                        c.value,
                        if c.running { "" } else { " (frozen)" }
                    )
                })
                .collect();
            let _ = writeln!(out, "  clocks: {}", cs.join(" "));
        }

        for a in &self.automata {
            let _ = write!(out, "  automaton {} @ {}", a.name, a.location);
            if a.committed {
                out.push_str(" [committed]");
            }
            if let Some(inv) = &a.invariant {
                let _ = write!(out, " invariant `{inv}`");
                match a.invariant_slack {
                    Some(s) if s < 0 => out.push_str(" VIOLATED (frozen clock past bound)"),
                    Some(0) => out.push_str(" EXPIRED"),
                    Some(s) => {
                        let _ = write!(out, " (expires in {s})");
                    }
                    None => {}
                }
            }
            out.push('\n');
            if a.edges.is_empty() {
                let _ = writeln!(out, "    (no outgoing edges)");
            }
            for e in &a.edges {
                let _ = writeln!(out, "    edge {}: {}", e.description, e.reason);
            }
        }

        if !self.zeno_cycle.is_empty() {
            let _ = writeln!(
                out,
                "  repeating cycle ({} event(s) per period):",
                self.zeno_cycle.len()
            );
            for ev in &self.zeno_cycle {
                let _ = writeln!(out, "    {ev}");
            }
        }
        out
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A [`SimError`] together with its forensic [`Diagnosis`].
///
/// Returned by [`crate::sim::Simulator::run_explained`]; `diagnosis` is
/// `None` for error kinds forensics do not cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainedError {
    /// The underlying simulation error.
    pub error: SimError,
    /// The structured explanation, when available.
    pub diagnosis: Option<Box<Diagnosis>>,
}

impl fmt::Display for ExplainedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.error)?;
        if let Some(d) = &self.diagnosis {
            write!(f, "\n{}", d.render())?;
        }
        Ok(())
    }
}

impl std::error::Error for ExplainedError {}

impl From<ExplainedError> for SimError {
    fn from(e: ExplainedError) -> Self {
        e.error
    }
}

/// Renders an edge as `from -> to [label] channel!/?`.
fn describe_edge(network: &Network, aid: AutomatonId, eid: EdgeId) -> String {
    let a = network.automaton(aid);
    let e = a.edge(eid);
    let mut s = format!("{} -> {}", a.location(e.from).name, a.location(e.to).name);
    if !e.label.is_empty() {
        s.push_str(&format!(" [{}]", e.label));
    }
    match e.sync {
        Sync::Internal => {}
        Sync::Send(ch) => s.push_str(&format!(" {}!", network.channels()[ch.index()].name)),
        Sync::Recv(ch) => s.push_str(&format!(" {}?", network.channels()[ch.index()].name)),
    }
    s
}

/// Decides why an edge did not fire (or that it could), naming the first
/// failing guard conjunct through the engines' shared short-circuit order.
fn edge_block_reason(
    network: &Network,
    engine: EvalEngine,
    aid: AutomatonId,
    eid: EdgeId,
    state: &State,
    blocked_by_committed: bool,
) -> BlockReason {
    let edge = network.automaton(aid).edge(eid);
    match bytecode::guard_first_failing(network, engine, aid, eid, state) {
        Err(e) => BlockReason::EvalFailed {
            error: e.to_string(),
        },
        Ok(Some(GuardConjunct::Pred(i))) => {
            let flat = bytecode::flatten_preds(&edge.guard.preds);
            BlockReason::FailedPred {
                index: i,
                pred: flat.get(i).map_or_else(String::new, ToString::to_string),
            }
        }
        Ok(Some(GuardConjunct::ClockAtom(i))) => {
            let atom = &edge.guard.clock_atoms[i];
            let view = EnvView { network, state };
            let enabled_in = atom
                .delay_window(&view, &view)
                .ok()
                .flatten()
                .map(|w| w.to_string());
            BlockReason::FailedClockAtom {
                index: i,
                atom: atom.to_string(),
                enabled_in,
            }
        }
        Ok(None) => match edge.sync {
            Sync::Recv(ch) => BlockReason::AwaitsSender {
                channel: network.channels()[ch.index()].name.clone(),
            },
            Sync::Send(ch) if network.channels()[ch.index()].kind == ChannelKind::Binary => {
                if binary_partner_ready(network, engine, aid, ch, state) {
                    enabled_or_outranked(blocked_by_committed)
                } else {
                    BlockReason::NoBinaryPartner {
                        channel: network.channels()[ch.index()].name.clone(),
                    }
                }
            }
            Sync::Send(_) | Sync::Internal => enabled_or_outranked(blocked_by_committed),
        },
    }
}

fn enabled_or_outranked(blocked_by_committed: bool) -> BlockReason {
    if blocked_by_committed {
        BlockReason::CommittedPriority
    } else {
        BlockReason::Enabled
    }
}

/// Whether any automaton other than `sender` has an enabled receiving edge
/// on the binary channel `ch` from its current location.
fn binary_partner_ready(
    network: &Network,
    engine: EvalEngine,
    sender: AutomatonId,
    ch: crate::ids::ChannelId,
    state: &State,
) -> bool {
    network.receivers_on(ch).iter().any(|&(bid, reid)| {
        bid != sender
            && network.automaton(bid).edge(reid).from == state.location_of(bid)
            && bytecode::guard_holds(network, engine, bid, reid, state).unwrap_or(false)
    })
}

/// How many trailing same-instant trace events the Zeno cycle search
/// examines. The Zeno bound can be millions of steps; the period of the
/// repeating cycle is tiny in practice, so a bounded tail suffices.
const ZENO_TAIL: usize = 256;

/// Extracts the shortest repeating event cycle at the stuck instant from
/// the trace tail, rendered. Empty when no repetition is visible (e.g. the
/// trace was not recorded).
fn zeno_cycle(network: &Network, trace: &NsaTrace, time: i64) -> Vec<String> {
    let events = trace.events();
    let tail_start = events
        .iter()
        .rposition(|e| e.time != time)
        .map_or(0, |i| i + 1);
    let tail = &events[tail_start..];
    let tail = &tail[tail.len().saturating_sub(ZENO_TAIL)..];
    if tail.is_empty() {
        return Vec::new();
    }
    // Smallest period p such that the last p events repeat the p before
    // them: the steady-state loop the run was stuck in.
    for p in 1..=tail.len() / 2 {
        let (a, b) = (
            &tail[tail.len() - p..],
            &tail[tail.len() - 2 * p..tail.len() - p],
        );
        if a.iter()
            .zip(b)
            .all(|(x, y)| x.transition.participants() == y.transition.participants())
        {
            return a.iter().map(|e| e.render(network)).collect();
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::expr::{CmpOp, IntExpr};
    use crate::guard::{ClockAtom, Guard, Invariant};
    use crate::network::NetworkBuilder;
    use crate::sim::Simulator;

    const ENGINES: [EvalEngine; 2] = [EvalEngine::Ast, EvalEngine::Bytecode];

    /// Time lock via a failed clock atom: invariant forces action by t=5,
    /// the only edge needs c >= 10.
    fn guard_atom_fixture() -> Network {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("stuck");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 10)))
                .with_label("go"),
        );
        nb.automaton(a.finish(l0));
        nb.build().unwrap()
    }

    fn explain(network: &Network, engine: EvalEngine) -> Diagnosis {
        let err = Simulator::new(network)
            .horizon(100)
            .max_steps_per_instant(100)
            .engine(engine)
            .run_explained()
            .unwrap_err();
        *err.diagnosis.expect("diagnosis captured")
    }

    #[test]
    fn failed_guard_atom_is_named_under_both_engines() {
        let n = guard_atom_fixture();
        for engine in ENGINES {
            let d = explain(&n, engine);
            assert_eq!(d.kind, DiagnosisKind::TimeLock, "{engine:?}");
            assert_eq!(d.blocking.as_deref(), Some("stuck"));
            assert_eq!(d.automata.len(), 1);
            let a = &d.automata[0];
            assert_eq!(a.name, "stuck");
            assert_eq!(a.location, "l0");
            assert_eq!(a.invariant_slack, Some(5));
            assert_eq!(a.edges.len(), 1);
            let e = &a.edges[0];
            assert!(e.description.contains("l0 -> l1"), "{}", e.description);
            assert!(e.description.contains("[go]"), "{}", e.description);
            match &e.reason {
                BlockReason::FailedClockAtom {
                    index,
                    atom,
                    enabled_in,
                } => {
                    assert_eq!(*index, 0);
                    assert!(atom.contains(">= 10"), "{atom}");
                    assert!(
                        enabled_in.as_deref().is_some_and(|w| w.contains("10")),
                        "{enabled_in:?}"
                    );
                }
                other => panic!("expected FailedClockAtom, got {other:?}"),
            }
        }
    }

    #[test]
    fn both_engines_produce_identical_diagnoses() {
        let n = guard_atom_fixture();
        assert_eq!(explain(&n, EvalEngine::Ast), explain(&n, EvalEngine::Bytecode));
    }

    #[test]
    fn failed_pred_conjunct_is_named_first() {
        // Guard = (flag == 1) && (c >= 10): the clock-free conjunct fails
        // first in the shared short-circuit order, so it is the one named.
        let mut nb = NetworkBuilder::new();
        let flag = nb.flag("flag", false);
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("stuck");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(
                Guard::when(IntExpr::var(flag).eq(1))
                    .and_clock(ClockAtom::new(c, CmpOp::Ge, 10)),
            ),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        for engine in ENGINES {
            let d = explain(&n, engine);
            match &d.automata[0].edges[0].reason {
                BlockReason::FailedPred { index, pred } => {
                    assert_eq!(*index, 0, "{engine:?}");
                    assert!(pred.contains("v0"), "{pred}");
                }
                other => panic!("expected FailedPred, got {other:?}"),
            }
        }
    }

    #[test]
    fn expired_invariant_is_named_under_both_engines() {
        // The bounded automaton has no way out: its invariant is the
        // diagnosis, and the edgeless location renders as such.
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("bounded");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("free");
        let m0 = b.location("m0");
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        for engine in ENGINES {
            let d = explain(&n, engine);
            assert_eq!(d.kind, DiagnosisKind::TimeLock, "{engine:?}");
            assert_eq!(d.blocking.as_deref(), Some("bounded"));
            let a = &d.automata[0];
            assert_eq!(a.invariant.as_deref(), Some("c0 <= 5"));
            assert!(a.edges.is_empty());
            // The unconstrained automaton is reported without an invariant.
            assert_eq!(d.automata[1].invariant, None);
            let text = d.render();
            assert!(text.contains("bounded"), "{text}");
            assert!(text.contains("c0 <= 5"), "{text}");
        }
    }

    #[test]
    fn missing_binary_partner_is_named_under_both_engines() {
        // Sender is committed and its send edge's guard holds, but the only
        // receiver sits in a location without a receive edge.
        let mut nb = NetworkBuilder::new();
        let ch = nb.binary_channel("go");
        let mut a = AutomatonBuilder::new("sender");
        let l0 = a.committed_location("l0");
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1)
                .with_sync(crate::automaton::Sync::Send(ch))
                .with_label("send"),
        );
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("receiver");
        let m0 = b.location("m0");
        let m1 = b.location("m1");
        b.edge(Edge::new(m0, m1));
        let m2 = b.location("m2");
        b.edge(Edge::new(m1, m2).with_sync(crate::automaton::Sync::Recv(ch)));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        for engine in ENGINES {
            let err = Simulator::new(&n)
                .horizon(10)
                .engine(engine)
                .run_explained()
                .unwrap_err();
            assert!(matches!(err.error, SimError::CommittedDeadlock { .. }));
            let d = *err.diagnosis.expect("diagnosis captured");
            assert_eq!(d.kind, DiagnosisKind::CommittedDeadlock, "{engine:?}");
            assert_eq!(d.blocking.as_deref(), Some("sender"));
            let sender = &d.automata[0];
            assert!(sender.committed);
            assert_eq!(
                sender.edges[0].reason,
                BlockReason::NoBinaryPartner {
                    channel: "go".to_string()
                }
            );
            assert!(sender.edges[0].description.contains("go!"));
        }
    }

    #[test]
    fn zeno_diagnosis_extracts_repeating_cycle() {
        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("spin");
        let l0 = a.location("l0");
        a.edge(Edge::new(l0, l0).with_label("again"));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        for engine in ENGINES {
            let err = Simulator::new(&n)
                .horizon(10)
                .max_steps_per_instant(100)
                .engine(engine)
                .run_explained()
                .unwrap_err();
            assert!(matches!(err.error, SimError::ZenoViolation { .. }));
            let d = *err.diagnosis.expect("diagnosis captured");
            assert_eq!(d.kind, DiagnosisKind::Zeno);
            assert_eq!(d.zeno_cycle.len(), 1, "self-loop has period 1");
            assert!(d.zeno_cycle[0].contains("spin"), "{:?}", d.zeno_cycle);
            let text = d.render();
            assert!(text.contains("repeating cycle"), "{text}");
        }
    }

    #[test]
    fn generic_loop_diagnoses_like_fast_loop() {
        // A non-canonical tie-break forces the generic interpreter; the
        // diagnosis must be the same.
        let n = guard_atom_fixture();
        let err = Simulator::new(&n)
            .horizon(100)
            .tie_break(crate::sim::TieBreak::Permuted(vec![0]))
            .run_explained()
            .unwrap_err();
        let d = *err.diagnosis.expect("diagnosis captured");
        assert_eq!(d, explain(&n, EvalEngine::Bytecode));
    }

    #[test]
    fn explained_success_matches_plain_run() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("t");
        let l0 = a.location_with_invariant("wait", Invariant::upper_bound(c, 10));
        a.edge(
            Edge::new(l0, l0)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 10)))
                .with_update(crate::update::Update::ResetClock(c)),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let plain = Simulator::new(&n).horizon(35).run().unwrap();
        let explained = Simulator::new(&n).horizon(35).run_explained().unwrap();
        assert_eq!(plain, explained);
    }

    #[test]
    fn uncovered_errors_have_no_diagnosis() {
        // Domain violation: forensics does not cover it, but the error
        // still comes through the explained API.
        let mut nb = NetworkBuilder::new();
        let v = nb.var("x", 0, 0, 1);
        let mut a = AutomatonBuilder::new("bad");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.edge(Edge::new(l0, l1).with_update(crate::update::Update::set(v, 7)));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let err = Simulator::new(&n).horizon(10).run_explained().unwrap_err();
        assert!(matches!(err.error, SimError::DomainViolation { .. }));
        assert!(err.diagnosis.is_none());
        assert!(err.to_string().contains("domain"));
    }
}
