//! Graphviz DOT export for automata and networks, for documentation and
//! debugging (the paper presents its automata as graphs; this module lets
//! users render ours the same way).

use std::fmt::Write as _;

use crate::automaton::{Automaton, Sync};
use crate::network::Network;

/// Renders one automaton as a Graphviz `digraph`.
///
/// Locations become nodes (committed locations are drawn doubled), edges
/// are labeled with `guard / sync / updates`.
#[must_use]
pub fn automaton_to_dot(automaton: &Automaton, network: Option<&Network>) -> String {
    let mut out = String::new();
    let name = sanitize(&automaton.name);
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for (i, l) in automaton.locations.iter().enumerate() {
        let shape = if l.committed {
            "doublecircle"
        } else {
            "circle"
        };
        let mut label = l.name.clone();
        if !l.invariant.atoms.is_empty() {
            let _ = write!(label, "\\n{}", l.invariant);
        }
        let _ = writeln!(out, "  n{i} [shape={shape}, label=\"{}\"];", escape(&label));
    }
    let _ = writeln!(out, "  init [shape=point];");
    let _ = writeln!(out, "  init -> n{};", automaton.initial.index());
    for e in &automaton.edges {
        let mut label = String::new();
        let guard = e.guard.to_string();
        if guard != "true" {
            let _ = write!(label, "{guard}");
        }
        match e.sync {
            Sync::Internal => {}
            Sync::Send(ch) => {
                let chname = network
                    .map_or_else(|| ch.to_string(), |n| n.channels()[ch.index()].name.clone());
                if !label.is_empty() {
                    label.push_str("\\n");
                }
                let _ = write!(label, "{chname}!");
            }
            Sync::Recv(ch) => {
                let chname = network
                    .map_or_else(|| ch.to_string(), |n| n.channels()[ch.index()].name.clone());
                if !label.is_empty() {
                    label.push_str("\\n");
                }
                let _ = write!(label, "{chname}?");
            }
        }
        for u in &e.updates {
            if !label.is_empty() {
                label.push_str("\\n");
            }
            let _ = write!(label, "{u}");
        }
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"];",
            e.from.index(),
            e.to.index(),
            escape(&label)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders the communication structure of a network: one node per
/// automaton, one edge per channel from senders to receivers.
#[must_use]
pub fn network_to_dot(network: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph network {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box];");
    for (i, a) in network.automata().iter().enumerate() {
        let _ = writeln!(out, "  a{i} [label=\"{}\"];", escape(&a.name));
    }
    // For each channel, find senders and receivers.
    for (ci, ch) in network.channels().iter().enumerate() {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for (ai, a) in network.automata().iter().enumerate() {
            for e in &a.edges {
                match e.sync {
                    Sync::Send(c) if c.index() == ci => senders.push(ai),
                    Sync::Recv(c) if c.index() == ci => receivers.push(ai),
                    _ => {}
                }
            }
        }
        senders.dedup();
        receivers.dedup();
        for s in &senders {
            for r in &receivers {
                let style = match ch.kind {
                    crate::network::ChannelKind::Binary => "solid",
                    crate::network::ChannelKind::Broadcast => "dashed",
                };
                let _ = writeln!(
                    out,
                    "  a{s} -> a{r} [label=\"{}\", style={style}];",
                    escape(&ch.name)
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_numeric()) {
        format!("_{s}")
    } else if s.is_empty() {
        "g".to_string()
    } else {
        s
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::network::NetworkBuilder;

    #[test]
    fn automaton_dot_contains_nodes_and_edges() {
        let mut b = AutomatonBuilder::new("demo machine");
        let l0 = b.location("idle");
        let l1 = b.committed_location("busy");
        b.edge(Edge::new(l0, l1).with_label("go"));
        let a = b.finish(l0);
        let dot = automaton_to_dot(&a, None);
        assert!(dot.starts_with("digraph demo_machine {"));
        assert!(dot.contains("idle"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("init -> n0"));
    }

    #[test]
    fn network_dot_draws_channel_wiring() {
        let mut nb = NetworkBuilder::new();
        let ch = nb.binary_channel("ping");
        let mut b = AutomatonBuilder::new("s");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0).with_sync(crate::automaton::Sync::Send(ch)));
        nb.automaton(b.finish(l0));
        let mut b = AutomatonBuilder::new("r");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0).with_sync(crate::automaton::Sync::Recv(ch)));
        nb.automaton(b.finish(l0));
        let n = nb.build().unwrap();
        let dot = network_to_dot(&n);
        assert!(dot.contains("a0 -> a1"));
        assert!(dot.contains("ping"));
    }

    #[test]
    fn sanitize_handles_edge_cases() {
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize(""), "g");
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }
}
