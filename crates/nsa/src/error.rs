//! Error types for network construction and interpretation.

use std::fmt;

use crate::ids::{AutomatonId, ClockId, LocationId, VarId};

/// Errors raised while building or validating a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A referenced clock id does not exist in the network.
    UnknownClock(ClockId),
    /// A referenced variable id does not exist in the network.
    UnknownVar(VarId),
    /// A referenced array id does not exist in the network.
    UnknownArray(u32),
    /// A referenced channel id does not exist in the network.
    UnknownChannel(u32),
    /// A referenced location id does not exist in the automaton.
    UnknownLocation {
        /// Automaton owning the edge.
        automaton: AutomatonId,
        /// The missing location.
        location: LocationId,
    },
    /// An automaton was declared without any location.
    EmptyAutomaton(AutomatonId),
    /// A variable's initial value lies outside its declared domain.
    InitialValueOutOfDomain {
        /// The offending variable.
        var: VarId,
        /// Declared initial value.
        value: i64,
        /// Declared inclusive domain.
        domain: (i64, i64),
    },
    /// A variable domain is empty (`min > max`).
    EmptyDomain {
        /// The offending variable.
        var: VarId,
        /// Declared inclusive domain.
        domain: (i64, i64),
    },
    /// An expression still contains an unbound template parameter.
    UnboundParam {
        /// Index of the parameter.
        param: u32,
        /// Human-readable position of the offending expression.
        context: String,
    },
    /// A quantifier body nests deeper than the supported limit.
    QuantifierTooDeep {
        /// Maximum supported depth.
        limit: usize,
    },
    /// Two automata declare the same name.
    DuplicateAutomatonName(String),
    /// A binary channel is used by fewer than two automata, or a
    /// send/receive pairing is impossible.
    DanglingChannel {
        /// The offending channel's name.
        channel: String,
        /// Explanation of the problem.
        reason: String,
    },
    /// The network declares more items of one kind than ids can address
    /// (ids are `u32`-backed). A hostile or runaway generator degrades
    /// into this error instead of a process abort.
    CapacityExceeded {
        /// What overflowed: `"clocks"`, `"variables"`, `"arrays"`,
        /// `"channels"`, `"automata"` or `"edges"`.
        kind: &'static str,
        /// The number of addressable items of that kind.
        limit: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownClock(c) => write!(f, "unknown clock {c}"),
            Self::UnknownVar(v) => write!(f, "unknown variable {v}"),
            Self::UnknownArray(a) => write!(f, "unknown array a{a}"),
            Self::UnknownChannel(c) => write!(f, "unknown channel ch{c}"),
            Self::UnknownLocation {
                automaton,
                location,
            } => write!(f, "unknown location {location} in automaton {automaton}"),
            Self::EmptyAutomaton(a) => write!(f, "automaton {a} has no locations"),
            Self::InitialValueOutOfDomain { var, value, domain } => write!(
                f,
                "initial value {value} of variable {var} outside domain [{}, {}]",
                domain.0, domain.1
            ),
            Self::EmptyDomain { var, domain } => write!(
                f,
                "variable {var} has empty domain [{}, {}]",
                domain.0, domain.1
            ),
            Self::UnboundParam { param, context } => {
                write!(f, "unbound template parameter p{param} in {context}")
            }
            Self::QuantifierTooDeep { limit } => {
                write!(f, "quantifier nesting exceeds supported depth {limit}")
            }
            Self::DuplicateAutomatonName(name) => {
                write!(f, "duplicate automaton name {name:?}")
            }
            Self::DanglingChannel { channel, reason } => {
                write!(f, "channel {channel:?} is miswired: {reason}")
            }
            Self::CapacityExceeded { kind, limit } => {
                write!(f, "network declares more than {limit} {kind}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Errors raised while evaluating expressions over a state.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// Division or modulo by zero.
    DivisionByZero,
    /// Arithmetic overflow during evaluation.
    Overflow,
    /// An array access was out of bounds.
    IndexOutOfBounds {
        /// The accessed array.
        array: u32,
        /// The evaluated index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// A quantifier range was absurdly large (guards against runaway loops).
    RangeTooLarge {
        /// Evaluated lower bound.
        lo: i64,
        /// Evaluated upper bound.
        hi: i64,
    },
    /// The expression references a template parameter that was never bound.
    UnboundParam(u32),
    /// A de Bruijn index referenced a quantifier binder that is not in scope.
    UnboundIndex(usize),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DivisionByZero => write!(f, "division by zero"),
            Self::Overflow => write!(f, "arithmetic overflow"),
            Self::IndexOutOfBounds { array, index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for array a{array} of length {len}"
                )
            }
            Self::RangeTooLarge { lo, hi } => {
                write!(f, "quantifier range [{lo}, {hi}) too large")
            }
            Self::UnboundParam(p) => write!(f, "unbound template parameter p{p}"),
            Self::UnboundIndex(i) => write!(f, "unbound quantifier index {i}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Errors raised during simulation (interpretation) of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An expression failed to evaluate.
    Eval(EvalError),
    /// An assignment drove a variable outside its declared domain.
    DomainViolation {
        /// The assigned variable.
        var: VarId,
        /// The offending value.
        value: i64,
        /// The declared inclusive domain.
        domain: (i64, i64),
    },
    /// More than [`crate::sim::Simulator::max_steps_per_instant`] action
    /// transitions fired without time advancing — the model is Zeno.
    ZenoViolation {
        /// Model time at which progress stopped.
        time: i64,
        /// The step bound that was exceeded.
        limit: usize,
    },
    /// An invariant bounds the possible delay but no action transition ever
    /// becomes enabled within that bound: time cannot progress.
    TimeLock {
        /// Model time at which the network is stuck.
        time: i64,
        /// Automaton whose invariant expires first.
        automaton: AutomatonId,
    },
    /// A location invariant does not hold at the moment the location is
    /// entered (or initially).
    InvariantViolated {
        /// The automaton whose invariant failed.
        automaton: AutomatonId,
        /// The location whose invariant failed.
        location: LocationId,
        /// Model time of the violation.
        time: i64,
    },
    /// A committed location has no enabled outgoing transition, so the
    /// network cannot proceed.
    CommittedDeadlock {
        /// The stuck automaton.
        automaton: AutomatonId,
        /// Model time of the deadlock.
        time: i64,
    },
    /// A wake-time computation overflowed `i64` — a guard constant close
    /// to `i64::MAX` pushed an absolute deadline past the representable
    /// range. (Previously the event wheel saturated and silently parked
    /// the automaton forever.)
    Overflow {
        /// Model time at which the overflow occurred.
        time: i64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Eval(e) => write!(f, "evaluation failed: {e}"),
            Self::DomainViolation { var, value, domain } => write!(
                f,
                "assignment of {value} to {var} violates domain [{}, {}]",
                domain.0, domain.1
            ),
            Self::ZenoViolation { time, limit } => write!(
                f,
                "more than {limit} action transitions at time {time} without progress (Zeno run)"
            ),
            Self::TimeLock { time, automaton } => write!(
                f,
                "time lock at time {time}: invariant of automaton {automaton} expires \
                 but no transition is enabled"
            ),
            Self::InvariantViolated {
                automaton,
                location,
                time,
            } => write!(
                f,
                "invariant of location {location} in automaton {automaton} violated at time {time}"
            ),
            Self::CommittedDeadlock { automaton, time } => write!(
                f,
                "committed location in automaton {automaton} has no enabled transition at time {time}"
            ),
            Self::Overflow { time } => write!(
                f,
                "wake-time arithmetic overflowed i64 at time {time} (guard bound too close to i64::MAX)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        Self::Eval(e)
    }
}

/// Errors raised while decoding or restoring a simulator [`crate::snapshot::Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The serialized snapshot carries an unsupported format version.
    UnsupportedVersion {
        /// Version found in the byte stream.
        found: u8,
        /// Version this build reads and writes.
        supported: u8,
    },
    /// The byte stream ended before the snapshot was fully decoded.
    Truncated,
    /// The byte stream decoded cleanly but left unconsumed bytes.
    TrailingBytes {
        /// Number of bytes left over.
        extra: usize,
    },
    /// A snapshot vector does not match the target network's declarations
    /// (the snapshot was taken of a different network shape).
    NetworkMismatch {
        /// Which vector mismatched: `"locations"`, `"clocks"` or
        /// `"variables"`.
        field: &'static str,
        /// Length the network declares.
        expected: usize,
        /// Length the snapshot carries.
        found: usize,
    },
    /// A snapshotted location id is out of range for its automaton.
    LocationOutOfRange {
        /// The automaton whose location is invalid.
        automaton: AutomatonId,
        /// The out-of-range location.
        location: LocationId,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            Self::Truncated => write!(f, "snapshot byte stream is truncated"),
            Self::TrailingBytes { extra } => {
                write!(f, "snapshot byte stream has {extra} trailing bytes")
            }
            Self::NetworkMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "snapshot carries {found} {field} but the network declares {expected}"
            ),
            Self::LocationOutOfRange {
                automaton,
                location,
            } => write!(
                f,
                "snapshot location {location} is out of range for automaton {automaton}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_lead() {
        let errors: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(BuildError::UnknownClock(ClockId::from_raw(1))),
            Box::new(EvalError::DivisionByZero),
            Box::new(SimError::ZenoViolation { time: 5, limit: 10 }),
            Box::new(SnapshotError::Truncated),
            Box::new(SnapshotError::UnsupportedVersion {
                found: 9,
                supported: 1,
            }),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(
                first.is_lowercase() || first.is_numeric(),
                "message {msg:?}"
            );
        }
    }

    #[test]
    fn sim_error_from_eval_error() {
        let e: SimError = EvalError::Overflow.into();
        assert_eq!(e, SimError::Eval(EvalError::Overflow));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildError>();
        assert_send_sync::<EvalError>();
        assert_send_sync::<SimError>();
        assert_send_sync::<SnapshotError>();
    }
}
