//! Clock-free expression language used in guards, invariants and updates.
//!
//! The language is a small, total, integer-valued expression calculus over
//! the network's bounded integer variables and arrays, with bounded
//! quantifiers (`forall` / `exists`) over integer ranges. It is the same
//! fragment UPPAAL models of schedulers use: selection conditions such as
//! *"job `k` is ready and no ready job has a higher priority"* are expressed
//! with one `forall`.
//!
//! Expressions are split into two syntactic categories:
//!
//! * [`IntExpr`] — integer-valued terms;
//! * [`Pred`] — boolean-valued predicates.
//!
//! Clocks deliberately do **not** appear here. Clock constraints live in
//! [`crate::guard`], in a restricted normal form that keeps the simulator's
//! next-event computation exact (see `DESIGN.md` §4.2).
//!
//! # Examples
//!
//! ```
//! use swa_nsa::expr::{IntExpr, Pred};
//! use swa_nsa::ids::VarId;
//!
//! // prio[j] <= prio[k] for all j in [0, n)
//! let n = IntExpr::var(VarId::from_raw(0));
//! let k = IntExpr::var(VarId::from_raw(1));
//! let _pred = Pred::forall(
//!     IntExpr::lit(0),
//!     n,
//!     IntExpr::bound(0).le(k),
//! );
//! ```

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::error::EvalError;
use crate::ids::{ArrayId, ParamId, VarId};

/// Largest admissible quantifier range; guards against runaway evaluation.
pub const MAX_QUANTIFIER_RANGE: i64 = 1 << 20;

/// Read-only view of the integer variables and arrays of a state.
///
/// The simulator's state implements this; tests can implement it over plain
/// vectors.
pub trait VarEnv {
    /// Returns the current value of a scalar variable.
    fn var(&self, var: VarId) -> i64;

    /// Returns the length of an array.
    fn array_len(&self, array: ArrayId) -> usize;

    /// Returns the current value of an array element.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::IndexOutOfBounds`] if `index` is outside
    /// `[0, len)`.
    fn elem(&self, array: ArrayId, index: i64) -> Result<i64, EvalError>;
}

/// Comparison operators between integer expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two integers.
    #[must_use]
    pub fn apply(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Self::Eq => lhs == rhs,
            Self::Ne => lhs != rhs,
            Self::Lt => lhs < rhs,
            Self::Le => lhs <= rhs,
            Self::Gt => lhs > rhs,
            Self::Ge => lhs >= rhs,
        }
    }

    /// Returns the comparison with its arguments swapped (`a op b` ⇔
    /// `b op.flip() a`).
    #[must_use]
    pub fn flip(self) -> Self {
        match self {
            Self::Eq => Self::Eq,
            Self::Ne => Self::Ne,
            Self::Lt => Self::Gt,
            Self::Le => Self::Ge,
            Self::Gt => Self::Lt,
            Self::Ge => Self::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Eq => "==",
            Self::Ne => "!=",
            Self::Lt => "<",
            Self::Le => "<=",
            Self::Gt => ">",
            Self::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An integer-valued, clock-free expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntExpr {
    /// Integer literal.
    Lit(i64),
    /// Scalar variable read.
    Var(VarId),
    /// Array element read; the index is itself an expression.
    Elem(ArrayId, Box<IntExpr>),
    /// Unbound template parameter; must be substituted before evaluation.
    Param(ParamId),
    /// De Bruijn reference to an enclosing quantifier binder
    /// (`0` = innermost).
    Bound(usize),
    /// Sum.
    Add(Box<IntExpr>, Box<IntExpr>),
    /// Difference.
    Sub(Box<IntExpr>, Box<IntExpr>),
    /// Product.
    Mul(Box<IntExpr>, Box<IntExpr>),
    /// Euclidean division (errors on division by zero).
    Div(Box<IntExpr>, Box<IntExpr>),
    /// Euclidean remainder (errors on division by zero).
    Rem(Box<IntExpr>, Box<IntExpr>),
    /// Negation.
    Neg(Box<IntExpr>),
    /// Binary minimum.
    Min(Box<IntExpr>, Box<IntExpr>),
    /// Binary maximum.
    Max(Box<IntExpr>, Box<IntExpr>),
    /// Conditional expression `if p { a } else { b }`.
    Ite(Box<Pred>, Box<IntExpr>, Box<IntExpr>),
}

impl IntExpr {
    /// Integer literal.
    #[must_use]
    pub fn lit(value: i64) -> Self {
        Self::Lit(value)
    }

    /// Scalar variable read.
    #[must_use]
    pub fn var(var: VarId) -> Self {
        Self::Var(var)
    }

    /// Array element read.
    #[must_use]
    pub fn elem(array: ArrayId, index: impl Into<IntExpr>) -> Self {
        Self::Elem(array, Box::new(index.into()))
    }

    /// Unbound template parameter.
    #[must_use]
    pub fn param(param: ParamId) -> Self {
        Self::Param(param)
    }

    /// De Bruijn reference to an enclosing quantifier binder.
    #[must_use]
    pub fn bound(depth: usize) -> Self {
        Self::Bound(depth)
    }

    /// Binary minimum.
    #[must_use]
    pub fn min(self, other: impl Into<IntExpr>) -> Self {
        Self::Min(Box::new(self), Box::new(other.into()))
    }

    /// Binary maximum.
    #[must_use]
    pub fn max(self, other: impl Into<IntExpr>) -> Self {
        Self::Max(Box::new(self), Box::new(other.into()))
    }

    /// Conditional expression.
    #[must_use]
    pub fn ite(cond: Pred, then: impl Into<IntExpr>, otherwise: impl Into<IntExpr>) -> Self {
        Self::Ite(
            Box::new(cond),
            Box::new(then.into()),
            Box::new(otherwise.into()),
        )
    }

    /// `self == other`.
    #[must_use]
    pub fn eq(self, other: impl Into<IntExpr>) -> Pred {
        Pred::cmp(CmpOp::Eq, self, other.into())
    }

    /// `self != other`.
    #[must_use]
    pub fn ne(self, other: impl Into<IntExpr>) -> Pred {
        Pred::cmp(CmpOp::Ne, self, other.into())
    }

    /// `self < other`.
    #[must_use]
    pub fn lt(self, other: impl Into<IntExpr>) -> Pred {
        Pred::cmp(CmpOp::Lt, self, other.into())
    }

    /// `self <= other`.
    #[must_use]
    pub fn le(self, other: impl Into<IntExpr>) -> Pred {
        Pred::cmp(CmpOp::Le, self, other.into())
    }

    /// `self > other`.
    #[must_use]
    pub fn gt(self, other: impl Into<IntExpr>) -> Pred {
        Pred::cmp(CmpOp::Gt, self, other.into())
    }

    /// `self >= other`.
    #[must_use]
    pub fn ge(self, other: impl Into<IntExpr>) -> Pred {
        Pred::cmp(CmpOp::Ge, self, other.into())
    }

    /// Evaluates the expression in `env` with no quantifier binders in scope.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on division by zero, overflow, out-of-bounds
    /// array access, unbound parameters or unbound de Bruijn indices.
    pub fn eval(&self, env: &dyn VarEnv) -> Result<i64, EvalError> {
        self.eval_in(env, &mut Vec::new())
    }

    fn eval_in(&self, env: &dyn VarEnv, binders: &mut Vec<i64>) -> Result<i64, EvalError> {
        match self {
            Self::Lit(v) => Ok(*v),
            Self::Var(v) => Ok(env.var(*v)),
            Self::Elem(a, idx) => {
                let i = idx.eval_in(env, binders)?;
                env.elem(*a, i)
            }
            Self::Param(p) => Err(EvalError::UnboundParam(p.raw())),
            Self::Bound(depth) => {
                let len = binders.len();
                if *depth < len {
                    Ok(binders[len - 1 - depth])
                } else {
                    Err(EvalError::UnboundIndex(*depth))
                }
            }
            Self::Add(a, b) => checked(
                a.eval_in(env, binders)?,
                b.eval_in(env, binders)?,
                i64::checked_add,
            ),
            Self::Sub(a, b) => checked(
                a.eval_in(env, binders)?,
                b.eval_in(env, binders)?,
                i64::checked_sub,
            ),
            Self::Mul(a, b) => checked(
                a.eval_in(env, binders)?,
                b.eval_in(env, binders)?,
                i64::checked_mul,
            ),
            Self::Div(a, b) => {
                let d = b.eval_in(env, binders)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                a.eval_in(env, binders)?
                    .checked_div_euclid(d)
                    .ok_or(EvalError::Overflow)
            }
            Self::Rem(a, b) => {
                let d = b.eval_in(env, binders)?;
                if d == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                a.eval_in(env, binders)?
                    .checked_rem_euclid(d)
                    .ok_or(EvalError::Overflow)
            }
            Self::Neg(a) => a
                .eval_in(env, binders)?
                .checked_neg()
                .ok_or(EvalError::Overflow),
            Self::Min(a, b) => Ok(a.eval_in(env, binders)?.min(b.eval_in(env, binders)?)),
            Self::Max(a, b) => Ok(a.eval_in(env, binders)?.max(b.eval_in(env, binders)?)),
            Self::Ite(p, t, e) => {
                if p.eval_in(env, binders)? {
                    t.eval_in(env, binders)
                } else {
                    e.eval_in(env, binders)
                }
            }
        }
    }

    /// Substitutes every [`IntExpr::Param`] with the corresponding value
    /// from `params`, producing a parameter-free expression.
    ///
    /// Parameters with indices outside `params` are left untouched (callers
    /// validate with [`IntExpr::max_param`]).
    #[must_use]
    pub fn bind_params(&self, params: &[i64]) -> Self {
        match self {
            Self::Lit(_) | Self::Var(_) | Self::Bound(_) => self.clone(),
            Self::Param(p) => params
                .get(p.index())
                .map_or_else(|| self.clone(), |v| Self::Lit(*v)),
            Self::Elem(a, idx) => Self::Elem(*a, Box::new(idx.bind_params(params))),
            Self::Add(a, b) => Self::Add(
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Sub(a, b) => Self::Sub(
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Mul(a, b) => Self::Mul(
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Div(a, b) => Self::Div(
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Rem(a, b) => Self::Rem(
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Neg(a) => Self::Neg(Box::new(a.bind_params(params))),
            Self::Min(a, b) => Self::Min(
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Max(a, b) => Self::Max(
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Ite(p, t, e) => Self::Ite(
                Box::new(p.bind_params(params)),
                Box::new(t.bind_params(params)),
                Box::new(e.bind_params(params)),
            ),
        }
    }

    /// Returns the largest parameter index used by the expression, if any.
    #[must_use]
    pub fn max_param(&self) -> Option<u32> {
        match self {
            Self::Lit(_) | Self::Var(_) | Self::Bound(_) => None,
            Self::Param(p) => Some(p.raw()),
            Self::Elem(_, a) | Self::Neg(a) => a.max_param(),
            Self::Add(a, b)
            | Self::Sub(a, b)
            | Self::Mul(a, b)
            | Self::Div(a, b)
            | Self::Rem(a, b)
            | Self::Min(a, b)
            | Self::Max(a, b) => opt_max(a.max_param(), b.max_param()),
            Self::Ite(p, t, e) => opt_max(p.max_param(), opt_max(t.max_param(), e.max_param())),
        }
    }

    /// Returns `true` if the expression contains no variable or array reads
    /// (it may still contain parameters or bound indices).
    #[must_use]
    pub fn is_state_independent(&self) -> bool {
        match self {
            Self::Lit(_) | Self::Param(_) | Self::Bound(_) => true,
            Self::Var(_) | Self::Elem(..) => false,
            Self::Neg(a) => a.is_state_independent(),
            Self::Add(a, b)
            | Self::Sub(a, b)
            | Self::Mul(a, b)
            | Self::Div(a, b)
            | Self::Rem(a, b)
            | Self::Min(a, b)
            | Self::Max(a, b) => a.is_state_independent() && b.is_state_independent(),
            Self::Ite(p, t, e) => {
                p.is_state_independent() && t.is_state_independent() && e.is_state_independent()
            }
        }
    }
}

fn checked(a: i64, b: i64, op: impl FnOnce(i64, i64) -> Option<i64>) -> Result<i64, EvalError> {
    op(a, b).ok_or(EvalError::Overflow)
}

fn opt_max(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl From<i64> for IntExpr {
    fn from(v: i64) -> Self {
        Self::Lit(v)
    }
}

impl From<VarId> for IntExpr {
    fn from(v: VarId) -> Self {
        Self::Var(v)
    }
}

impl Add for IntExpr {
    type Output = IntExpr;
    fn add(self, rhs: IntExpr) -> IntExpr {
        IntExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for IntExpr {
    type Output = IntExpr;
    fn sub(self, rhs: IntExpr) -> IntExpr {
        IntExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul for IntExpr {
    type Output = IntExpr;
    fn mul(self, rhs: IntExpr) -> IntExpr {
        IntExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Neg for IntExpr {
    type Output = IntExpr;
    fn neg(self) -> IntExpr {
        IntExpr::Neg(Box::new(self))
    }
}

impl fmt::Display for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lit(v) => write!(f, "{v}"),
            Self::Var(v) => write!(f, "{v}"),
            Self::Elem(a, idx) => write!(f, "{a}[{idx}]"),
            Self::Param(p) => write!(f, "{p}"),
            Self::Bound(d) => write!(f, "#{d}"),
            Self::Add(a, b) => write!(f, "({a} + {b})"),
            Self::Sub(a, b) => write!(f, "({a} - {b})"),
            Self::Mul(a, b) => write!(f, "({a} * {b})"),
            Self::Div(a, b) => write!(f, "({a} / {b})"),
            Self::Rem(a, b) => write!(f, "({a} % {b})"),
            Self::Neg(a) => write!(f, "(-{a})"),
            Self::Min(a, b) => write!(f, "min({a}, {b})"),
            Self::Max(a, b) => write!(f, "max({a}, {b})"),
            Self::Ite(p, t, e) => write!(f, "({p} ? {t} : {e})"),
        }
    }
}

/// A boolean-valued, clock-free predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Constant truth value.
    Lit(bool),
    /// Comparison between two integer expressions.
    Cmp(CmpOp, Box<IntExpr>, Box<IntExpr>),
    /// Logical negation.
    Not(Box<Pred>),
    /// Conjunction over all operands (true if empty).
    And(Vec<Pred>),
    /// Disjunction over all operands (false if empty).
    Or(Vec<Pred>),
    /// Bounded universal quantifier over the half-open range `[lo, hi)`.
    ///
    /// Inside `body`, [`IntExpr::Bound(0)`](IntExpr::Bound) refers to the
    /// quantified index.
    ForAll {
        /// Inclusive lower bound of the index range.
        lo: Box<IntExpr>,
        /// Exclusive upper bound of the index range.
        hi: Box<IntExpr>,
        /// Quantified body.
        body: Box<Pred>,
    },
    /// Bounded existential quantifier over the half-open range `[lo, hi)`.
    Exists {
        /// Inclusive lower bound of the index range.
        lo: Box<IntExpr>,
        /// Exclusive upper bound of the index range.
        hi: Box<IntExpr>,
        /// Quantified body.
        body: Box<Pred>,
    },
}

impl Pred {
    /// Constant `true`.
    #[must_use]
    pub fn tt() -> Self {
        Self::Lit(true)
    }

    /// Constant `false`.
    #[must_use]
    pub fn ff() -> Self {
        Self::Lit(false)
    }

    /// Comparison between two integer expressions.
    #[must_use]
    pub fn cmp(op: CmpOp, lhs: impl Into<IntExpr>, rhs: impl Into<IntExpr>) -> Self {
        Self::Cmp(op, Box::new(lhs.into()), Box::new(rhs.into()))
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        Self::Not(Box::new(self))
    }

    /// Conjunction `self && other`.
    #[must_use]
    pub fn and(self, other: Pred) -> Self {
        match (self, other) {
            (Self::And(mut xs), Self::And(ys)) => {
                xs.extend(ys);
                Self::And(xs)
            }
            (Self::And(mut xs), y) => {
                xs.push(y);
                Self::And(xs)
            }
            (x, Self::And(mut ys)) => {
                ys.insert(0, x);
                Self::And(ys)
            }
            (x, y) => Self::And(vec![x, y]),
        }
    }

    /// Disjunction `self || other`.
    #[must_use]
    pub fn or(self, other: Pred) -> Self {
        match (self, other) {
            (Self::Or(mut xs), Self::Or(ys)) => {
                xs.extend(ys);
                Self::Or(xs)
            }
            (Self::Or(mut xs), y) => {
                xs.push(y);
                Self::Or(xs)
            }
            (x, Self::Or(mut ys)) => {
                ys.insert(0, x);
                Self::Or(ys)
            }
            (x, y) => Self::Or(vec![x, y]),
        }
    }

    /// Implication `self -> other`.
    #[must_use]
    pub fn implies(self, other: Pred) -> Self {
        self.not().or(other)
    }

    /// Bounded universal quantifier over `[lo, hi)`.
    #[must_use]
    pub fn forall(lo: impl Into<IntExpr>, hi: impl Into<IntExpr>, body: Pred) -> Self {
        Self::ForAll {
            lo: Box::new(lo.into()),
            hi: Box::new(hi.into()),
            body: Box::new(body),
        }
    }

    /// Bounded existential quantifier over `[lo, hi)`.
    #[must_use]
    pub fn exists(lo: impl Into<IntExpr>, hi: impl Into<IntExpr>, body: Pred) -> Self {
        Self::Exists {
            lo: Box::new(lo.into()),
            hi: Box::new(hi.into()),
            body: Box::new(body),
        }
    }

    /// Evaluates the predicate in `env` with no quantifier binders in scope.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] under the same conditions as
    /// [`IntExpr::eval`], plus [`EvalError::RangeTooLarge`] for oversized
    /// quantifier ranges.
    pub fn eval(&self, env: &dyn VarEnv) -> Result<bool, EvalError> {
        self.eval_in(env, &mut Vec::new())
    }

    fn eval_in(&self, env: &dyn VarEnv, binders: &mut Vec<i64>) -> Result<bool, EvalError> {
        match self {
            Self::Lit(b) => Ok(*b),
            Self::Cmp(op, a, b) => Ok(op.apply(a.eval_in(env, binders)?, b.eval_in(env, binders)?)),
            Self::Not(p) => Ok(!p.eval_in(env, binders)?),
            Self::And(ps) => {
                for p in ps {
                    if !p.eval_in(env, binders)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Self::Or(ps) => {
                for p in ps {
                    if p.eval_in(env, binders)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Self::ForAll { lo, hi, body } => {
                let (lo, hi) = quantifier_range(lo, hi, env, binders)?;
                for i in lo..hi {
                    binders.push(i);
                    let holds = body.eval_in(env, binders);
                    binders.pop();
                    if !holds? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Self::Exists { lo, hi, body } => {
                let (lo, hi) = quantifier_range(lo, hi, env, binders)?;
                for i in lo..hi {
                    binders.push(i);
                    let holds = body.eval_in(env, binders);
                    binders.pop();
                    if holds? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Substitutes template parameters, as [`IntExpr::bind_params`].
    #[must_use]
    pub fn bind_params(&self, params: &[i64]) -> Self {
        match self {
            Self::Lit(_) => self.clone(),
            Self::Cmp(op, a, b) => Self::Cmp(
                *op,
                Box::new(a.bind_params(params)),
                Box::new(b.bind_params(params)),
            ),
            Self::Not(p) => Self::Not(Box::new(p.bind_params(params))),
            Self::And(ps) => Self::And(ps.iter().map(|p| p.bind_params(params)).collect()),
            Self::Or(ps) => Self::Or(ps.iter().map(|p| p.bind_params(params)).collect()),
            Self::ForAll { lo, hi, body } => Self::ForAll {
                lo: Box::new(lo.bind_params(params)),
                hi: Box::new(hi.bind_params(params)),
                body: Box::new(body.bind_params(params)),
            },
            Self::Exists { lo, hi, body } => Self::Exists {
                lo: Box::new(lo.bind_params(params)),
                hi: Box::new(hi.bind_params(params)),
                body: Box::new(body.bind_params(params)),
            },
        }
    }

    /// Returns the largest parameter index used by the predicate, if any.
    #[must_use]
    pub fn max_param(&self) -> Option<u32> {
        match self {
            Self::Lit(_) => None,
            Self::Cmp(_, a, b) => opt_max(a.max_param(), b.max_param()),
            Self::Not(p) => p.max_param(),
            Self::And(ps) | Self::Or(ps) => {
                ps.iter().fold(None, |acc, p| opt_max(acc, p.max_param()))
            }
            Self::ForAll { lo, hi, body } | Self::Exists { lo, hi, body } => {
                opt_max(opt_max(lo.max_param(), hi.max_param()), body.max_param())
            }
        }
    }

    /// Returns `true` if the predicate contains no variable or array reads.
    #[must_use]
    pub fn is_state_independent(&self) -> bool {
        match self {
            Self::Lit(_) => true,
            Self::Cmp(_, a, b) => a.is_state_independent() && b.is_state_independent(),
            Self::Not(p) => p.is_state_independent(),
            Self::And(ps) | Self::Or(ps) => ps.iter().all(Pred::is_state_independent),
            Self::ForAll { lo, hi, body } | Self::Exists { lo, hi, body } => {
                lo.is_state_independent()
                    && hi.is_state_independent()
                    && body.is_state_independent()
            }
        }
    }
}

fn quantifier_range(
    lo: &IntExpr,
    hi: &IntExpr,
    env: &dyn VarEnv,
    binders: &mut Vec<i64>,
) -> Result<(i64, i64), EvalError> {
    let lo = lo.eval_in(env, binders)?;
    let hi = hi.eval_in(env, binders)?;
    if hi.saturating_sub(lo) > MAX_QUANTIFIER_RANGE {
        return Err(EvalError::RangeTooLarge { lo, hi });
    }
    Ok((lo, hi))
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lit(b) => write!(f, "{b}"),
            Self::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
            Self::Not(p) => write!(f, "!({p})"),
            Self::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Self::Or(ps) => {
                if ps.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Self::ForAll { lo, hi, body } => write!(f, "forall #: [{lo}, {hi}) . {body}"),
            Self::Exists { lo, hi, body } => write!(f, "exists #: [{lo}, {hi}) . {body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple environment over plain vectors for testing.
    pub(crate) struct VecEnv {
        pub vars: Vec<i64>,
        pub arrays: Vec<Vec<i64>>,
    }

    impl VarEnv for VecEnv {
        fn var(&self, var: VarId) -> i64 {
            self.vars[var.index()]
        }
        fn array_len(&self, array: ArrayId) -> usize {
            self.arrays[array.index()].len()
        }
        fn elem(&self, array: ArrayId, index: i64) -> Result<i64, EvalError> {
            let arr = &self.arrays[array.index()];
            usize::try_from(index)
                .ok()
                .and_then(|i| arr.get(i))
                .copied()
                .ok_or(EvalError::IndexOutOfBounds {
                    array: array.raw(),
                    index,
                    len: arr.len(),
                })
        }
    }

    fn env() -> VecEnv {
        VecEnv {
            vars: vec![3, -2, 10],
            arrays: vec![vec![5, 7, 9], vec![1, 0]],
        }
    }

    #[test]
    fn arithmetic_evaluation() {
        let e = env();
        let v0 = IntExpr::var(VarId::from_raw(0));
        let v1 = IntExpr::var(VarId::from_raw(1));
        assert_eq!((v0.clone() + v1.clone()).eval(&e).unwrap(), 1);
        assert_eq!((v0.clone() - v1.clone()).eval(&e).unwrap(), 5);
        assert_eq!((v0.clone() * v1.clone()).eval(&e).unwrap(), -6);
        assert_eq!((-v0.clone()).eval(&e).unwrap(), -3);
        assert_eq!(v0.clone().min(v1.clone()).eval(&e).unwrap(), -2);
        assert_eq!(v0.max(v1).eval(&e).unwrap(), 3);
    }

    #[test]
    fn euclidean_division() {
        let e = env();
        let expr = IntExpr::Div(Box::new(IntExpr::lit(-7)), Box::new(IntExpr::lit(2)));
        assert_eq!(expr.eval(&e).unwrap(), -4);
        let expr = IntExpr::Rem(Box::new(IntExpr::lit(-7)), Box::new(IntExpr::lit(2)));
        assert_eq!(expr.eval(&e).unwrap(), 1);
    }

    #[test]
    fn division_by_zero_errors() {
        let e = env();
        let expr = IntExpr::Div(Box::new(IntExpr::lit(1)), Box::new(IntExpr::lit(0)));
        assert_eq!(expr.eval(&e), Err(EvalError::DivisionByZero));
        let expr = IntExpr::Rem(Box::new(IntExpr::lit(1)), Box::new(IntExpr::lit(0)));
        assert_eq!(expr.eval(&e), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn overflow_is_detected() {
        let e = env();
        let expr = IntExpr::lit(i64::MAX) + IntExpr::lit(1);
        assert_eq!(expr.eval(&e), Err(EvalError::Overflow));
    }

    #[test]
    fn array_access() {
        let e = env();
        let a0 = ArrayId::from_raw(0);
        assert_eq!(IntExpr::elem(a0, 2).eval(&e).unwrap(), 9);
        assert!(matches!(
            IntExpr::elem(a0, 3).eval(&e),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            IntExpr::elem(a0, -1).eval(&e),
            Err(EvalError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn ite_selects_branch() {
        let e = env();
        let cond = IntExpr::var(VarId::from_raw(0)).gt(0);
        let expr = IntExpr::ite(cond, 100, 200);
        assert_eq!(expr.eval(&e).unwrap(), 100);
    }

    #[test]
    fn comparisons() {
        let e = env();
        assert!(IntExpr::lit(1).lt(2).eval(&e).unwrap());
        assert!(IntExpr::lit(2).le(2).eval(&e).unwrap());
        assert!(IntExpr::lit(3).gt(2).eval(&e).unwrap());
        assert!(IntExpr::lit(3).ge(3).eval(&e).unwrap());
        assert!(IntExpr::lit(3).eq(3).eval(&e).unwrap());
        assert!(IntExpr::lit(3).ne(4).eval(&e).unwrap());
    }

    #[test]
    fn logic_short_circuits() {
        let e = env();
        // false && (1/0 == 0) must not evaluate the division.
        let div = IntExpr::Div(Box::new(IntExpr::lit(1)), Box::new(IntExpr::lit(0)));
        let p = Pred::ff().and(div.clone().eq(0));
        assert!(!p.eval(&e).unwrap());
        let p = Pred::tt().or(div.eq(0));
        assert!(p.eval(&e).unwrap());
    }

    #[test]
    fn forall_over_array() {
        let e = env();
        let a0 = ArrayId::from_raw(0);
        // forall i in [0,3): a0[i] >= 5
        let p = Pred::forall(0, 3, IntExpr::elem(a0, IntExpr::bound(0)).ge(5));
        assert!(p.eval(&e).unwrap());
        // forall i in [0,3): a0[i] >= 6 — fails at i=0.
        let p = Pred::forall(0, 3, IntExpr::elem(a0, IntExpr::bound(0)).ge(6));
        assert!(!p.eval(&e).unwrap());
    }

    #[test]
    fn exists_over_array() {
        let e = env();
        let a1 = ArrayId::from_raw(1);
        let p = Pred::exists(0, 2, IntExpr::elem(a1, IntExpr::bound(0)).eq(0));
        assert!(p.eval(&e).unwrap());
        let p = Pred::exists(0, 2, IntExpr::elem(a1, IntExpr::bound(0)).eq(9));
        assert!(!p.eval(&e).unwrap());
    }

    #[test]
    fn nested_quantifiers_use_de_bruijn_depth() {
        let e = env();
        let a0 = ArrayId::from_raw(0);
        // forall i in [0,3): exists j in [0,3): a0[j] >= a0[i]
        let p = Pred::forall(
            0,
            3,
            Pred::exists(
                0,
                3,
                IntExpr::elem(a0, IntExpr::bound(0)).ge(IntExpr::elem(a0, IntExpr::bound(1))),
            ),
        );
        assert!(p.eval(&e).unwrap());
    }

    #[test]
    fn empty_forall_is_true_empty_exists_is_false() {
        let e = env();
        assert!(Pred::forall(5, 5, Pred::ff()).eval(&e).unwrap());
        assert!(!Pred::exists(5, 5, Pred::tt()).eval(&e).unwrap());
    }

    #[test]
    fn oversized_range_rejected() {
        let e = env();
        let p = Pred::forall(0, MAX_QUANTIFIER_RANGE + 1, Pred::tt());
        assert!(matches!(p.eval(&e), Err(EvalError::RangeTooLarge { .. })));
    }

    #[test]
    fn unbound_param_and_binding() {
        let e = env();
        let expr = IntExpr::param(ParamId::from_raw(1)) + IntExpr::lit(1);
        assert_eq!(expr.eval(&e), Err(EvalError::UnboundParam(1)));
        assert_eq!(expr.max_param(), Some(1));
        let bound = expr.bind_params(&[10, 20]);
        assert_eq!(bound.eval(&e).unwrap(), 21);
        assert_eq!(bound.max_param(), None);
    }

    #[test]
    fn unbound_de_bruijn_index_errors() {
        let e = env();
        assert_eq!(IntExpr::bound(0).eval(&e), Err(EvalError::UnboundIndex(0)));
    }

    #[test]
    fn bind_params_in_predicates() {
        let e = env();
        let p = IntExpr::param(ParamId::from_raw(0)).ge(3);
        assert_eq!(p.max_param(), Some(0));
        assert!(p.bind_params(&[5]).eval(&e).unwrap());
        assert!(!p.bind_params(&[2]).eval(&e).unwrap());
    }

    #[test]
    fn state_independence() {
        assert!(IntExpr::lit(1).is_state_independent());
        assert!((IntExpr::lit(1) + IntExpr::param(ParamId::from_raw(0))).is_state_independent());
        assert!(!IntExpr::var(VarId::from_raw(0)).is_state_independent());
        assert!(Pred::tt().is_state_independent());
        assert!(!Pred::exists(
            0,
            3,
            IntExpr::elem(ArrayId::from_raw(0), IntExpr::bound(0)).eq(1)
        )
        .is_state_independent());
    }

    #[test]
    fn cmp_op_flip() {
        for (op, flipped) in [
            (CmpOp::Lt, CmpOp::Gt),
            (CmpOp::Le, CmpOp::Ge),
            (CmpOp::Eq, CmpOp::Eq),
            (CmpOp::Ne, CmpOp::Ne),
        ] {
            assert_eq!(op.flip(), flipped);
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.apply(a, b), op.flip().apply(b, a));
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let v0 = IntExpr::var(VarId::from_raw(0));
        let p = Pred::forall(0, 3, IntExpr::bound(0).le(v0));
        let s = p.to_string();
        assert!(s.contains("forall"), "{s}");
        assert!(s.contains("v0"), "{s}");
    }

    #[test]
    fn and_or_flatten() {
        let p = Pred::tt().and(Pred::ff()).and(Pred::tt());
        if let Pred::And(ps) = &p {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened And, got {p:?}");
        }
        let p = Pred::tt().or(Pred::ff()).or(Pred::tt());
        if let Pred::Or(ps) = &p {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened Or, got {p:?}");
        }
    }
}
