//! Cache-accelerated simulation core.
//!
//! The generic interpreter rescans every automaton after every transition —
//! `O(automata)` per step, quadratic overall for instance models whose size
//! grows with the workload. This module exploits two structural properties
//! that the paper's component models (and most well-formed NSA models)
//! have:
//!
//! 1. **Most locations are passive**: all outgoing edges are receives
//!    (`ch?`) — the automaton never *initiates* a transition there, so the
//!    scan can skip it entirely (schedulers parked in `asleep`/`idle`/
//!    `running`, links in `idle`).
//! 2. **Most guards are state-independent**: predicates and clock-atom
//!    bounds built from literals. Their enabling windows depend only on the
//!    automaton's own clocks, so the *absolute* earliest initiation time
//!    (`wake[a]`) can be cached when the automaton enters the location and
//!    stays exact until the automaton itself moves.
//!
//! A network is *eligible* for the fast path when receive-edge guards are
//! clock-free and no edge manipulates a clock that another automaton's
//! guards or invariants read — both true of every model `swa-core`
//! generates, and checked structurally here. Ineligible networks (and
//! non-canonical tie-breaks) fall back to the generic interpreter; the two
//! produce identical traces, which the test-suite asserts.

use crate::automaton::Sync;
use crate::error::SimError;
use crate::guard::{Guard, Invariant};
use crate::ids::{AutomatonId, ClockId, EdgeId};
use crate::network::{ChannelKind, Network};
use crate::semantics::{apply, Transition};
use crate::state::{EnvView, State};

/// Per-location static classification.
#[derive(Debug, Clone)]
struct LocInfo {
    /// Edges that can initiate a transition (internal or send), in order.
    initiators: Vec<EdgeId>,
    /// Whether every initiator guard is state-independent (its enabling
    /// window, computed on entry, stays exact until the automaton moves).
    guards_cacheable: bool,
    /// Whether the location invariant's bounds are state-independent.
    inv_cacheable: bool,
    /// Whether the location is committed.
    committed: bool,
}

/// Static per-network acceleration data.
#[derive(Debug, Clone)]
pub struct FastCache {
    /// Whether the network satisfies the fast-path preconditions.
    eligible: bool,
    /// `info[automaton][location]`.
    info: Vec<Vec<LocInfo>>,
}

fn guard_state_independent(guard: &Guard) -> bool {
    guard.preds.iter().all(swa_pred_indep)
        && guard
            .clock_atoms
            .iter()
            .all(|a| a.rhs.is_state_independent())
}

fn swa_pred_indep(p: &crate::expr::Pred) -> bool {
    p.is_state_independent()
}

fn invariant_state_independent(inv: &Invariant) -> bool {
    inv.atoms.iter().all(|a| a.rhs.is_state_independent())
}

fn updated_clocks(updates: &[crate::update::Update], out: &mut Vec<ClockId>) {
    use crate::update::Update;
    for u in updates {
        match u {
            Update::ResetClock(c) | Update::StopClock(c) | Update::StartClock(c) => out.push(*c),
            Update::If {
                then, otherwise, ..
            } => {
                updated_clocks(then, out);
                updated_clocks(otherwise, out);
            }
            Update::Assign { .. } => {}
        }
    }
}

fn referenced_clocks_expr(guard: &Guard, inv: &Invariant, out: &mut Vec<ClockId>) {
    for a in &guard.clock_atoms {
        out.push(a.clock);
    }
    for a in &inv.atoms {
        out.push(a.clock);
    }
}

impl FastCache {
    /// Analyzes a network for fast-path eligibility and builds the
    /// per-location classification.
    #[must_use]
    pub fn new(network: &Network) -> Self {
        // Eligibility (a): receive-edge guards must be clock-free.
        let mut eligible = true;
        'outer: for a in network.automata() {
            for e in &a.edges {
                if matches!(e.sync, Sync::Recv(_)) && !e.guard.clock_atoms.is_empty() {
                    eligible = false;
                    break 'outer;
                }
            }
        }

        // Eligibility (b): no edge updates a clock referenced by another
        // automaton.
        if eligible {
            let mut clock_readers: Vec<Vec<AutomatonId>> = vec![Vec::new(); network.clocks().len()];
            for (ai, a) in network.automata().iter().enumerate() {
                let aid =
                    AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
                let mut refs = Vec::new();
                for l in &a.locations {
                    referenced_clocks_expr(&Guard::always(), &l.invariant, &mut refs);
                }
                for e in &a.edges {
                    referenced_clocks_expr(&e.guard, &Invariant::none(), &mut refs);
                }
                for c in refs {
                    if !clock_readers[c.index()].contains(&aid) {
                        clock_readers[c.index()].push(aid);
                    }
                }
            }
            'outer2: for (ai, a) in network.automata().iter().enumerate() {
                let aid =
                    AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
                for e in &a.edges {
                    let mut touched = Vec::new();
                    updated_clocks(&e.updates, &mut touched);
                    for c in touched {
                        if clock_readers[c.index()].iter().any(|r| *r != aid) {
                            eligible = false;
                            break 'outer2;
                        }
                    }
                }
            }
        }

        let mut info = Vec::with_capacity(network.automata().len());
        for (ai, a) in network.automata().iter().enumerate() {
            let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
            let mut per_loc = Vec::with_capacity(a.locations.len());
            for (li, l) in a.locations.iter().enumerate() {
                let lid = crate::ids::LocationId::from_raw(
                    u32::try_from(li).expect("location count fits u32"),
                );
                let mut initiators = Vec::new();
                let mut guards_cacheable = true;
                for &eid in network.outgoing_edges(aid, lid) {
                    let e = a.edge(eid);
                    if matches!(e.sync, Sync::Recv(_)) {
                        continue;
                    }
                    if !guard_state_independent(&e.guard) {
                        guards_cacheable = false;
                    }
                    initiators.push(eid);
                }
                per_loc.push(LocInfo {
                    initiators,
                    guards_cacheable,
                    inv_cacheable: invariant_state_independent(&l.invariant),
                    committed: l.committed,
                });
            }
            info.push(per_loc);
        }

        Self { eligible, info }
    }

    /// Whether the fast path may be used for this network.
    #[must_use]
    pub fn eligible(&self) -> bool {
        self.eligible
    }
}

/// A running fast interpretation.
pub(crate) struct FastRun<'n> {
    network: &'n Network,
    cache: &'n FastCache,
    /// Absolute earliest time automaton `a` could initiate a transition
    /// (`i64::MAX` = never, as long as it does not move). For locations
    /// with non-cacheable guards this is kept at the current time
    /// (rescan every step).
    wake: Vec<i64>,
    /// `wake[a]` is a live lower bound only when the guards are cacheable;
    /// otherwise the automaton is rescanned and its delay windows are
    /// recomputed on demand.
    dynamic: Vec<bool>,
    /// Absolute invariant expiry per automaton (`i64::MAX` = unbounded).
    inv_expiry: Vec<i64>,
    /// Invariants needing recomputation at each delay decision.
    inv_dynamic: Vec<bool>,
    committed_count: usize,
}

impl<'n> FastRun<'n> {
    pub(crate) fn new(
        network: &'n Network,
        cache: &'n FastCache,
        state: &State,
    ) -> Result<Self, SimError> {
        let n = network.automata().len();
        let mut run = Self {
            network,
            cache,
            wake: vec![0; n],
            dynamic: vec![false; n],
            inv_expiry: vec![i64::MAX; n],
            inv_dynamic: vec![false; n],
            committed_count: 0,
        };
        for ai in 0..n {
            let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
            run.refresh(aid, state)?;
            let info = run.loc_info(aid, state);
            if info.committed {
                run.committed_count += 1;
            }
        }
        Ok(run)
    }

    fn loc_info(&self, a: AutomatonId, state: &State) -> &LocInfo {
        &self.cache.info[a.index()][state.location_of(a).index()]
    }

    /// Recomputes the cached wake time and invariant expiry of `a`.
    fn refresh(&mut self, a: AutomatonId, state: &State) -> Result<(), SimError> {
        let info = &self.cache.info[a.index()][state.location_of(a).index()];
        let view = EnvView {
            network: self.network,
            state,
        };
        let now = state.time;

        self.dynamic[a.index()] = !info.guards_cacheable;
        if info.initiators.is_empty() {
            self.wake[a.index()] = i64::MAX;
        } else if info.guards_cacheable {
            let mut wake = i64::MAX;
            let automaton = self.network.automaton(a);
            for &eid in &info.initiators {
                let edge = automaton.edge(eid);
                if let Some(w) = edge
                    .guard
                    .enabling_window(&view, &view)
                    .map_err(SimError::Eval)?
                {
                    wake = wake.min(now.saturating_add(w.lo));
                }
            }
            self.wake[a.index()] = wake;
        } else {
            self.wake[a.index()] = now;
        }

        self.inv_dynamic[a.index()] = !info.inv_cacheable;
        let inv = &self
            .network
            .automaton(a)
            .location(state.location_of(a))
            .invariant;
        self.inv_expiry[a.index()] = match inv.max_delay(&view, &view).map_err(SimError::Eval)? {
            None => i64::MAX,
            Some(d) => now.saturating_add(d.max(0)),
        };
        Ok(())
    }

    /// Finds the first enabled transition in canonical order.
    pub(crate) fn first_enabled(&self, state: &State) -> Result<Option<Transition>, SimError> {
        let view = EnvView {
            network: self.network,
            state,
        };
        let now = state.time;
        for ai in 0..self.network.automata().len() {
            if self.wake[ai] > now {
                continue;
            }
            let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
            let info = self.loc_info(aid, state);
            let automaton = self.network.automaton(aid);
            for &eid in &info.initiators {
                let edge = automaton.edge(eid);
                if !edge.guard.holds(&view, &view).map_err(SimError::Eval)? {
                    continue;
                }
                let transition = match edge.sync {
                    Sync::Internal => Some(Transition::Internal {
                        participant: (aid, eid),
                    }),
                    Sync::Send(ch) => match self.network.channels()[ch.index()].kind {
                        ChannelKind::Binary => {
                            let mut found = None;
                            for &(bid, beid) in self.network.receivers_on(ch) {
                                if bid == aid {
                                    continue;
                                }
                                let redge = self.network.automaton(bid).edge(beid);
                                if redge.from == state.location_of(bid)
                                    && redge.guard.holds(&view, &view).map_err(SimError::Eval)?
                                {
                                    found = Some(Transition::Binary {
                                        channel: ch,
                                        sender: (aid, eid),
                                        receiver: (bid, beid),
                                    });
                                    break;
                                }
                            }
                            found
                        }
                        ChannelKind::Broadcast => {
                            let mut receivers = Vec::new();
                            let mut last: Option<AutomatonId> = None;
                            for &(bid, beid) in self.network.receivers_on(ch) {
                                if bid == aid || last == Some(bid) {
                                    continue;
                                }
                                let redge = self.network.automaton(bid).edge(beid);
                                if redge.from == state.location_of(bid)
                                    && redge.guard.holds(&view, &view).map_err(SimError::Eval)?
                                {
                                    receivers.push((bid, beid));
                                    last = Some(bid);
                                }
                            }
                            Some(Transition::Broadcast {
                                channel: ch,
                                sender: (aid, eid),
                                receivers,
                            })
                        }
                    },
                    Sync::Recv(_) => None,
                };
                let Some(t) = transition else { continue };
                if self.committed_count > 0
                    && !t
                        .participants()
                        .iter()
                        .any(|(p, _)| self.loc_info(*p, state).committed)
                {
                    continue;
                }
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    /// Applies a transition, refreshing the caches of every participant.
    pub(crate) fn apply(
        &mut self,
        state: &mut State,
        transition: &Transition,
    ) -> Result<(), SimError> {
        let participants = transition.participants();
        for &(p, _) in &participants {
            if self.loc_info(p, state).committed {
                self.committed_count -= 1;
            }
        }
        apply(self.network, state, transition)?;
        for &(p, _) in &participants {
            if self.loc_info(p, state).committed {
                self.committed_count += 1;
            }
            self.refresh(p, state)?;
        }
        Ok(())
    }

    /// Whether any automaton currently sits in a committed location.
    pub(crate) fn any_committed(&self) -> bool {
        self.committed_count > 0
    }

    /// The delay decision: `(next_enabling_abs, invariant_expiry_abs)`,
    /// either of which may be `i64::MAX` for "never"/"unbounded".
    pub(crate) fn delay_targets(&self, state: &State) -> Result<(i64, i64), SimError> {
        let now = state.time;
        let view = EnvView {
            network: self.network,
            state,
        };
        let mut next = i64::MAX;
        let mut expiry = i64::MAX;
        for ai in 0..self.network.automata().len() {
            if self.dynamic[ai] {
                // Recompute the enabling windows against the current
                // variables (constant during the delay, so this is exact).
                let aid =
                    AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
                let info = self.loc_info(aid, state);
                let automaton = self.network.automaton(aid);
                for &eid in &info.initiators {
                    let edge = automaton.edge(eid);
                    if let Some(w) = edge
                        .guard
                        .enabling_window(&view, &view)
                        .map_err(SimError::Eval)?
                    {
                        let lo = w.lo.max(1);
                        if w.contains(lo) {
                            next = next.min(now.saturating_add(lo));
                        }
                    }
                }
            } else if self.wake[ai] > now {
                next = next.min(self.wake[ai]);
            }
            if self.inv_dynamic[ai] {
                let aid =
                    AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
                let inv = &self
                    .network
                    .automaton(aid)
                    .location(state.location_of(aid))
                    .invariant;
                match inv.max_delay(&view, &view).map_err(SimError::Eval)? {
                    None => {}
                    Some(d) => expiry = expiry.min(now.saturating_add(d.max(0))),
                }
            } else {
                expiry = expiry.min(self.inv_expiry[ai]);
            }
        }
        Ok((next, expiry))
    }

    /// The id of some automaton whose invariant expires first (diagnostics).
    pub(crate) fn earliest_bounded_automaton(&self) -> AutomatonId {
        let mut best = (i64::MAX, 0usize);
        for (ai, &e) in self.inv_expiry.iter().enumerate() {
            if e < best.0 {
                best = (e, ai);
            }
        }
        AutomatonId::from_raw(u32::try_from(best.1).expect("automaton count fits u32"))
    }

    /// The id of some committed automaton (diagnostics).
    pub(crate) fn committed_automaton(&self, state: &State) -> AutomatonId {
        for ai in 0..self.network.automata().len() {
            let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
            if self.loc_info(aid, state).committed {
                return aid;
            }
        }
        AutomatonId::from_raw(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::expr::{CmpOp, IntExpr};
    use crate::guard::{ClockAtom, Guard, Invariant};
    use crate::network::NetworkBuilder;
    use crate::sim::{Simulator, TieBreak};
    use crate::update::Update;

    /// A periodic ticker (state-independent guards — fully cacheable).
    fn ticker_network(period: i64) -> Network {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("t");
        let l0 = a.location_with_invariant("wait", Invariant::upper_bound(c, period));
        a.edge(
            Edge::new(l0, l0)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, period)))
                .with_update(Update::ResetClock(c)),
        );
        nb.automaton(a.finish(l0));
        nb.build().unwrap()
    }

    #[test]
    fn cacheable_network_is_eligible() {
        let n = ticker_network(5);
        assert!(FastCache::new(&n).eligible());
    }

    #[test]
    fn clock_guarded_receive_disables_fast_path() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let ch = nb.binary_channel("go");
        let mut a = AutomatonBuilder::new("s");
        let l0 = a.location("l0");
        a.edge(Edge::new(l0, l0).with_sync(crate::automaton::Sync::Send(ch)));
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("r");
        let l0 = b.location("l0");
        b.edge(
            Edge::new(l0, l0)
                .with_sync(crate::automaton::Sync::Recv(ch))
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 3))),
        );
        nb.automaton(b.finish(l0));
        let n = nb.build().unwrap();
        assert!(!FastCache::new(&n).eligible());
    }

    #[test]
    fn foreign_clock_update_disables_fast_path() {
        // Automaton "meddler" resets a clock that "watcher" guards on.
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("watcher");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                5,
            ))),
        );
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("meddler");
        let m0 = b.location("m0");
        b.edge(Edge::new(m0, m0).with_update(Update::ResetClock(c)));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        assert!(!FastCache::new(&n).eligible());
    }

    #[test]
    fn own_clock_updates_stay_eligible() {
        // The ticker resets its own guarded clock: fine.
        let n = ticker_network(3);
        assert!(FastCache::new(&n).eligible());
    }

    #[test]
    fn var_dependent_guards_stay_eligible_but_dynamic() {
        // A guard reading a variable doesn't disable the fast path; the
        // location is just rescanned (the equality test below proves the
        // semantics are preserved).
        let mut nb = NetworkBuilder::new();
        let v = nb.var("x", 0, 0, 5);
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("setter");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 2));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 2)))
                .with_update(Update::set(v, 1)),
        );
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("follower");
        let m0 = b.location("m0");
        let m1 = b.location("m1");
        b.edge(Edge::new(m0, m1).with_guard(Guard::when(IntExpr::var(v).eq(1))));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        assert!(FastCache::new(&n).eligible());

        let fast = Simulator::new(&n).horizon(10).run().unwrap();
        let identity = TieBreak::Permuted(vec![0, 1]);
        let generic = Simulator::new(&n)
            .horizon(10)
            .tie_break(identity)
            .run()
            .unwrap();
        assert_eq!(fast.trace, generic.trace);
        let times: Vec<i64> = fast.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2, 2]);
    }

    #[test]
    fn fast_and_generic_agree_on_mixed_networks() {
        // Binary syncs + invariants + stopped clocks.
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let stop = nb.stopped_clock("s");
        let ch = nb.binary_channel("go");
        let mut a = AutomatonBuilder::new("sender");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 4));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 4)))
                .with_sync(crate::automaton::Sync::Send(ch))
                .with_update(Update::StartClock(stop)),
        );
        let l2 = a.location("l2");
        a.edge(
            Edge::new(l1, l2).with_guard(Guard::always().and_clock(ClockAtom::new(
                stop,
                CmpOp::Ge,
                3,
            ))),
        );
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("receiver");
        let m0 = b.location("m0");
        b.edge(Edge::new(m0, m0).with_sync(crate::automaton::Sync::Recv(ch)));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        assert!(FastCache::new(&n).eligible());

        let fast = Simulator::new(&n).horizon(20).run().unwrap();
        let generic = Simulator::new(&n)
            .horizon(20)
            .tie_break(TieBreak::Permuted(vec![0, 1]))
            .run()
            .unwrap();
        assert_eq!(fast.trace, generic.trace);
        let times: Vec<i64> = fast.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![4, 7]);
    }

    #[test]
    fn fast_path_detects_time_lock_like_generic() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("stuck");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                10,
            ))),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        assert!(FastCache::new(&n).eligible());
        let err = Simulator::new(&n).horizon(100).run().unwrap_err();
        assert!(matches!(err, SimError::TimeLock { .. }));
    }
}
