//! Cache-accelerated simulation core.
//!
//! The generic interpreter rescans every automaton after every transition —
//! `O(automata)` per step, quadratic overall for instance models whose size
//! grows with the workload. This module exploits two structural properties
//! that the paper's component models (and most well-formed NSA models)
//! have:
//!
//! 1. **Most locations are passive**: all outgoing edges are receives
//!    (`ch?`) — the automaton never *initiates* a transition there, so the
//!    scan can skip it entirely (schedulers parked in `asleep`/`idle`/
//!    `running`, links in `idle`).
//! 2. **Most guards are state-independent**: predicates and clock-atom
//!    bounds built from literals. Their enabling windows depend only on the
//!    automaton's own clocks, so the *absolute* earliest initiation time
//!    (`wake[a]`) can be cached when the automaton enters the location and
//!    stays exact until the automaton itself moves.
//!
//! On top of the cached wake times, [`FastRun`] keeps an **event wheel** so
//! that neither finding the next transition nor computing the next delay
//! target requires an `O(automata)` scan:
//!
//! * a `ready` set (ordered by automaton id — canonical order) of cacheable
//!   automata whose wake time has arrived,
//! * a lazy-deletion min-heap of *future* wake times, drained into `ready`
//!   whenever time advances,
//! * a mirror heap of invariant expiries,
//! * a `dynamic` set of automata whose guards read variables and must be
//!   rescanned at every step, and
//! * per-channel receiver-readiness sets holding exactly the receiving
//!   edges whose source location is current, in canonical order.
//!
//! Heap entries are never updated in place: an entry `(t, a)` is *live* iff
//! the corresponding cached value still equals `t` (and the automaton is
//! still cacheable); stale entries are discarded when they surface. A step
//! therefore costs `O(participants · log automata)` instead of
//! `O(automata)`.
//!
//! A network is *eligible* for the fast path when receive-edge guards are
//! clock-free and no edge manipulates a clock that another automaton's
//! guards or invariants read — both true of every model `swa-core`
//! generates, and checked structurally here. Ineligible networks (and
//! non-canonical tie-breaks) fall back to the generic interpreter; the two
//! produce identical traces, which the test-suite asserts.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

use crate::automaton::Sync;
use crate::bytecode::{self, EvalEngine};
use crate::error::SimError;
use crate::guard::{Guard, Invariant};
use crate::ids::{AutomatonId, ChannelId, ClockId, EdgeId, LocationId};
use crate::network::{ChannelKind, Network};
use crate::semantics::{apply_with, Transition};
use crate::sim::SimStats;
use crate::state::State;

/// Absolute time `now + delay`, or [`SimError::Overflow`] when the sum
/// leaves `i64`. (Saturating here would silently park the automaton at
/// `i64::MAX` — indistinguishable from "never fires".)
fn abs_time(now: i64, delay: i64) -> Result<i64, SimError> {
    now.checked_add(delay)
        .ok_or(SimError::Overflow { time: now })
}

/// Per-location static classification.
#[derive(Debug, Clone)]
struct LocInfo {
    /// Edges that can initiate a transition (internal or send), in order.
    initiators: Vec<EdgeId>,
    /// Receiving edges out of this location, in ascending edge order.
    recv_edges: Vec<(ChannelId, EdgeId)>,
    /// Whether every initiator guard is state-independent (its enabling
    /// window, computed on entry, stays exact until the automaton moves).
    guards_cacheable: bool,
    /// Whether the location invariant's bounds are state-independent.
    inv_cacheable: bool,
    /// Whether the location is committed.
    committed: bool,
    /// Whether every initiator is an internal (no-sync) edge and the
    /// location is not committed: such a location can never fire while a
    /// committed location is active elsewhere, so the scan keeps it in a
    /// side set it skips wholesale in that case.
    internal_only: bool,
    /// Equality-dispatch index over `initiators` (see [`EqIndex`]), built
    /// when enough of them open with a `var == lit` test on one variable.
    eq_index: Option<EqIndex>,
}

/// Equality-dispatch index over a location's initiator edges.
///
/// Scheduler-style locations fan out into one edge per task, each guarded
/// by a leading `running == k` conjunct — a linear scan re-evaluates every
/// one of them although at most one bucket can pass. The index groups the
/// edges by the literal their leading equality pins `slot` to; a scan then
/// evaluates only `buckets[vars[slot]]` plus the unindexed `rest`. Both
/// sides keep canonical (ascending) edge order, so merging them reproduces
/// the full scan minus edges whose leading equality is false.
///
/// Skipping those edges is observationally exact: both engines evaluate a
/// guard's predicates in order with short-circuit conjunction, the leading
/// equality is the first term evaluated, and a `Var`/`Lit` comparison
/// cannot error — so a skipped guard would have returned `false` without
/// side effects.
#[derive(Debug, Clone)]
struct EqIndex {
    /// The variable the leading equalities test.
    slot: crate::ids::VarId,
    /// Edges per pinned literal, each list in ascending edge order.
    buckets: std::collections::HashMap<i64, Vec<EdgeId>>,
    /// Initiators without a leading equality on `slot`, ascending.
    rest: Vec<EdgeId>,
}

/// The `(var, lit)` of a guard's leading `var == lit` conjunct, if the
/// guard always evaluates it first: the leftmost atom of the first
/// clock-free predicate along its `And` spine. `None` for any other shape
/// (including guards whose first term could error or read other state).
fn leading_eq(guard: &Guard) -> Option<(crate::ids::VarId, i64)> {
    use crate::expr::{CmpOp, IntExpr, Pred};
    let mut p = guard.preds.first()?;
    loop {
        match p {
            Pred::And(ps) => p = ps.first()?,
            Pred::Cmp(CmpOp::Eq, a, b) => {
                return match (a.as_ref(), b.as_ref()) {
                    (IntExpr::Var(v), IntExpr::Lit(c)) | (IntExpr::Lit(c), IntExpr::Var(v)) => {
                        Some((*v, *c))
                    }
                    _ => None,
                };
            }
            _ => return None,
        }
    }
}

/// Builds the [`EqIndex`] for one location, or `None` when too few
/// initiators share a leading equality for the index to pay off.
fn build_eq_index(a: &crate::automaton::Automaton, initiators: &[EdgeId]) -> Option<EqIndex> {
    const MIN_INDEXED: usize = 16;
    let mut slots: Vec<(crate::ids::VarId, usize)> = Vec::new();
    for &eid in initiators {
        if let Some((v, _)) = leading_eq(&a.edge(eid).guard) {
            match slots.iter_mut().find(|(s, _)| *s == v) {
                Some((_, n)) => *n += 1,
                None => slots.push((v, 1)),
            }
        }
    }
    let &(slot, best) = slots.iter().max_by_key(|&&(_, n)| n)?;
    if best < MIN_INDEXED {
        return None;
    }
    let mut buckets: std::collections::HashMap<i64, Vec<EdgeId>> =
        std::collections::HashMap::new();
    let mut rest = Vec::new();
    for &eid in initiators {
        match leading_eq(&a.edge(eid).guard) {
            Some((v, c)) if v == slot => buckets.entry(c).or_default().push(eid),
            _ => rest.push(eid),
        }
    }
    Some(EqIndex {
        slot,
        buckets,
        rest,
    })
}

/// Merges two ascending edge-id slices, preserving canonical order.
struct MergeEdges<'a> {
    a: &'a [EdgeId],
    b: &'a [EdgeId],
}

impl<'a> MergeEdges<'a> {
    fn new(a: &'a [EdgeId], b: &'a [EdgeId]) -> Self {
        Self { a, b }
    }
}

impl Iterator for MergeEdges<'_> {
    type Item = EdgeId;

    fn next(&mut self) -> Option<EdgeId> {
        match (self.a.first(), self.b.first()) {
            (Some(&x), Some(&y)) => {
                if x.raw() <= y.raw() {
                    self.a = &self.a[1..];
                    Some(x)
                } else {
                    self.b = &self.b[1..];
                    Some(y)
                }
            }
            (Some(&x), None) => {
                self.a = &self.a[1..];
                Some(x)
            }
            (None, Some(&y)) => {
                self.b = &self.b[1..];
                Some(y)
            }
            (None, None) => None,
        }
    }
}

/// Static per-network acceleration data.
#[derive(Debug, Clone)]
pub struct FastCache {
    /// Whether the network satisfies the fast-path preconditions.
    eligible: bool,
    /// `info[automaton][location]`.
    info: Vec<Vec<LocInfo>>,
}

fn guard_state_independent(guard: &Guard) -> bool {
    guard.preds.iter().all(swa_pred_indep)
        && guard
            .clock_atoms
            .iter()
            .all(|a| a.rhs.is_state_independent())
}

fn swa_pred_indep(p: &crate::expr::Pred) -> bool {
    p.is_state_independent()
}

fn invariant_state_independent(inv: &Invariant) -> bool {
    inv.atoms.iter().all(|a| a.rhs.is_state_independent())
}

fn updated_clocks(updates: &[crate::update::Update], out: &mut Vec<ClockId>) {
    use crate::update::Update;
    for u in updates {
        match u {
            Update::ResetClock(c) | Update::StopClock(c) | Update::StartClock(c) => out.push(*c),
            Update::If {
                then, otherwise, ..
            } => {
                updated_clocks(then, out);
                updated_clocks(otherwise, out);
            }
            Update::Assign { .. } => {}
        }
    }
}

fn referenced_clocks_expr(guard: &Guard, inv: &Invariant, out: &mut Vec<ClockId>) {
    for a in &guard.clock_atoms {
        out.push(a.clock);
    }
    for a in &inv.atoms {
        out.push(a.clock);
    }
}

impl FastCache {
    /// Analyzes a network for fast-path eligibility and builds the
    /// per-location classification.
    #[must_use]
    pub fn new(network: &Network) -> Self {
        // Eligibility (a): receive-edge guards must be clock-free.
        let mut eligible = true;
        'outer: for a in network.automata() {
            for e in &a.edges {
                if matches!(e.sync, Sync::Recv(_)) && !e.guard.clock_atoms.is_empty() {
                    eligible = false;
                    break 'outer;
                }
            }
        }

        // Eligibility (b): no edge updates a clock referenced by another
        // automaton.
        if eligible {
            let mut clock_readers: Vec<Vec<AutomatonId>> = vec![Vec::new(); network.clocks().len()];
            for (ai, a) in network.automata().iter().enumerate() {
                let aid =
                    AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
                let mut refs = Vec::new();
                for l in &a.locations {
                    referenced_clocks_expr(&Guard::always(), &l.invariant, &mut refs);
                }
                for e in &a.edges {
                    referenced_clocks_expr(&e.guard, &Invariant::none(), &mut refs);
                }
                for c in refs {
                    if !clock_readers[c.index()].contains(&aid) {
                        clock_readers[c.index()].push(aid);
                    }
                }
            }
            'outer2: for (ai, a) in network.automata().iter().enumerate() {
                let aid =
                    AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
                for e in &a.edges {
                    let mut touched = Vec::new();
                    updated_clocks(&e.updates, &mut touched);
                    for c in touched {
                        if clock_readers[c.index()].iter().any(|r| *r != aid) {
                            eligible = false;
                            break 'outer2;
                        }
                    }
                }
            }
        }

        let mut info = Vec::with_capacity(network.automata().len());
        for (ai, a) in network.automata().iter().enumerate() {
            let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
            let mut per_loc = Vec::with_capacity(a.locations.len());
            for (li, l) in a.locations.iter().enumerate() {
                let lid = crate::ids::LocationId::from_raw(
                    u32::try_from(li).expect("location count fits u32"),
                );
                let mut initiators = Vec::new();
                let mut recv_edges = Vec::new();
                let mut guards_cacheable = true;
                for &eid in network.outgoing_edges(aid, lid) {
                    let e = a.edge(eid);
                    if let Sync::Recv(ch) = e.sync {
                        recv_edges.push((ch, eid));
                        continue;
                    }
                    if !guard_state_independent(&e.guard) {
                        guards_cacheable = false;
                    }
                    initiators.push(eid);
                }
                let internal_only = !l.committed
                    && initiators
                        .iter()
                        .all(|&eid| matches!(a.edge(eid).sync, Sync::Internal));
                let eq_index = if guards_cacheable {
                    None
                } else {
                    build_eq_index(a, &initiators)
                };
                per_loc.push(LocInfo {
                    initiators,
                    recv_edges,
                    guards_cacheable,
                    inv_cacheable: invariant_state_independent(&l.invariant),
                    committed: l.committed,
                    internal_only,
                    eq_index,
                });
            }
            info.push(per_loc);
        }

        Self { eligible, info }
    }

    /// Whether the fast path may be used for this network.
    #[must_use]
    pub fn eligible(&self) -> bool {
        self.eligible
    }
}

/// A running fast interpretation.
///
/// # Event-wheel invariants
///
/// * `ready`, `dynamic_set` and the wake heap partition the automata that
///   can ever initiate: a cacheable automaton with `wake[a] <= now` is in
///   `ready`; with `now < wake[a] < MAX` it has a live heap entry; with
///   `wake[a] == MAX` it is in neither. Dynamic automata are exactly the
///   members of `dynamic_set`.
/// * A wake-heap entry `(t, a)` is live iff `!dynamic[a] && wake[a] == t`;
///   an invariant-heap entry iff `!inv_dynamic[a] && inv_expiry[a] == t`.
///   Live wake entries always satisfy `t > now` (entries falling due are
///   drained into `ready` by [`FastRun::advance`]).
/// * `recv_ready[ch]` holds exactly the receiving edges on `ch` whose
///   source location is the owning automaton's current location, in
///   canonical `(automaton, edge)` order.
pub(crate) struct FastRun<'n> {
    network: &'n Network,
    compiled: Option<&'n crate::bytecode::CompiledNetwork>,
    cache: &'n FastCache,
    engine: EvalEngine,
    /// Absolute earliest time automaton `a` could initiate a transition
    /// (`i64::MAX` = never, as long as it does not move). For locations
    /// with non-cacheable guards this is kept at the refresh time
    /// (rescan every step).
    wake: Vec<i64>,
    /// `wake[a]` is a live lower bound only when the guards are cacheable;
    /// otherwise the automaton is rescanned and its delay windows are
    /// recomputed on demand.
    dynamic: Vec<bool>,
    /// Absolute invariant expiry per automaton (`i64::MAX` = unbounded).
    inv_expiry: Vec<i64>,
    /// Invariants needing recomputation at each delay decision.
    inv_dynamic: Vec<bool>,
    committed_count: usize,
    /// Cacheable automata whose wake time has arrived and whose location
    /// can initiate a sync (or is committed), ascending by id.
    ready_sync: BTreeSet<u32>,
    /// Cacheable automata whose wake time has arrived in an
    /// `internal_only` location — skipped while any committed location is
    /// active, ascending by id.
    ready_internal: BTreeSet<u32>,
    /// Automata rescanned every step, ascending by id.
    dynamic_set: BTreeSet<u32>,
    /// Automata whose invariants are recomputed at each delay decision.
    inv_dynamic_set: BTreeSet<u32>,
    /// Future wake times (lazy deletion, see the invariants above).
    wake_heap: BinaryHeap<Reverse<(i64, u32)>>,
    /// Bounded invariant expiries (lazy deletion).
    inv_heap: BinaryHeap<Reverse<(i64, u32)>>,
    /// Per channel: currently-ready receiving edges in canonical order.
    recv_ready: Vec<BTreeSet<(u32, u32)>>,
    /// Location whose receive edges each automaton has registered in
    /// `recv_ready` (`None` before the first refresh).
    registered: Vec<Option<LocationId>>,
    /// Due wake entries drained into `ready` so far (observability).
    wheel_wakeups: u64,
    /// Monotone counter identifying the current time instant; bumped on
    /// every [`FastRun::advance`]. Starts at 1 so a `memo_stamp` of 0 is
    /// always stale.
    instant: u64,
    /// Instant at which `memo_enabled[a]` was last computed (0 = never).
    /// Reset on [`FastRun::refresh`] so an automaton that moved is
    /// re-batched even within the same instant.
    memo_stamp: Vec<u64>,
    /// Initiator edges of automaton `a` whose guards held when last
    /// batch-evaluated, in canonical edge order (valid iff
    /// `memo_stamp[a] == instant`). Buffers are reused across instants.
    memo_enabled: Vec<Vec<EdgeId>>,
    /// Whether every edge in `memo_enabled[a]` is an internal (no-sync)
    /// edge — such an automaton cannot fire at all while some *other*
    /// automaton is committed, so the scan skips it outright.
    memo_all_internal: Vec<bool>,
    /// Reusable merge buffer for the per-call canonical scan order.
    scan_buf: Vec<u32>,
}

impl<'n> FastRun<'n> {
    pub(crate) fn new(
        network: &'n Network,
        cache: &'n FastCache,
        state: &State,
        engine: EvalEngine,
    ) -> Result<Self, SimError> {
        let n = network.automata().len();
        let mut run = Self {
            network,
            compiled: (engine == EvalEngine::Bytecode).then(|| network.compiled()),
            cache,
            engine,
            wake: vec![0; n],
            dynamic: vec![false; n],
            inv_expiry: vec![i64::MAX; n],
            inv_dynamic: vec![false; n],
            committed_count: 0,
            ready_sync: BTreeSet::new(),
            ready_internal: BTreeSet::new(),
            dynamic_set: BTreeSet::new(),
            inv_dynamic_set: BTreeSet::new(),
            wake_heap: BinaryHeap::new(),
            inv_heap: BinaryHeap::new(),
            recv_ready: vec![BTreeSet::new(); network.channels().len()],
            registered: vec![None; n],
            wheel_wakeups: 0,
            instant: 1,
            memo_stamp: vec![0; n],
            memo_enabled: vec![Vec::new(); n],
            memo_all_internal: vec![false; n],
            scan_buf: Vec::new(),
        };
        for ai in 0..n {
            let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
            run.refresh(aid, state)?;
            let info = run.loc_info(aid, state);
            if info.committed {
                run.committed_count += 1;
            }
        }
        Ok(run)
    }

    fn loc_info(&self, a: AutomatonId, state: &State) -> &'n LocInfo {
        &self.cache.info[a.index()][state.location_of(a).index()]
    }

    /// One guard evaluation through the hoisted compiled network (falling
    /// back to engine dispatch for the AST walker).
    fn guard_holds_at(
        &self,
        aid: AutomatonId,
        eid: EdgeId,
        state: &State,
    ) -> Result<bool, SimError> {
        match self.compiled {
            Some(c) => c.guard(aid, eid).holds(state),
            None => bytecode::guard_holds(self.network, self.engine, aid, eid, state),
        }
        .map_err(SimError::Eval)
    }

    /// Files a due automaton into the ready set matching its location
    /// class.
    fn make_ready(&mut self, raw: u32, state: &State) {
        let aid = AutomatonId::from_raw(raw);
        if self.loc_info(aid, state).internal_only {
            self.ready_internal.insert(raw);
        } else {
            self.ready_sync.insert(raw);
        }
    }

    /// Syncs `recv_ready` with the automaton's current location.
    fn register_receivers(&mut self, a: AutomatonId, loc: LocationId) {
        if self.registered[a.index()] == Some(loc) {
            return;
        }
        let cache = self.cache;
        if let Some(old) = self.registered[a.index()] {
            for &(ch, eid) in &cache.info[a.index()][old.index()].recv_edges {
                self.recv_ready[ch.index()].remove(&(a.raw(), eid.raw()));
            }
        }
        for &(ch, eid) in &cache.info[a.index()][loc.index()].recv_edges {
            self.recv_ready[ch.index()].insert((a.raw(), eid.raw()));
        }
        self.registered[a.index()] = Some(loc);
    }

    /// Drops stale heap entries once a heap outgrows a small multiple of
    /// the automaton count (keeps memory bounded over long runs).
    fn maybe_compact(&mut self) {
        let cap = 4 * self.wake.len() + 64;
        if self.wake_heap.len() > cap {
            let wake = &self.wake;
            let dynamic = &self.dynamic;
            let keep: Vec<_> = self
                .wake_heap
                .drain()
                .filter(|&Reverse((t, a))| !dynamic[a as usize] && wake[a as usize] == t)
                .collect();
            self.wake_heap = keep.into();
        }
        if self.inv_heap.len() > cap {
            let inv_expiry = &self.inv_expiry;
            let inv_dynamic = &self.inv_dynamic;
            let keep: Vec<_> = self
                .inv_heap
                .drain()
                .filter(|&Reverse((t, a))| !inv_dynamic[a as usize] && inv_expiry[a as usize] == t)
                .collect();
            self.inv_heap = keep.into();
        }
    }

    /// Recomputes the cached wake time and invariant expiry of `a` and
    /// re-indexes it in the event wheel.
    fn refresh(&mut self, a: AutomatonId, state: &State) -> Result<(), SimError> {
        let loc = state.location_of(a);
        self.register_receivers(a, loc);
        let info = &self.cache.info[a.index()][loc.index()];
        let initiators_empty = info.initiators.is_empty();
        let guards_cacheable = info.guards_cacheable;
        let inv_cacheable = info.inv_cacheable;
        let now = state.time;
        let ai = a.index();
        let raw = a.raw();

        self.memo_stamp[ai] = 0;
        self.dynamic[ai] = !guards_cacheable;
        self.ready_sync.remove(&raw);
        self.ready_internal.remove(&raw);
        if !guards_cacheable {
            self.dynamic_set.insert(raw);
            self.wake[ai] = now;
        } else {
            self.dynamic_set.remove(&raw);
            if initiators_empty {
                self.wake[ai] = i64::MAX;
            } else {
                let mut wake = i64::MAX;
                let info = &self.cache.info[ai][loc.index()];
                for &eid in &info.initiators {
                    if let Some(w) = bytecode::guard_window(self.network, self.engine, a, eid, state)
                        .map_err(SimError::Eval)?
                    {
                        wake = wake.min(abs_time(now, w.lo)?);
                    }
                }
                self.wake[ai] = wake;
                if wake <= now {
                    self.make_ready(raw, state);
                } else if wake < i64::MAX {
                    self.wake_heap.push(Reverse((wake, raw)));
                }
            }
        }

        self.inv_dynamic[ai] = !inv_cacheable;
        let expiry =
            match bytecode::invariant_max_delay(self.network, self.engine, a, loc, state)
                .map_err(SimError::Eval)?
            {
                None => i64::MAX,
                Some(d) => abs_time(now, d.max(0))?,
            };
        self.inv_expiry[ai] = expiry;
        if !inv_cacheable {
            self.inv_dynamic_set.insert(raw);
        } else {
            self.inv_dynamic_set.remove(&raw);
            if expiry < i64::MAX {
                self.inv_heap.push(Reverse((expiry, raw)));
            }
        }
        self.maybe_compact();
        Ok(())
    }

    /// Advances time and drains newly-due wake entries into the ready set.
    pub(crate) fn advance(&mut self, state: &mut State, delay: i64) {
        state.advance(delay);
        self.instant += 1;
        let now = state.time;
        while let Some(&Reverse((t, a))) = self.wake_heap.peek() {
            if t > now {
                break;
            }
            self.wake_heap.pop();
            if !self.dynamic[a as usize] && self.wake[a as usize] == t {
                self.make_ready(a, state);
                self.wheel_wakeups += 1;
            }
        }
    }

    /// Interpreter counters accumulated so far.
    pub(crate) fn stats(&self) -> SimStats {
        SimStats {
            wheel_wakeups: self.wheel_wakeups,
        }
    }

    /// Finds the first enabled transition in canonical order.
    ///
    /// Only automata in the ready or dynamic sets are scanned; merging the
    /// two ordered sets preserves the canonical ascending-id order the
    /// generic interpreter uses.
    pub(crate) fn first_enabled(&mut self, state: &State) -> Result<Option<Transition>, SimError> {
        // Snapshot the merged scan order into a flat buffer: neither set
        // changes during the call (only `apply` mutates them), and a
        // linear walk beats a tree descent per candidate. The buffer is
        // taken out of `self` so `scan_automaton` can mutate the memos.
        // While a committed location is active, `internal_only` locations
        // cannot fire (the filter would reject their only transitions),
        // so their whole ready set is skipped without visiting a member.
        let skip_internal = self.committed_count > 0;
        const CHUNK: usize = 8;
        let mut buf = std::mem::take(&mut self.scan_buf);
        let mut cur: u32 = 0;
        let mut result = Ok(None);
        'outer: loop {
            buf.clear();
            {
                let mut sync = self.ready_sync.range(cur..).copied();
                let mut internal = self.ready_internal.range(cur..).copied();
                let mut dynamic = self.dynamic_set.range(cur..).copied();
                let mut ns = sync.next();
                let mut ni = if skip_internal { None } else { internal.next() };
                let mut nd = dynamic.next();
                while buf.len() < CHUNK {
                    let min = match (ns, ni, nd) {
                        (None, None, None) => break,
                        _ => [ns, ni, nd].into_iter().flatten().min().expect("nonempty"),
                    };
                    buf.push(min);
                    if ns == Some(min) {
                        ns = sync.next();
                    }
                    if ni == Some(min) {
                        ni = internal.next();
                    }
                    if nd == Some(min) {
                        nd = dynamic.next();
                    }
                }
            }
            let Some(&last) = buf.last() else { break };
            for &raw in &buf {
                match self.scan_automaton(AutomatonId::from_raw(raw), state) {
                    Ok(None) => {}
                    other => {
                        result = other;
                        break 'outer;
                    }
                }
            }
            let Some(next) = last.checked_add(1) else {
                break;
            };
            cur = next;
        }
        self.scan_buf = buf;
        result
    }

    /// Scans one automaton's initiator edges for an enabled transition.
    ///
    /// For cacheable locations the initiator guards are batch-evaluated
    /// once per time instant, in one pass over the hoisted SoA slices,
    /// and the holding set is memoized: an instant spans several
    /// transitions (the ready set is rescanned from the start after each
    /// one), and eligibility guarantees a cacheable guard's truth cannot
    /// change within the instant unless this automaton itself moves —
    /// no foreign clock updates, no variable reads. Evaluating the whole
    /// batch is error-order safe because `refresh` already evaluated
    /// every initiator's window with the same term order on location
    /// entry, and cacheable guards are state-independent.
    fn scan_automaton(
        &mut self,
        aid: AutomatonId,
        state: &State,
    ) -> Result<Option<Transition>, SimError> {
        let info = self.loc_info(aid, state);
        let automaton = self.network.automaton(aid);
        let ai = aid.index();
        let batched = info.guards_cacheable;
        if batched && self.memo_stamp[ai] != self.instant {
            let mut enabled = std::mem::take(&mut self.memo_enabled[ai]);
            enabled.clear();
            match self.compiled {
                Some(c) => {
                    let clock_values = state.clock_values();
                    let vars = &state.vars;
                    for &eid in &info.initiators {
                        if c.guard(aid, eid)
                            .holds_flat(clock_values, vars)
                            .map_err(SimError::Eval)?
                        {
                            enabled.push(eid);
                        }
                    }
                }
                None => {
                    for &eid in &info.initiators {
                        if bytecode::guard_holds(self.network, self.engine, aid, eid, state)
                            .map_err(SimError::Eval)?
                        {
                            enabled.push(eid);
                        }
                    }
                }
            }
            self.memo_all_internal[ai] = enabled
                .iter()
                .all(|&eid| matches!(automaton.edge(eid).sync, Sync::Internal));
            self.memo_enabled[ai] = enabled;
            self.memo_stamp[ai] = self.instant;
        }
        if batched
            && self.committed_count > 0
            && !info.committed
            && self.memo_all_internal[ai]
        {
            // Internal transitions of a non-committed automaton cannot
            // fire while a committed location is active elsewhere.
            return Ok(None);
        }
        let edges = if batched {
            MergeEdges::new(&self.memo_enabled[ai], &[])
        } else if let Some(ix) = &info.eq_index {
            let bucket = ix
                .buckets
                .get(&state.vars[ix.slot.index()])
                .map_or(&[][..], Vec::as_slice);
            MergeEdges::new(bucket, &ix.rest)
        } else {
            MergeEdges::new(&info.initiators, &[])
        };
        for eid in edges {
            if !batched && !self.guard_holds_at(aid, eid, state)? {
                continue;
            }
            let transition = match automaton.edge(eid).sync {
                Sync::Internal => Some(Transition::Internal {
                    participant: (aid, eid),
                }),
                Sync::Send(ch) => match self.network.channels()[ch.index()].kind {
                    ChannelKind::Binary => {
                        let mut found = None;
                        for &(braw, beraw) in &self.recv_ready[ch.index()] {
                            let bid = AutomatonId::from_raw(braw);
                            if bid == aid {
                                continue;
                            }
                            let beid = EdgeId::from_raw(beraw);
                            if self.guard_holds_at(bid, beid, state)? {
                                found = Some(Transition::Binary {
                                    channel: ch,
                                    sender: (aid, eid),
                                    receiver: (bid, beid),
                                });
                                break;
                            }
                        }
                        found
                    }
                    ChannelKind::Broadcast => {
                        let mut receivers = Vec::new();
                        let mut last: Option<AutomatonId> = None;
                        for &(braw, beraw) in &self.recv_ready[ch.index()] {
                            let bid = AutomatonId::from_raw(braw);
                            if bid == aid || last == Some(bid) {
                                continue;
                            }
                            let beid = EdgeId::from_raw(beraw);
                            if self.guard_holds_at(bid, beid, state)? {
                                receivers.push((bid, beid));
                                last = Some(bid);
                            }
                        }
                        Some(Transition::Broadcast {
                            channel: ch,
                            sender: (aid, eid),
                            receivers,
                        })
                    }
                },
                Sync::Recv(_) => None,
            };
            let Some(t) = transition else { continue };
            if self.committed_count > 0 && !info.committed {
                // Allocation-free committed filter: the sender is not
                // committed, so some receiver must be.
                let passes = match &t {
                    Transition::Internal { .. } => false,
                    Transition::Binary { receiver, .. } => {
                        self.loc_info(receiver.0, state).committed
                    }
                    Transition::Broadcast { receivers, .. } => receivers
                        .iter()
                        .any(|&(b, _)| self.loc_info(b, state).committed),
                };
                if !passes {
                    continue;
                }
            }
            return Ok(Some(t));
        }
        Ok(None)
    }

    /// Applies a transition, refreshing the caches of every participant.
    pub(crate) fn apply(
        &mut self,
        state: &mut State,
        transition: &Transition,
    ) -> Result<(), SimError> {
        let participants = transition.participants();
        for &(p, _) in &participants {
            if self.loc_info(p, state).committed {
                self.committed_count -= 1;
            }
        }
        apply_with(self.network, state, transition, self.engine)?;
        for &(p, _) in &participants {
            if self.loc_info(p, state).committed {
                self.committed_count += 1;
            }
            self.refresh(p, state)?;
        }
        Ok(())
    }

    /// Whether any automaton currently sits in a committed location.
    pub(crate) fn any_committed(&self) -> bool {
        self.committed_count > 0
    }

    /// The delay decision: `(next_enabling_abs, invariant_expiry_abs,
    /// bounding_automaton)`. The first two may be `i64::MAX` for
    /// "never"/"unbounded"; the third names an automaton whose invariant
    /// produces the expiry (`None` iff the expiry is unbounded).
    ///
    /// Dynamic automata are recomputed against the current variables
    /// (constant during the delay, so this is exact); cacheable automata
    /// are answered by the heaps in `O(log automata)` amortized.
    pub(crate) fn delay_targets(
        &mut self,
        state: &State,
    ) -> Result<(i64, i64, Option<AutomatonId>), SimError> {
        let now = state.time;
        let mut next = i64::MAX;
        let mut expiry = i64::MAX;
        let mut bounder = None;

        for &raw in &self.dynamic_set {
            let aid = AutomatonId::from_raw(raw);
            let info = self.loc_info(aid, state);
            for &eid in &info.initiators {
                if let Some(w) = bytecode::guard_window(self.network, self.engine, aid, eid, state)
                    .map_err(SimError::Eval)?
                {
                    let lo = w.lo.max(1);
                    if w.contains(lo) {
                        next = next.min(abs_time(now, lo)?);
                    }
                }
            }
        }
        while let Some(&Reverse((t, a))) = self.wake_heap.peek() {
            if !self.dynamic[a as usize] && self.wake[a as usize] == t {
                debug_assert!(t > now, "due wake entries are drained on advance");
                next = next.min(t);
                break;
            }
            self.wake_heap.pop();
        }

        for &raw in &self.inv_dynamic_set {
            let aid = AutomatonId::from_raw(raw);
            if let Some(d) =
                bytecode::invariant_max_delay(self.network, self.engine, aid, state.location_of(aid), state)
                    .map_err(SimError::Eval)?
            {
                let e = abs_time(now, d.max(0))?;
                if e < expiry {
                    expiry = e;
                    bounder = Some(aid);
                }
            }
        }
        while let Some(&Reverse((t, a))) = self.inv_heap.peek() {
            if !self.inv_dynamic[a as usize] && self.inv_expiry[a as usize] == t {
                if t < expiry {
                    expiry = t;
                    bounder = Some(AutomatonId::from_raw(a));
                }
                break;
            }
            self.inv_heap.pop();
        }
        Ok((next, expiry, bounder))
    }

    /// The id of the automaton whose cached invariant expiry is earliest,
    /// or `None` if no invariant currently bounds time (diagnostics).
    pub(crate) fn earliest_bounded_automaton(&self) -> Option<AutomatonId> {
        let mut best: Option<(i64, usize)> = None;
        for (ai, &e) in self.inv_expiry.iter().enumerate() {
            if e < i64::MAX && best.is_none_or(|(b, _)| e < b) {
                best = Some((e, ai));
            }
        }
        best.map(|(_, ai)| {
            AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"))
        })
    }

    /// The id of some committed automaton (diagnostics).
    pub(crate) fn committed_automaton(&self, state: &State) -> AutomatonId {
        for ai in 0..self.network.automata().len() {
            let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
            if self.loc_info(aid, state).committed {
                return aid;
            }
        }
        AutomatonId::from_raw(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::expr::{CmpOp, IntExpr};
    use crate::guard::{ClockAtom, Guard, Invariant};
    use crate::network::NetworkBuilder;
    use crate::sim::{Simulator, TieBreak};
    use crate::update::Update;

    /// A periodic ticker (state-independent guards — fully cacheable).
    fn ticker_network(period: i64) -> Network {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("t");
        let l0 = a.location_with_invariant("wait", Invariant::upper_bound(c, period));
        a.edge(
            Edge::new(l0, l0)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, period)))
                .with_update(Update::ResetClock(c)),
        );
        nb.automaton(a.finish(l0));
        nb.build().unwrap()
    }

    #[test]
    fn cacheable_network_is_eligible() {
        let n = ticker_network(5);
        assert!(FastCache::new(&n).eligible());
    }

    #[test]
    fn clock_guarded_receive_disables_fast_path() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let ch = nb.binary_channel("go");
        let mut a = AutomatonBuilder::new("s");
        let l0 = a.location("l0");
        a.edge(Edge::new(l0, l0).with_sync(crate::automaton::Sync::Send(ch)));
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("r");
        let l0 = b.location("l0");
        b.edge(
            Edge::new(l0, l0)
                .with_sync(crate::automaton::Sync::Recv(ch))
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 3))),
        );
        nb.automaton(b.finish(l0));
        let n = nb.build().unwrap();
        assert!(!FastCache::new(&n).eligible());
    }

    #[test]
    fn foreign_clock_update_disables_fast_path() {
        // Automaton "meddler" resets a clock that "watcher" guards on.
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("watcher");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                5,
            ))),
        );
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("meddler");
        let m0 = b.location("m0");
        b.edge(Edge::new(m0, m0).with_update(Update::ResetClock(c)));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        assert!(!FastCache::new(&n).eligible());
    }

    #[test]
    fn own_clock_updates_stay_eligible() {
        // The ticker resets its own guarded clock: fine.
        let n = ticker_network(3);
        assert!(FastCache::new(&n).eligible());
    }

    #[test]
    fn var_dependent_guards_stay_eligible_but_dynamic() {
        // A guard reading a variable doesn't disable the fast path; the
        // location is just rescanned (the equality test below proves the
        // semantics are preserved).
        let mut nb = NetworkBuilder::new();
        let v = nb.var("x", 0, 0, 5);
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("setter");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 2));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 2)))
                .with_update(Update::set(v, 1)),
        );
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("follower");
        let m0 = b.location("m0");
        let m1 = b.location("m1");
        b.edge(Edge::new(m0, m1).with_guard(Guard::when(IntExpr::var(v).eq(1))));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        assert!(FastCache::new(&n).eligible());

        let fast = Simulator::new(&n).horizon(10).run().unwrap();
        let identity = TieBreak::Permuted(vec![0, 1]);
        let generic = Simulator::new(&n)
            .horizon(10)
            .tie_break(identity)
            .run()
            .unwrap();
        assert_eq!(fast.trace, generic.trace);
        let times: Vec<i64> = fast.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2, 2]);
    }

    #[test]
    fn fast_and_generic_agree_on_mixed_networks() {
        // Binary syncs + invariants + stopped clocks.
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let stop = nb.stopped_clock("s");
        let ch = nb.binary_channel("go");
        let mut a = AutomatonBuilder::new("sender");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 4));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 4)))
                .with_sync(crate::automaton::Sync::Send(ch))
                .with_update(Update::StartClock(stop)),
        );
        let l2 = a.location("l2");
        a.edge(
            Edge::new(l1, l2).with_guard(Guard::always().and_clock(ClockAtom::new(
                stop,
                CmpOp::Ge,
                3,
            ))),
        );
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("receiver");
        let m0 = b.location("m0");
        b.edge(Edge::new(m0, m0).with_sync(crate::automaton::Sync::Recv(ch)));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        assert!(FastCache::new(&n).eligible());

        let fast = Simulator::new(&n).horizon(20).run().unwrap();
        let generic = Simulator::new(&n)
            .horizon(20)
            .tie_break(TieBreak::Permuted(vec![0, 1]))
            .run()
            .unwrap();
        assert_eq!(fast.trace, generic.trace);
        let times: Vec<i64> = fast.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![4, 7]);
    }

    #[test]
    fn fast_path_detects_time_lock_like_generic() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("stuck");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                10,
            ))),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        assert!(FastCache::new(&n).eligible());
        let err = Simulator::new(&n).horizon(100).run().unwrap_err();
        assert!(matches!(err, SimError::TimeLock { .. }));
    }

    #[test]
    fn wake_time_overflow_is_detected() {
        // At t=5 the clock is reset and the automaton enters a location
        // whose guard bound sits near i64::MAX: the absolute wake time
        // 5 + (i64::MAX - 2) leaves i64. The wheel used to saturate and
        // silently park the automaton forever; now it reports overflow.
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("far");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        let l2 = a.location("l2");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 5)))
                .with_update(Update::ResetClock(c)),
        );
        a.edge(
            Edge::new(l1, l2).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                i64::MAX - 2,
            ))),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        assert!(FastCache::new(&n).eligible());
        let err = Simulator::new(&n).horizon(100).run().unwrap_err();
        assert_eq!(err, SimError::Overflow { time: 5 });
    }

    #[test]
    fn near_max_bound_without_overflow_still_runs() {
        // Same shape, but the clock is not reset: the residual delay
        // (i64::MAX - 2) - 5 stays representable, so the run just reaches
        // its horizon.
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("far");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        let l2 = a.location("l2");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 5))),
        );
        a.edge(
            Edge::new(l1, l2).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                i64::MAX - 2,
            ))),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let out = Simulator::new(&n).horizon(100).run().unwrap();
        assert_eq!(out.final_state.time, 100);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn wheel_wakeups_are_counted() {
        let n = ticker_network(5);
        let out = Simulator::new(&n).horizon(26).run().unwrap();
        // Five ticks, each parked on the wheel and woken when due.
        assert_eq!(out.steps, 5);
        assert_eq!(out.stats.wheel_wakeups, 5);
    }

    #[test]
    fn earliest_bounded_automaton_is_none_without_invariants() {
        // No invariant anywhere: nothing ever bounds time, so the
        // diagnostic must not fabricate automaton 0.
        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("free");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.edge(Edge::new(l0, l1).with_guard(Guard::when(crate::expr::Pred::ff())));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let cache = FastCache::new(&n);
        let state = State::initial(&n);
        let run = FastRun::new(&n, &cache, &state, EvalEngine::default()).unwrap();
        assert_eq!(run.earliest_bounded_automaton(), None);
    }

    #[test]
    fn earliest_bounded_automaton_picks_tightest_invariant() {
        let mut nb = NetworkBuilder::new();
        let c1 = nb.clock("c1");
        let c2 = nb.clock("c2");
        let mut a = AutomatonBuilder::new("loose");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c1, 9));
        nb.automaton(a.finish(l0));
        let mut b = AutomatonBuilder::new("tight");
        let m0 = b.location_with_invariant("m0", Invariant::upper_bound(c2, 3));
        nb.automaton(b.finish(m0));
        let n = nb.build().unwrap();
        let cache = FastCache::new(&n);
        let state = State::initial(&n);
        let run = FastRun::new(&n, &cache, &state, EvalEngine::default()).unwrap();
        assert_eq!(run.earliest_bounded_automaton(), Some(AutomatonId::from_raw(1)));
    }
}
