//! Guards and invariants in the restricted normal form that keeps the
//! simulator's next-event computation exact.
//!
//! A [`Guard`] is a conjunction of
//!
//! * clock-free predicates over variables ([`crate::expr::Pred`]), and
//! * clock atoms `clock ⋈ rhs` where `rhs` is a clock-free integer
//!   expression ([`ClockAtom`]).
//!
//! An [`Invariant`] is a conjunction of upper bounds `clock ≤ rhs`.
//!
//! Because a delay transition changes only clock values, the predicate part
//! of a guard is constant under delay, and each clock atom is monotone in
//! the delay; the set of delays enabling an edge is therefore a single
//! interval that [`Guard::enabling_window`] computes exactly.

use std::fmt;

use crate::error::EvalError;
use crate::expr::{CmpOp, IntExpr, Pred, VarEnv};
use crate::ids::ClockId;

/// Read-only view of clock valuations.
pub trait ClockEnv {
    /// Current value of a clock.
    fn clock(&self, clock: ClockId) -> i64;
    /// Whether the clock is currently running (advances under delay).
    fn is_running(&self, clock: ClockId) -> bool;
}

/// A single comparison between a clock and a clock-free expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClockAtom {
    /// The constrained clock.
    pub clock: ClockId,
    /// Comparison operator (`clock op rhs`).
    pub op: CmpOp,
    /// Clock-free right-hand side.
    pub rhs: IntExpr,
}

impl ClockAtom {
    /// Creates a clock atom `clock op rhs`.
    #[must_use]
    pub fn new(clock: ClockId, op: CmpOp, rhs: impl Into<IntExpr>) -> Self {
        Self {
            clock,
            op,
            rhs: rhs.into(),
        }
    }

    /// Evaluates the atom at the current instant.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the right-hand side.
    pub fn holds(&self, clocks: &dyn ClockEnv, vars: &dyn VarEnv) -> Result<bool, EvalError> {
        let rhs = self.rhs.eval(vars)?;
        Ok(self.op.apply(clocks.clock(self.clock), rhs))
    }

    /// Returns the set of delays `d ≥ 0` after which the atom holds, as a
    /// closed interval `[lo, hi]` (`hi = None` means unbounded). Returns
    /// `None` for the empty set.
    ///
    /// Only meaningful when variables are unchanged during the delay, which
    /// is exactly the delay-transition semantics.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the right-hand side.
    pub fn delay_window(
        &self,
        clocks: &dyn ClockEnv,
        vars: &dyn VarEnv,
    ) -> Result<Option<DelayWindow>, EvalError> {
        let rhs = self.rhs.eval(vars)?;
        Ok(atom_delay_window(
            self.op,
            clocks.clock(self.clock),
            clocks.is_running(self.clock),
            rhs,
        ))
    }
}

/// The delay-window arithmetic of [`ClockAtom::delay_window`], on already
/// evaluated operands. Shared with the bytecode engine so both compute the
/// same windows by construction.
pub(crate) fn atom_delay_window(
    op: CmpOp,
    val: i64,
    running: bool,
    rhs: i64,
) -> Option<DelayWindow> {
    if !running {
        // A stopped clock is constant under delay: the atom either holds
        // for every delay or for none.
        return if op.apply(val, rhs) {
            Some(DelayWindow::unbounded(0))
        } else {
            None
        };
    }
    // Running clock: value after delay d is val + d.
    let w = match op {
        CmpOp::Ge => DelayWindow::unbounded((rhs - val).max(0)),
        CmpOp::Gt => DelayWindow::unbounded((rhs - val + 1).max(0)),
        CmpOp::Le => {
            if rhs - val < 0 {
                return None;
            }
            DelayWindow::bounded(0, rhs - val)
        }
        CmpOp::Lt => {
            if rhs - val - 1 < 0 {
                return None;
            }
            DelayWindow::bounded(0, rhs - val - 1)
        }
        CmpOp::Eq => {
            if rhs - val < 0 {
                return None;
            }
            DelayWindow::bounded(rhs - val, rhs - val)
        }
        CmpOp::Ne => {
            // Holds everywhere except at d = rhs - val. The enabling set
            // is not an interval; we approximate by the interval starting
            // after the excluded point if the excluded point is 0,
            // otherwise [0, excluded). This conservative choice keeps the
            // window representation simple; `Ne` atoms are not used by
            // the IMA models.
            let excl = rhs - val;
            if excl < 0 {
                DelayWindow::unbounded(0)
            } else if excl == 0 {
                DelayWindow::unbounded(1)
            } else {
                DelayWindow::bounded(0, excl - 1)
            }
        }
    };
    Some(w)
}

impl fmt::Display for ClockAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.clock, self.op, self.rhs)
    }
}

/// A closed interval of admissible delays `[lo, hi]`; `hi = None` means
/// unbounded above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelayWindow {
    /// Smallest admissible delay.
    pub lo: i64,
    /// Largest admissible delay (inclusive), or `None` for unbounded.
    pub hi: Option<i64>,
}

impl DelayWindow {
    /// The window `[lo, ∞)`.
    #[must_use]
    pub fn unbounded(lo: i64) -> Self {
        Self { lo, hi: None }
    }

    /// The window `[lo, hi]`.
    #[must_use]
    pub fn bounded(lo: i64, hi: i64) -> Self {
        Self { lo, hi: Some(hi) }
    }

    /// The full window `[0, ∞)`.
    #[must_use]
    pub fn full() -> Self {
        Self::unbounded(0)
    }

    /// Intersects two windows; `None` if the intersection is empty.
    #[must_use]
    pub fn intersect(self, other: Self) -> Option<Self> {
        let lo = self.lo.max(other.lo);
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        match hi {
            Some(h) if h < lo => None,
            _ => Some(Self { lo, hi }),
        }
    }

    /// Whether the window contains the given delay.
    #[must_use]
    pub fn contains(self, d: i64) -> bool {
        d >= self.lo && self.hi.is_none_or(|h| d <= h)
    }
}

impl fmt::Display for DelayWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.hi {
            Some(h) => write!(f, "[{}, {}]", self.lo, h),
            None => write!(f, "[{}, inf)", self.lo),
        }
    }
}

/// Guard of an edge: conjunction of a clock-free predicate and clock atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Guard {
    /// Clock-free part (conjunction; empty means `true`).
    pub preds: Vec<Pred>,
    /// Clock atoms (conjunction; empty means `true`).
    pub clock_atoms: Vec<ClockAtom>,
}

impl Guard {
    /// The trivially true guard.
    #[must_use]
    pub fn always() -> Self {
        Self::default()
    }

    /// Guard with a single clock-free predicate.
    #[must_use]
    pub fn when(pred: Pred) -> Self {
        Self {
            preds: vec![pred],
            clock_atoms: Vec::new(),
        }
    }

    /// Adds a clock-free predicate (builder style).
    #[must_use]
    pub fn and_pred(mut self, pred: Pred) -> Self {
        self.preds.push(pred);
        self
    }

    /// Adds a clock atom (builder style).
    #[must_use]
    pub fn and_clock(mut self, atom: ClockAtom) -> Self {
        self.clock_atoms.push(atom);
        self
    }

    /// Whether the guard holds right now.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn holds(&self, clocks: &dyn ClockEnv, vars: &dyn VarEnv) -> Result<bool, EvalError> {
        for p in &self.preds {
            if !p.eval(vars)? {
                return Ok(false);
            }
        }
        for a in &self.clock_atoms {
            if !a.holds(clocks, vars)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Computes the interval of delays after which the guard holds, assuming
    /// variables do not change during the delay. Returns `None` if no delay
    /// can enable the guard (including when the predicate part is false).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn enabling_window(
        &self,
        clocks: &dyn ClockEnv,
        vars: &dyn VarEnv,
    ) -> Result<Option<DelayWindow>, EvalError> {
        for p in &self.preds {
            if !p.eval(vars)? {
                return Ok(None);
            }
        }
        let mut window = DelayWindow::full();
        for a in &self.clock_atoms {
            match a.delay_window(clocks, vars)? {
                None => return Ok(None),
                Some(w) => match window.intersect(w) {
                    None => return Ok(None),
                    Some(i) => window = i,
                },
            }
        }
        Ok(Some(window))
    }

    /// Substitutes template parameters in every component.
    #[must_use]
    pub fn bind_params(&self, params: &[i64]) -> Self {
        Self {
            preds: self.preds.iter().map(|p| p.bind_params(params)).collect(),
            clock_atoms: self
                .clock_atoms
                .iter()
                .map(|a| ClockAtom {
                    clock: a.clock,
                    op: a.op,
                    rhs: a.rhs.bind_params(params),
                })
                .collect(),
        }
    }

    /// Largest parameter index used anywhere in the guard.
    #[must_use]
    pub fn max_param(&self) -> Option<u32> {
        let p = self.preds.iter().filter_map(Pred::max_param).max();
        let c = self
            .clock_atoms
            .iter()
            .filter_map(|a| a.rhs.max_param())
            .max();
        match (p, c) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (x, None) => x,
            (None, y) => y,
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.preds.is_empty() && self.clock_atoms.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for p in &self.preds {
            if !first {
                write!(f, " && ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        for a in &self.clock_atoms {
            if !first {
                write!(f, " && ")?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

/// A single invariant conjunct `clock ≤ rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InvariantAtom {
    /// The bounded clock.
    pub clock: ClockId,
    /// Clock-free upper bound.
    pub rhs: IntExpr,
}

impl fmt::Display for InvariantAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= {}", self.clock, self.rhs)
    }
}

/// Invariant of a location: conjunction of clock upper bounds.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Invariant {
    /// The conjuncts (empty means `true`).
    pub atoms: Vec<InvariantAtom>,
}

impl Invariant {
    /// The trivially true invariant.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Invariant with a single bound `clock ≤ rhs`.
    #[must_use]
    pub fn upper_bound(clock: ClockId, rhs: impl Into<IntExpr>) -> Self {
        Self {
            atoms: vec![InvariantAtom {
                clock,
                rhs: rhs.into(),
            }],
        }
    }

    /// Adds a bound (builder style).
    #[must_use]
    pub fn and_upper_bound(mut self, clock: ClockId, rhs: impl Into<IntExpr>) -> Self {
        self.atoms.push(InvariantAtom {
            clock,
            rhs: rhs.into(),
        });
        self
    }

    /// Whether the invariant holds right now.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn holds(&self, clocks: &dyn ClockEnv, vars: &dyn VarEnv) -> Result<bool, EvalError> {
        for a in &self.atoms {
            let rhs = a.rhs.eval(vars)?;
            if clocks.clock(a.clock) > rhs {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Maximum delay `d` such that the invariant still holds after `d`
    /// (assuming variables unchanged). `None` means unbounded. A negative
    /// result means the invariant is already violated.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn max_delay(
        &self,
        clocks: &dyn ClockEnv,
        vars: &dyn VarEnv,
    ) -> Result<Option<i64>, EvalError> {
        let mut bound: Option<i64> = None;
        for a in &self.atoms {
            let rhs = a.rhs.eval(vars)?;
            let val = clocks.clock(a.clock);
            if clocks.is_running(a.clock) {
                let d = rhs - val;
                bound = Some(bound.map_or(d, |b| b.min(d)));
            } else if val > rhs {
                // Stopped clock violating its bound: no delay (nor zero
                // delay) is admissible.
                return Ok(Some(-1));
            }
        }
        Ok(bound)
    }

    /// Substitutes template parameters.
    #[must_use]
    pub fn bind_params(&self, params: &[i64]) -> Self {
        Self {
            atoms: self
                .atoms
                .iter()
                .map(|a| InvariantAtom {
                    clock: a.clock,
                    rhs: a.rhs.bind_params(params),
                })
                .collect(),
        }
    }

    /// Largest parameter index used by the invariant.
    #[must_use]
    pub fn max_param(&self) -> Option<u32> {
        self.atoms.iter().filter_map(|a| a.rhs.max_param()).max()
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;

    struct Env {
        clocks: Vec<(i64, bool)>,
        vars: Vec<i64>,
    }

    impl ClockEnv for Env {
        fn clock(&self, c: ClockId) -> i64 {
            self.clocks[c.index()].0
        }
        fn is_running(&self, c: ClockId) -> bool {
            self.clocks[c.index()].1
        }
    }

    impl VarEnv for Env {
        fn var(&self, v: VarId) -> i64 {
            self.vars[v.index()]
        }
        fn array_len(&self, _a: crate::ids::ArrayId) -> usize {
            0
        }
        fn elem(&self, a: crate::ids::ArrayId, index: i64) -> Result<i64, EvalError> {
            Err(EvalError::IndexOutOfBounds {
                array: a.raw(),
                index,
                len: 0,
            })
        }
    }

    fn env() -> Env {
        Env {
            clocks: vec![(3, true), (5, false)],
            vars: vec![10],
        }
    }

    const C0: ClockId = ClockId::from_raw(0);
    const C1: ClockId = ClockId::from_raw(1);

    #[test]
    fn window_intersection() {
        let a = DelayWindow::bounded(1, 5);
        let b = DelayWindow::bounded(3, 9);
        assert_eq!(a.intersect(b), Some(DelayWindow::bounded(3, 5)));
        let c = DelayWindow::unbounded(4);
        assert_eq!(a.intersect(c), Some(DelayWindow::bounded(4, 5)));
        let d = DelayWindow::bounded(6, 7);
        assert_eq!(a.intersect(d), None);
        assert_eq!(
            DelayWindow::full().intersect(DelayWindow::full()),
            Some(DelayWindow::full())
        );
    }

    #[test]
    fn window_contains() {
        let w = DelayWindow::bounded(2, 4);
        assert!(!w.contains(1));
        assert!(w.contains(2));
        assert!(w.contains(4));
        assert!(!w.contains(5));
        assert!(DelayWindow::unbounded(0).contains(1_000_000));
    }

    #[test]
    fn running_clock_ge_atom_window() {
        let e = env();
        // c0 = 3 running; c0 >= 10 becomes true after 7.
        let a = ClockAtom::new(C0, CmpOp::Ge, 10);
        assert_eq!(
            a.delay_window(&e, &e).unwrap(),
            Some(DelayWindow::unbounded(7))
        );
        assert!(!a.holds(&e, &e).unwrap());
    }

    #[test]
    fn running_clock_le_atom_window() {
        let e = env();
        // c0 = 3 running; c0 <= 5 holds for d in [0, 2].
        let a = ClockAtom::new(C0, CmpOp::Le, 5);
        assert_eq!(
            a.delay_window(&e, &e).unwrap(),
            Some(DelayWindow::bounded(0, 2))
        );
        // c0 <= 2 can never hold again.
        let a = ClockAtom::new(C0, CmpOp::Le, 2);
        assert_eq!(a.delay_window(&e, &e).unwrap(), None);
    }

    #[test]
    fn running_clock_eq_atom_window() {
        let e = env();
        let a = ClockAtom::new(C0, CmpOp::Eq, 10);
        assert_eq!(
            a.delay_window(&e, &e).unwrap(),
            Some(DelayWindow::bounded(7, 7))
        );
    }

    #[test]
    fn strict_comparisons() {
        let e = env();
        let a = ClockAtom::new(C0, CmpOp::Gt, 3);
        assert_eq!(
            a.delay_window(&e, &e).unwrap(),
            Some(DelayWindow::unbounded(1))
        );
        let a = ClockAtom::new(C0, CmpOp::Lt, 4);
        assert_eq!(
            a.delay_window(&e, &e).unwrap(),
            Some(DelayWindow::bounded(0, 0))
        );
    }

    #[test]
    fn stopped_clock_window_is_constant() {
        let e = env();
        // c1 = 5 stopped; c1 >= 5 holds for all delays.
        let a = ClockAtom::new(C1, CmpOp::Ge, 5);
        assert_eq!(
            a.delay_window(&e, &e).unwrap(),
            Some(DelayWindow::unbounded(0))
        );
        // c1 >= 6 never holds.
        let a = ClockAtom::new(C1, CmpOp::Ge, 6);
        assert_eq!(a.delay_window(&e, &e).unwrap(), None);
    }

    #[test]
    fn guard_enabling_window_combines_atoms() {
        let e = env();
        // c0 in [3, inf), need c0 >= 5 and c0 <= 8: window [2, 5].
        let g = Guard::always()
            .and_clock(ClockAtom::new(C0, CmpOp::Ge, 5))
            .and_clock(ClockAtom::new(C0, CmpOp::Le, 8));
        assert_eq!(
            g.enabling_window(&e, &e).unwrap(),
            Some(DelayWindow::bounded(2, 5))
        );
    }

    #[test]
    fn guard_false_pred_blocks_window() {
        let e = env();
        let g = Guard::when(IntExpr::var(VarId::from_raw(0)).gt(100));
        assert_eq!(g.enabling_window(&e, &e).unwrap(), None);
        assert!(!g.holds(&e, &e).unwrap());
    }

    #[test]
    fn guard_rhs_reads_variables() {
        let e = env();
        // c0 >= v0 (=10): enabled after 7.
        let g = Guard::always().and_clock(ClockAtom::new(
            C0,
            CmpOp::Ge,
            IntExpr::var(VarId::from_raw(0)),
        ));
        assert_eq!(
            g.enabling_window(&e, &e).unwrap(),
            Some(DelayWindow::unbounded(7))
        );
    }

    #[test]
    fn invariant_max_delay() {
        let e = env();
        let inv = Invariant::upper_bound(C0, 10);
        assert_eq!(inv.max_delay(&e, &e).unwrap(), Some(7));
        assert!(inv.holds(&e, &e).unwrap());
        let inv = Invariant::none();
        assert_eq!(inv.max_delay(&e, &e).unwrap(), None);
    }

    #[test]
    fn invariant_on_stopped_clock() {
        let e = env();
        // c1 = 5 stopped; bound 5 holds forever, bound 4 violated now.
        let inv = Invariant::upper_bound(C1, 5);
        assert_eq!(inv.max_delay(&e, &e).unwrap(), None);
        assert!(inv.holds(&e, &e).unwrap());
        let inv = Invariant::upper_bound(C1, 4);
        assert_eq!(inv.max_delay(&e, &e).unwrap(), Some(-1));
        assert!(!inv.holds(&e, &e).unwrap());
    }

    #[test]
    fn invariant_multiple_atoms_takes_min() {
        let e = env();
        let inv = Invariant::upper_bound(C0, 10).and_upper_bound(C0, 6);
        assert_eq!(inv.max_delay(&e, &e).unwrap(), Some(3));
    }

    #[test]
    fn bind_params_reaches_all_components() {
        use crate::ids::ParamId;
        let g = Guard::when(IntExpr::param(ParamId::from_raw(0)).gt(0)).and_clock(ClockAtom::new(
            C0,
            CmpOp::Ge,
            IntExpr::param(ParamId::from_raw(1)),
        ));
        assert_eq!(g.max_param(), Some(1));
        let bound = g.bind_params(&[1, 42]);
        assert_eq!(bound.max_param(), None);
        let e = env();
        // c0 = 3, needs to reach 42: window starts at 39.
        assert_eq!(
            bound.enabling_window(&e, &e).unwrap(),
            Some(DelayWindow::unbounded(39))
        );
    }

    #[test]
    fn display_forms() {
        let g = Guard::always().and_clock(ClockAtom::new(C0, CmpOp::Ge, 5));
        assert_eq!(g.to_string(), "c0 >= 5");
        assert_eq!(Guard::always().to_string(), "true");
        let inv = Invariant::upper_bound(C0, 10);
        assert_eq!(inv.to_string(), "c0 <= 10");
        assert_eq!(Invariant::none().to_string(), "true");
        assert_eq!(DelayWindow::bounded(1, 2).to_string(), "[1, 2]");
        assert_eq!(DelayWindow::unbounded(0).to_string(), "[0, inf)");
    }
}
