//! Strongly-typed indices for the entities of a network of stopwatch automata.
//!
//! Every entity (clock, variable, array, channel, automaton, location, edge)
//! is stored in a flat arena inside [`crate::network::Network`] and referred
//! to by a small index newtype. The newtypes prevent accidentally using, say,
//! a clock index where a variable index is expected ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            ///
            /// Mostly useful in tests; prefer the ids returned by the
            /// builder methods on [`crate::network::NetworkBuilder`].
            #[must_use]
            pub const fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this id.
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for arena indexing.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a stopwatch clock in a network.
    ClockId,
    "c"
);
define_id!(
    /// Identifier of a bounded integer variable in a network.
    VarId,
    "v"
);
define_id!(
    /// Identifier of a bounded integer array in a network.
    ArrayId,
    "a"
);
define_id!(
    /// Identifier of a synchronization channel in a network.
    ChannelId,
    "ch"
);
define_id!(
    /// Identifier of an automaton inside a network.
    AutomatonId,
    "A"
);
define_id!(
    /// Identifier of a location inside one automaton.
    LocationId,
    "l"
);
define_id!(
    /// Identifier of an edge inside one automaton.
    EdgeId,
    "e"
);
define_id!(
    /// Identifier of an unbound template parameter.
    ///
    /// Parameters appear in parametric automata (templates); they must be
    /// substituted with concrete constants (see
    /// [`crate::expr::IntExpr::bind_params`]) before simulation.
    ParamId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let c = ClockId::from_raw(7);
        assert_eq!(c.raw(), 7);
        assert_eq!(c.index(), 7);
    }

    #[test]
    fn display_uses_tag() {
        assert_eq!(ClockId::from_raw(3).to_string(), "c3");
        assert_eq!(VarId::from_raw(0).to_string(), "v0");
        assert_eq!(ArrayId::from_raw(1).to_string(), "a1");
        assert_eq!(ChannelId::from_raw(9).to_string(), "ch9");
        assert_eq!(AutomatonId::from_raw(2).to_string(), "A2");
        assert_eq!(LocationId::from_raw(4).to_string(), "l4");
        assert_eq!(EdgeId::from_raw(5).to_string(), "e5");
        assert_eq!(ParamId::from_raw(6).to_string(), "p6");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ClockId::from_raw(1) < ClockId::from_raw(2));
        assert_eq!(ClockId::from_raw(5), ClockId::from_raw(5));
    }
}
