//! # swa-nsa — networks of stopwatch automata
//!
//! This crate implements the formal substrate of the `swa` project: the
//! *Network of Stopwatch Automata* (NSA) formalism of Cassez & Larsen, in
//! the discrete-time fragment used by the paper *“Stopwatch Automata-Based
//! Model for Efficient Schedulability Analysis of Modular Computer
//! Systems”*, together with a deterministic event-driven simulator.
//!
//! ## Formalism
//!
//! An automaton (tuple `⟨L, l₀, U, C, V, v̄₀, AU, AS, E, I, P⟩` in the
//! paper) is built from:
//!
//! * **locations** ([`automaton::Location`]) with invariants and an optional
//!   *committed* flag (time cannot pass while any automaton is committed);
//! * **edges** ([`automaton::Edge`]) carrying a guard, a synchronization
//!   action (internal, send `ch!`, receive `ch?`) and updates;
//! * **clocks** that can be stopped and resumed — stopwatches — plus bounded
//!   integer **variables** and **arrays** shared across the network;
//! * **channels**, binary (one sender, one receiver) or broadcast (one
//!   sender, all ready receivers).
//!
//! Guards and invariants use the restricted normal form of
//! [`guard`]: clock-free predicates (with bounded `forall`/`exists`,
//! module [`expr`]) plus clock atoms `clock ⋈ expr`. This is what makes the
//! simulator's next-event computation exact.
//!
//! ## Simulation
//!
//! [`sim::Simulator`] interprets a network under maximal-progress semantics
//! and produces an [`trace::NsaTrace`] of synchronization events. For the
//! models constructed by `swa-core` every run yields the same observable
//! trace (the paper's determinism theorem); [`sim::TieBreak`] exists to
//! *test* that claim rather than to influence results.
//!
//! ## Example
//!
//! ```
//! use swa_nsa::automaton::{AutomatonBuilder, Edge};
//! use swa_nsa::expr::CmpOp;
//! use swa_nsa::guard::{ClockAtom, Guard, Invariant};
//! use swa_nsa::network::NetworkBuilder;
//! use swa_nsa::sim::Simulator;
//! use swa_nsa::update::Update;
//!
//! let mut nb = NetworkBuilder::new();
//! let c = nb.clock("c");
//! let mut a = AutomatonBuilder::new("periodic");
//! let wait = a.location_with_invariant("wait", Invariant::upper_bound(c, 25));
//! a.edge(
//!     Edge::new(wait, wait)
//!         .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 25)))
//!         .with_update(Update::ResetClock(c)),
//! );
//! nb.automaton(a.finish(wait));
//! let network = nb.build()?;
//!
//! let outcome = Simulator::new(&network).horizon(100).run()?;
//! assert_eq!(outcome.trace.len(), 3); // at t = 25, 50, 75 (horizon exclusive)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

pub mod automaton;
pub mod bytecode;
pub mod diagnose;
pub mod dot;
pub mod error;
pub mod expr;
pub mod fastsim;
pub mod guard;
pub mod ids;
pub mod network;
pub mod semantics;
pub mod sim;
pub mod snapshot;
pub mod state;
pub mod trace;
pub mod update;
pub mod uppaal;

pub use automaton::{Automaton, AutomatonBuilder, Edge, Location, Sync};
pub use bytecode::{CompileStats, CompiledNetwork, EvalEngine};
pub use diagnose::{BlockReason, Diagnosis, DiagnosisKind, ExplainedError};
pub use error::{BuildError, EvalError, SimError, SnapshotError};
pub use expr::{CmpOp, IntExpr, Pred};
pub use guard::{ClockAtom, Guard, Invariant};
pub use ids::{ArrayId, AutomatonId, ChannelId, ClockId, EdgeId, LocationId, ParamId, VarId};
pub use network::{ChannelKind, Network, NetworkBuilder};
pub use sim::{SimOutcome, SimSession, SimStats, Simulator, StopReason, TieBreak};
pub use snapshot::{Snapshot, SNAPSHOT_VERSION};
pub use state::State;
pub use trace::{NsaTrace, SyncEvent};
pub use update::{LValue, Update};
