//! Networks of stopwatch automata: shared declarations plus a set of
//! automata operating synchronously.
//!
//! A [`Network`] owns all clocks, bounded integer variables, arrays and
//! channels; automata reference them by id. This mirrors the paper's model,
//! where shared variables (`is_ready`, `prio`, …) and channels (`exec`,
//! `preempt`, …) form the interfaces between component automata.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::automaton::Automaton;
use crate::bytecode::CompiledNetwork;
use crate::error::BuildError;
use crate::expr::{IntExpr, Pred};
use crate::ids::{ArrayId, AutomatonId, ChannelId, ClockId, EdgeId, LocationId, VarId};
use crate::update::{LValue, Update};

/// Kind of a synchronization channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Exactly one sender and one receiver synchronize; a send blocks until
    /// some receiver can take the complementary transition.
    Binary,
    /// One sender and every automaton with an enabled receiving edge
    /// synchronize; a send never blocks.
    Broadcast,
}

/// Declaration of a stopwatch clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDecl {
    /// Clock name (for traces and DOT exports).
    pub name: String,
    /// Whether the clock starts running (all clocks start at value 0).
    pub starts_running: bool,
}

/// Declaration of a bounded integer variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Initial value.
    pub init: i64,
    /// Inclusive domain.
    pub min: i64,
    /// Inclusive domain.
    pub max: i64,
}

/// Declaration of a bounded integer array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Initial values; the length of this vector is the array length.
    pub init: Vec<i64>,
    /// Inclusive element domain.
    pub min: i64,
    /// Inclusive element domain.
    pub max: i64,
}

/// Declaration of a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Channel name.
    pub name: String,
    /// Binary or broadcast.
    pub kind: ChannelKind,
}

/// A validated network of stopwatch automata.
///
/// Construct through [`NetworkBuilder`]; the builder's
/// [`build`](NetworkBuilder::build) performs all structural validation, so a
/// `Network` value is always well-formed.
#[derive(Debug, Clone)]
pub struct Network {
    pub(crate) clocks: Vec<ClockDecl>,
    pub(crate) vars: Vec<VarDecl>,
    pub(crate) arrays: Vec<ArrayDecl>,
    pub(crate) channels: Vec<ChannelDecl>,
    pub(crate) automata: Vec<Automaton>,
    /// Offset of each array's cells in the flattened state vector
    /// (scalars first, then array cells in declaration order).
    pub(crate) array_offsets: Vec<usize>,
    /// Per automaton, per location: outgoing edge ids (ascending).
    pub(crate) outgoing: Vec<Vec<Vec<EdgeId>>>,
    /// Per channel: every receiving edge in the network, in canonical
    /// (automaton, edge) order.
    pub(crate) receivers: Vec<Vec<(AutomatonId, EdgeId)>>,
    /// Lazily compiled bytecode form of every guard, invariant and update
    /// (see [`crate::bytecode`]); built at most once per network value.
    pub(crate) compiled: OnceLock<CompiledNetwork>,
}

/// Equality is over the declared model only; whether the bytecode cache
/// has been populated is an evaluation detail.
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.clocks == other.clocks
            && self.vars == other.vars
            && self.arrays == other.arrays
            && self.channels == other.channels
            && self.automata == other.automata
    }
}

impl Eq for Network {}

impl Network {
    /// Clock declarations.
    #[must_use]
    pub fn clocks(&self) -> &[ClockDecl] {
        &self.clocks
    }

    /// Variable declarations.
    #[must_use]
    pub fn vars(&self) -> &[VarDecl] {
        &self.vars
    }

    /// Array declarations.
    #[must_use]
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Channel declarations.
    #[must_use]
    pub fn channels(&self) -> &[ChannelDecl] {
        &self.channels
    }

    /// The automata of the network, indexed by [`AutomatonId`].
    #[must_use]
    pub fn automata(&self) -> &[Automaton] {
        &self.automata
    }

    /// Returns an automaton by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn automaton(&self, id: AutomatonId) -> &Automaton {
        &self.automata[id.index()]
    }

    /// Looks up an automaton id by name.
    #[must_use]
    pub fn automaton_by_name(&self, name: &str) -> Option<AutomatonId> {
        self.automata
            .iter()
            .position(|a| a.name == name)
            .and_then(|i| u32::try_from(i).ok().map(AutomatonId::from_raw))
    }

    /// Looks up a channel id by name.
    #[must_use]
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .and_then(|i| u32::try_from(i).ok().map(ChannelId::from_raw))
    }

    /// Looks up a variable id by name.
    #[must_use]
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .and_then(|i| u32::try_from(i).ok().map(VarId::from_raw))
    }

    /// Looks up an array id by name.
    #[must_use]
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .and_then(|i| u32::try_from(i).ok().map(ArrayId::from_raw))
    }

    /// Looks up a clock id by name.
    #[must_use]
    pub fn clock_by_name(&self, name: &str) -> Option<ClockId> {
        self.clocks
            .iter()
            .position(|c| c.name == name)
            .and_then(|i| u32::try_from(i).ok().map(ClockId::from_raw))
    }

    /// Total number of state variables (scalars plus flattened array cells).
    #[must_use]
    pub fn state_var_count(&self) -> usize {
        self.vars.len() + self.arrays.iter().map(|a| a.init.len()).sum::<usize>()
    }

    /// Outgoing edges of a location of an automaton, ascending by edge id.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn outgoing_edges(&self, automaton: AutomatonId, location: LocationId) -> &[EdgeId] {
        &self.outgoing[automaton.index()][location.index()]
    }

    /// Every receiving edge on `channel`, in canonical (automaton, edge)
    /// order (regardless of current locations).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn receivers_on(&self, channel: ChannelId) -> &[(AutomatonId, EdgeId)] {
        &self.receivers[channel.index()]
    }

    /// Offset of the first cell of `array` in the flattened state vector.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn array_offset(&self, array: ArrayId) -> usize {
        self.array_offsets[array.index()]
    }

    /// Length of `array`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn array_len(&self, array: ArrayId) -> usize {
        self.arrays[array.index()].init.len()
    }

    /// The bytecode form of every guard, invariant and update, compiled on
    /// first use and cached for the lifetime of this network value.
    pub fn compiled(&self) -> &CompiledNetwork {
        self.compiled.get_or_init(|| CompiledNetwork::compile(self))
    }

    /// Whether [`compiled`](Self::compiled) has already run for this value
    /// (observability: distinguishes a bytecode-cache hit from a fresh
    /// compilation without forcing one).
    #[must_use]
    pub fn is_compiled(&self) -> bool {
        self.compiled.get().is_some()
    }
}

/// Builder for a [`Network`].
///
/// # Examples
///
/// ```
/// use swa_nsa::network::{ChannelKind, NetworkBuilder};
/// use swa_nsa::automaton::{AutomatonBuilder, Edge, Sync};
///
/// let mut nb = NetworkBuilder::new();
/// let ping = nb.binary_channel("ping");
///
/// let mut a = AutomatonBuilder::new("sender");
/// let s0 = a.location("s0");
/// a.edge(Edge::new(s0, s0).with_sync(Sync::Send(ping)));
/// nb.automaton(a.finish(s0));
///
/// let mut b = AutomatonBuilder::new("receiver");
/// let r0 = b.location("r0");
/// b.edge(Edge::new(r0, r0).with_sync(Sync::Recv(ping)));
/// nb.automaton(b.finish(r0));
///
/// let network = nb.build()?;
/// assert_eq!(network.automata().len(), 2);
/// # Ok::<(), swa_nsa::error::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    clocks: Vec<ClockDecl>,
    vars: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    channels: Vec<ChannelDecl>,
    automata: Vec<Automaton>,
    /// Maximum number of items of each kind the builder accepts.
    capacity_limit: u64,
    /// First capacity overflow observed; declaring methods stay infallible
    /// (they return a clamped id), and [`build`](Self::build) surfaces the
    /// error instead of aborting the process.
    capacity_error: Option<BuildError>,
}

/// Number of items each id kind can address (ids are `u32`-backed).
const ID_CAPACITY: u64 = 1 << 32;

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self {
            clocks: Vec::new(),
            vars: Vec::new(),
            arrays: Vec::new(),
            channels: Vec::new(),
            automata: Vec::new(),
            capacity_limit: ID_CAPACITY,
            capacity_error: None,
        }
    }
}

impl NetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Lowers the per-kind item limit (useful for tests and for callers
    /// that want to bound hostile generators well below the `u32` id
    /// space). Declarations beyond the limit make [`build`](Self::build)
    /// return [`BuildError::CapacityExceeded`].
    #[must_use]
    pub fn with_capacity_limit(mut self, limit: u64) -> Self {
        self.capacity_limit = limit.min(ID_CAPACITY);
        self
    }

    /// The raw id for the next item of a kind with `count` existing items,
    /// recording a capacity error (and clamping) on overflow.
    fn next_raw(&mut self, count: usize, kind: &'static str) -> u32 {
        match u32::try_from(count) {
            Ok(raw) if u64::from(raw) < self.capacity_limit => raw,
            _ => {
                if self.capacity_error.is_none() {
                    self.capacity_error = Some(BuildError::CapacityExceeded {
                        kind,
                        limit: self.capacity_limit,
                    });
                }
                u32::MAX
            }
        }
    }

    /// Declares a running clock and returns its id.
    pub fn clock(&mut self, name: impl Into<String>) -> ClockId {
        self.add_clock(ClockDecl {
            name: name.into(),
            starts_running: true,
        })
    }

    /// Declares a clock that starts stopped and returns its id.
    pub fn stopped_clock(&mut self, name: impl Into<String>) -> ClockId {
        self.add_clock(ClockDecl {
            name: name.into(),
            starts_running: false,
        })
    }

    fn add_clock(&mut self, decl: ClockDecl) -> ClockId {
        let id = ClockId::from_raw(self.next_raw(self.clocks.len(), "clocks"));
        self.clocks.push(decl);
        id
    }

    /// Declares a bounded integer variable and returns its id.
    pub fn var(&mut self, name: impl Into<String>, init: i64, min: i64, max: i64) -> VarId {
        let id = VarId::from_raw(self.next_raw(self.vars.len(), "variables"));
        self.vars.push(VarDecl {
            name: name.into(),
            init,
            min,
            max,
        });
        id
    }

    /// Declares a boolean-like variable with domain `[0, 1]`.
    pub fn flag(&mut self, name: impl Into<String>, init: bool) -> VarId {
        self.var(name, i64::from(init), 0, 1)
    }

    /// Declares a bounded integer array and returns its id.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        init: Vec<i64>,
        min: i64,
        max: i64,
    ) -> ArrayId {
        let id = ArrayId::from_raw(self.next_raw(self.arrays.len(), "arrays"));
        self.arrays.push(ArrayDecl {
            name: name.into(),
            init,
            min,
            max,
        });
        id
    }

    /// Declares a binary channel and returns its id.
    pub fn binary_channel(&mut self, name: impl Into<String>) -> ChannelId {
        self.add_channel(name.into(), ChannelKind::Binary)
    }

    /// Declares a broadcast channel and returns its id.
    pub fn broadcast_channel(&mut self, name: impl Into<String>) -> ChannelId {
        self.add_channel(name.into(), ChannelKind::Broadcast)
    }

    fn add_channel(&mut self, name: String, kind: ChannelKind) -> ChannelId {
        let id = ChannelId::from_raw(self.next_raw(self.channels.len(), "channels"));
        self.channels.push(ChannelDecl { name, kind });
        id
    }

    /// Adds an automaton and returns its id.
    pub fn automaton(&mut self, automaton: Automaton) -> AutomatonId {
        let id = AutomatonId::from_raw(self.next_raw(self.automata.len(), "automata"));
        self.automata.push(automaton);
        id
    }

    /// Validates and freezes the network.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if
    ///
    /// * any automaton has no locations, duplicates a name, or references a
    ///   location/clock/variable/array/channel that does not exist;
    /// * any variable domain is empty or an initial value is out of domain;
    /// * any expression still contains unbound template parameters;
    /// * more items of one kind were declared than ids can address
    ///   ([`BuildError::CapacityExceeded`]).
    pub fn build(self) -> Result<Network, BuildError> {
        if let Some(e) = self.capacity_error {
            return Err(e);
        }
        let edge_cap = BuildError::CapacityExceeded {
            kind: "edges",
            limit: self.capacity_limit,
        };
        for a in &self.automata {
            if u64::try_from(a.edges.len()).map_or(true, |n| n > self.capacity_limit) {
                return Err(edge_cap);
            }
        }
        let mut array_offsets = Vec::with_capacity(self.arrays.len());
        let mut offset = self.vars.len();
        for a in &self.arrays {
            array_offsets.push(offset);
            offset += a.init.len();
        }
        let mut outgoing: Vec<Vec<Vec<EdgeId>>> = Vec::with_capacity(self.automata.len());
        for a in &self.automata {
            let mut per_loc: Vec<Vec<EdgeId>> = vec![Vec::new(); a.locations.len()];
            for (ei, e) in a.edges.iter().enumerate() {
                if let Some(v) = per_loc.get_mut(e.from.index()) {
                    v.push(EdgeId::from_raw(
                        u32::try_from(ei).map_err(|_| edge_cap.clone())?,
                    ));
                }
            }
            outgoing.push(per_loc);
        }
        let automaton_cap = BuildError::CapacityExceeded {
            kind: "automata",
            limit: self.capacity_limit,
        };
        let mut receivers: Vec<Vec<(AutomatonId, EdgeId)>> = vec![Vec::new(); self.channels.len()];
        for (ai, a) in self.automata.iter().enumerate() {
            let aid =
                AutomatonId::from_raw(u32::try_from(ai).map_err(|_| automaton_cap.clone())?);
            for (ei, e) in a.edges.iter().enumerate() {
                if let crate::automaton::Sync::Recv(ch) = e.sync {
                    if let Some(v) = receivers.get_mut(ch.index()) {
                        v.push((
                            aid,
                            EdgeId::from_raw(u32::try_from(ei).map_err(|_| edge_cap.clone())?),
                        ));
                    }
                }
            }
        }
        let network = Network {
            clocks: self.clocks,
            vars: self.vars,
            arrays: self.arrays,
            channels: self.channels,
            automata: self.automata,
            array_offsets,
            outgoing,
            receivers,
            compiled: OnceLock::new(),
        };
        validate(&network)?;
        Ok(network)
    }
}

fn validate(n: &Network) -> Result<(), BuildError> {
    // Variable domains.
    for (i, v) in n.vars.iter().enumerate() {
        let var = VarId::from_raw(u32::try_from(i).map_err(|_| BuildError::CapacityExceeded {
            kind: "variables",
            limit: ID_CAPACITY,
        })?);
        if v.min > v.max {
            return Err(BuildError::EmptyDomain {
                var,
                domain: (v.min, v.max),
            });
        }
        if v.init < v.min || v.init > v.max {
            return Err(BuildError::InitialValueOutOfDomain {
                var,
                value: v.init,
                domain: (v.min, v.max),
            });
        }
    }
    for a in &n.arrays {
        for &v in &a.init {
            if v < a.min || v > a.max {
                return Err(BuildError::InitialValueOutOfDomain {
                    var: VarId::from_raw(u32::MAX),
                    value: v,
                    domain: (a.min, a.max),
                });
            }
        }
    }

    // Automata structure.
    let mut names = HashMap::new();
    for (ai, a) in n.automata.iter().enumerate() {
        let aid =
            AutomatonId::from_raw(u32::try_from(ai).map_err(|_| BuildError::CapacityExceeded {
                kind: "automata",
                limit: ID_CAPACITY,
            })?);
        if a.locations.is_empty() {
            return Err(BuildError::EmptyAutomaton(aid));
        }
        if names.insert(a.name.clone(), aid).is_some() {
            return Err(BuildError::DuplicateAutomatonName(a.name.clone()));
        }
        if a.initial.index() >= a.locations.len() {
            return Err(BuildError::UnknownLocation {
                automaton: aid,
                location: a.initial,
            });
        }
        for l in &a.locations {
            for atom in &l.invariant.atoms {
                check_clock(n, atom.clock)?;
                check_int_expr(n, &atom.rhs, &format!("invariant of {}", a.name))?;
            }
            if let Some(p) = l.invariant.max_param() {
                return Err(BuildError::UnboundParam {
                    param: p,
                    context: format!("invariant in automaton {}", a.name),
                });
            }
        }
        for e in &a.edges {
            if e.from.index() >= a.locations.len() {
                return Err(BuildError::UnknownLocation {
                    automaton: aid,
                    location: e.from,
                });
            }
            if e.to.index() >= a.locations.len() {
                return Err(BuildError::UnknownLocation {
                    automaton: aid,
                    location: e.to,
                });
            }
            if let Some(ch) = e.sync.channel() {
                if ch.index() >= n.channels.len() {
                    return Err(BuildError::UnknownChannel(ch.raw()));
                }
            }
            let ctx = format!("edge {} -> {} of {}", e.from, e.to, a.name);
            for p in &e.guard.preds {
                check_pred(n, p, &ctx)?;
            }
            for atom in &e.guard.clock_atoms {
                check_clock(n, atom.clock)?;
                check_int_expr(n, &atom.rhs, &ctx)?;
            }
            for u in &e.updates {
                check_update(n, u, &ctx)?;
            }
            if let Some(p) = e.max_param() {
                return Err(BuildError::UnboundParam {
                    param: p,
                    context: ctx,
                });
            }
        }
    }
    Ok(())
}

fn check_clock(n: &Network, c: ClockId) -> Result<(), BuildError> {
    if c.index() >= n.clocks.len() {
        return Err(BuildError::UnknownClock(c));
    }
    Ok(())
}

fn check_var(n: &Network, v: VarId) -> Result<(), BuildError> {
    if v.index() >= n.vars.len() {
        return Err(BuildError::UnknownVar(v));
    }
    Ok(())
}

fn check_array(n: &Network, a: ArrayId) -> Result<(), BuildError> {
    if a.index() >= n.arrays.len() {
        return Err(BuildError::UnknownArray(a.raw()));
    }
    Ok(())
}

fn check_int_expr(n: &Network, e: &IntExpr, ctx: &str) -> Result<(), BuildError> {
    match e {
        IntExpr::Lit(_) | IntExpr::Param(_) | IntExpr::Bound(_) => Ok(()),
        IntExpr::Var(v) => check_var(n, *v),
        IntExpr::Elem(a, idx) => {
            check_array(n, *a)?;
            check_int_expr(n, idx, ctx)
        }
        IntExpr::Neg(a) => check_int_expr(n, a, ctx),
        IntExpr::Add(a, b)
        | IntExpr::Sub(a, b)
        | IntExpr::Mul(a, b)
        | IntExpr::Div(a, b)
        | IntExpr::Rem(a, b)
        | IntExpr::Min(a, b)
        | IntExpr::Max(a, b) => {
            check_int_expr(n, a, ctx)?;
            check_int_expr(n, b, ctx)
        }
        IntExpr::Ite(p, t, e2) => {
            check_pred(n, p, ctx)?;
            check_int_expr(n, t, ctx)?;
            check_int_expr(n, e2, ctx)
        }
    }
}

fn check_pred(n: &Network, p: &Pred, ctx: &str) -> Result<(), BuildError> {
    match p {
        Pred::Lit(_) => Ok(()),
        Pred::Cmp(_, a, b) => {
            check_int_expr(n, a, ctx)?;
            check_int_expr(n, b, ctx)
        }
        Pred::Not(inner) => check_pred(n, inner, ctx),
        Pred::And(ps) | Pred::Or(ps) => {
            for q in ps {
                check_pred(n, q, ctx)?;
            }
            Ok(())
        }
        Pred::ForAll { lo, hi, body } | Pred::Exists { lo, hi, body } => {
            check_int_expr(n, lo, ctx)?;
            check_int_expr(n, hi, ctx)?;
            check_pred(n, body, ctx)
        }
    }
}

fn check_update(n: &Network, u: &Update, ctx: &str) -> Result<(), BuildError> {
    match u {
        Update::Assign { target, value } => {
            match target {
                LValue::Var(v) => check_var(n, *v)?,
                LValue::Elem(a, idx) => {
                    check_array(n, *a)?;
                    check_int_expr(n, idx, ctx)?;
                }
            }
            check_int_expr(n, value, ctx)
        }
        Update::ResetClock(c) | Update::StopClock(c) | Update::StartClock(c) => check_clock(n, *c),
        Update::If {
            cond,
            then,
            otherwise,
        } => {
            check_pred(n, cond, ctx)?;
            for u in then.iter().chain(otherwise) {
                check_update(n, u, ctx)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge, Sync};
    use crate::guard::Guard;
    use crate::ids::ParamId;

    fn trivial_automaton(name: &str) -> Automaton {
        let mut b = AutomatonBuilder::new(name);
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0));
        b.finish(l0)
    }

    #[test]
    fn empty_network_builds() {
        let n = NetworkBuilder::new().build().unwrap();
        assert!(n.automata().is_empty());
        assert_eq!(n.state_var_count(), 0);
    }

    #[test]
    fn lookups_by_name() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("x");
        let v = nb.var("n", 0, 0, 10);
        let a = nb.array("arr", vec![1, 2], 0, 5);
        let ch = nb.binary_channel("go");
        let aid = nb.automaton(trivial_automaton("worker"));
        let n = nb.build().unwrap();
        assert_eq!(n.clock_by_name("x"), Some(c));
        assert_eq!(n.var_by_name("n"), Some(v));
        assert_eq!(n.array_by_name("arr"), Some(a));
        assert_eq!(n.channel_by_name("go"), Some(ch));
        assert_eq!(n.automaton_by_name("worker"), Some(aid));
        assert_eq!(n.automaton_by_name("nobody"), None);
        assert_eq!(n.state_var_count(), 3);
    }

    #[test]
    fn rejects_empty_automaton() {
        let mut nb = NetworkBuilder::new();
        nb.automaton(Automaton::new("empty", Vec::new(), Vec::new()));
        assert!(matches!(nb.build(), Err(BuildError::EmptyAutomaton(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut nb = NetworkBuilder::new();
        nb.automaton(trivial_automaton("dup"));
        nb.automaton(trivial_automaton("dup"));
        assert!(matches!(
            nb.build(),
            Err(BuildError::DuplicateAutomatonName(_))
        ));
    }

    #[test]
    fn rejects_bad_initial_value() {
        let mut nb = NetworkBuilder::new();
        nb.var("v", 11, 0, 10);
        assert!(matches!(
            nb.build(),
            Err(BuildError::InitialValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn rejects_empty_domain() {
        let mut nb = NetworkBuilder::new();
        nb.var("v", 0, 5, 4);
        assert!(matches!(nb.build(), Err(BuildError::EmptyDomain { .. })));
    }

    #[test]
    fn rejects_bad_array_init() {
        let mut nb = NetworkBuilder::new();
        nb.array("a", vec![0, 99], 0, 10);
        assert!(matches!(
            nb.build(),
            Err(BuildError::InitialValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn rejects_unknown_channel() {
        let mut nb = NetworkBuilder::new();
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0).with_sync(Sync::Send(ChannelId::from_raw(9))));
        nb.automaton(b.finish(l0));
        assert!(matches!(nb.build(), Err(BuildError::UnknownChannel(9))));
    }

    #[test]
    fn rejects_unknown_variable_in_guard() {
        let mut nb = NetworkBuilder::new();
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0).with_guard(Guard::when(IntExpr::var(VarId::from_raw(5)).gt(0))));
        nb.automaton(b.finish(l0));
        assert!(matches!(nb.build(), Err(BuildError::UnknownVar(_))));
    }

    #[test]
    fn rejects_unbound_params() {
        let mut nb = NetworkBuilder::new();
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        b.edge(
            Edge::new(l0, l0).with_guard(Guard::when(IntExpr::param(ParamId::from_raw(0)).gt(0))),
        );
        nb.automaton(b.finish(l0));
        assert!(matches!(nb.build(), Err(BuildError::UnboundParam { .. })));
    }

    #[test]
    fn rejects_edge_to_unknown_location() {
        let mut nb = NetworkBuilder::new();
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, crate::ids::LocationId::from_raw(7)));
        nb.automaton(b.finish(l0));
        assert!(matches!(
            nb.build(),
            Err(BuildError::UnknownLocation { .. })
        ));
    }

    #[test]
    fn capacity_limit_boundary_is_inclusive() {
        // Exactly `limit` items of a kind build fine…
        let mut nb = NetworkBuilder::new().with_capacity_limit(2);
        let c0 = nb.clock("c0");
        let c1 = nb.clock("c1");
        assert_eq!((c0.raw(), c1.raw()), (0, 1));
        let n = nb.build().unwrap();
        assert_eq!(n.clocks().len(), 2);

        // …one more degrades into a typed error instead of a panic.
        let mut nb = NetworkBuilder::new().with_capacity_limit(2);
        nb.clock("c0");
        nb.clock("c1");
        nb.clock("c2");
        assert_eq!(
            nb.build().unwrap_err(),
            BuildError::CapacityExceeded {
                kind: "clocks",
                limit: 2
            }
        );
    }

    #[test]
    fn capacity_error_reports_first_overflowing_kind() {
        let mut nb = NetworkBuilder::new().with_capacity_limit(1);
        nb.var("v0", 0, 0, 1);
        nb.var("v1", 0, 0, 1);
        nb.binary_channel("ch0");
        nb.binary_channel("ch1");
        assert_eq!(
            nb.build().unwrap_err(),
            BuildError::CapacityExceeded {
                kind: "variables",
                limit: 1
            }
        );
    }

    #[test]
    fn automaton_capacity_is_enforced() {
        let mut nb = NetworkBuilder::new().with_capacity_limit(1);
        nb.automaton(trivial_automaton("a"));
        nb.automaton(trivial_automaton("b"));
        assert!(matches!(
            nb.build(),
            Err(BuildError::CapacityExceeded {
                kind: "automata",
                ..
            })
        ));
    }

    #[test]
    fn rejects_unknown_clock_in_update() {
        let mut nb = NetworkBuilder::new();
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0).with_update(Update::ResetClock(ClockId::from_raw(3))));
        nb.automaton(b.finish(l0));
        assert!(matches!(nb.build(), Err(BuildError::UnknownClock(_))));
    }
}
