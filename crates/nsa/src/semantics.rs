//! Operational semantics of networks of stopwatch automata: enumeration of
//! enabled action transitions, transition application, and delay bounds.
//!
//! Both the deterministic simulator ([`crate::sim`]) and the explicit-state
//! model checker (`swa-mc`) are built on these primitives: the simulator
//! always takes the *first* enabled transition in the canonical order, while
//! the model checker explores *all* of them.

use crate::automaton::Sync;

use crate::bytecode::{self, EvalEngine};
use crate::error::{EvalError, SimError};
use crate::guard::DelayWindow;
use crate::ids::{AutomatonId, ChannelId, EdgeId};
use crate::network::{ChannelKind, Network};
use crate::state::State;

/// A participant of a transition: an automaton together with the edge it
/// takes.
pub type Participant = (AutomatonId, EdgeId);

/// An enabled action transition of the network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transition {
    /// A single automaton takes an internal edge.
    Internal {
        /// The moving automaton and edge.
        participant: Participant,
    },
    /// Two automata synchronize on a binary channel.
    Binary {
        /// The channel.
        channel: ChannelId,
        /// Automaton/edge sending (`ch!`).
        sender: Participant,
        /// Automaton/edge receiving (`ch?`).
        receiver: Participant,
    },
    /// One sender and every ready receiver synchronize on a broadcast
    /// channel.
    Broadcast {
        /// The channel.
        channel: ChannelId,
        /// Automaton/edge sending (`ch!`).
        sender: Participant,
        /// Receiving automata/edges, in ascending automaton order.
        receivers: Vec<Participant>,
    },
}

impl Transition {
    /// The channel involved, if any.
    #[must_use]
    pub fn channel(&self) -> Option<ChannelId> {
        match self {
            Self::Internal { .. } => None,
            Self::Binary { channel, .. } | Self::Broadcast { channel, .. } => Some(*channel),
        }
    }

    /// The initiating automaton (the only automaton for internal
    /// transitions; the sender for synchronizations).
    #[must_use]
    pub fn initiator(&self) -> AutomatonId {
        match self {
            Self::Internal { participant } => participant.0,
            Self::Binary { sender, .. } | Self::Broadcast { sender, .. } => sender.0,
        }
    }

    /// All participants, sender first.
    #[must_use]
    pub fn participants(&self) -> Vec<Participant> {
        match self {
            Self::Internal { participant } => vec![*participant],
            Self::Binary {
                sender, receiver, ..
            } => vec![*sender, *receiver],
            Self::Broadcast {
                sender, receivers, ..
            } => {
                let mut v = Vec::with_capacity(1 + receivers.len());
                v.push(*sender);
                v.extend_from_slice(receivers);
                v
            }
        }
    }
}

/// Returns `true` if at least one automaton is in a committed location.
#[must_use]
pub fn any_committed(network: &Network, state: &State) -> bool {
    network
        .automata()
        .iter()
        .zip(&state.locations)
        .any(|(a, &l)| a.location(l).committed)
}

fn committed_at(network: &Network, state: &State, a: AutomatonId) -> bool {
    network
        .automaton(a)
        .location(state.location_of(a))
        .committed
}

/// A transition respects committedness if either no automaton is committed,
/// or at least one participant is committed.
fn respects_committed(network: &Network, state: &State, t: &Transition, committed: bool) -> bool {
    if !committed {
        return true;
    }
    t.participants()
        .iter()
        .any(|(a, _)| committed_at(network, state, *a))
}

/// Enumerates every action transition enabled in `state`, in the canonical
/// deterministic order: internal and send edges are scanned by ascending
/// (automaton, edge) index; binary receivers by ascending (automaton, edge)
/// index.
///
/// Target-location invariants are *not* checked here (they depend on the
/// post-state); [`apply`] reports violations.
///
/// # Errors
///
/// Propagates expression evaluation errors from guards.
pub fn enabled_transitions(network: &Network, state: &State) -> Result<Vec<Transition>, EvalError> {
    enabled_transitions_with(network, state, EvalEngine::default())
}

/// As [`enabled_transitions`], with an explicit evaluation engine.
///
/// # Errors
///
/// Propagates expression evaluation errors from guards.
pub fn enabled_transitions_with(
    network: &Network,
    state: &State,
    engine: EvalEngine,
) -> Result<Vec<Transition>, EvalError> {
    let committed = any_committed(network, state);
    let mut out = Vec::new();

    for (ai, automaton) in network.automata().iter().enumerate() {
        let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
        let loc = state.location_of(aid);
        for &eid in network.outgoing_edges(aid, loc) {
            let edge = automaton.edge(eid);
            if !bytecode::guard_holds(network, engine, aid, eid, state)? {
                continue;
            }
            match edge.sync {
                Sync::Internal => {
                    let t = Transition::Internal {
                        participant: (aid, eid),
                    };
                    if respects_committed(network, state, &t, committed) {
                        out.push(t);
                    }
                }
                Sync::Send(ch) => match network.channels()[ch.index()].kind {
                    ChannelKind::Binary => {
                        for recv in receivers_on(network, state, ch, Some(aid), engine)? {
                            let t = Transition::Binary {
                                channel: ch,
                                sender: (aid, eid),
                                receiver: recv,
                            };
                            if respects_committed(network, state, &t, committed) {
                                out.push(t);
                            }
                        }
                    }
                    ChannelKind::Broadcast => {
                        let receivers =
                            first_receiver_per_automaton(network, state, ch, aid, engine)?;
                        let t = Transition::Broadcast {
                            channel: ch,
                            sender: (aid, eid),
                            receivers,
                        };
                        if respects_committed(network, state, &t, committed) {
                            out.push(t);
                        }
                    }
                },
                Sync::Recv(_) => {
                    // Receivers are paired from the sender side.
                }
            }
        }
    }
    Ok(out)
}

/// All enabled receiving edges on `channel`, excluding `exclude` (the
/// sender's automaton), in canonical order. Used for binary pairing.
fn receivers_on(
    network: &Network,
    state: &State,
    channel: ChannelId,
    exclude: Option<AutomatonId>,
    engine: EvalEngine,
) -> Result<Vec<Participant>, EvalError> {
    let mut out = Vec::new();
    for &(aid, eid) in network.receivers_on(channel) {
        if exclude == Some(aid) {
            continue;
        }
        let edge = network.automaton(aid).edge(eid);
        if edge.from == state.location_of(aid)
            && bytecode::guard_holds(network, engine, aid, eid, state)?
        {
            out.push((aid, eid));
        }
    }
    Ok(out)
}

/// For a broadcast: every automaton (except the sender) that has an enabled
/// receiving edge participates with its first such edge.
fn first_receiver_per_automaton(
    network: &Network,
    state: &State,
    channel: ChannelId,
    sender: AutomatonId,
    engine: EvalEngine,
) -> Result<Vec<Participant>, EvalError> {
    let mut out: Vec<Participant> = Vec::new();
    // The receiver index is in canonical (automaton, edge) order, so the
    // first hit per automaton is the lowest-indexed enabled edge.
    for &(aid, eid) in network.receivers_on(channel) {
        if aid == sender || out.last().is_some_and(|(last, _)| *last == aid) {
            continue;
        }
        let edge = network.automaton(aid).edge(eid);
        if edge.from == state.location_of(aid)
            && bytecode::guard_holds(network, engine, aid, eid, state)?
        {
            out.push((aid, eid));
        }
    }
    Ok(out)
}

/// Applies a transition to `state`: moves the participants to their target
/// locations and runs updates (sender first, then receivers in order).
///
/// # Errors
///
/// Returns [`SimError::InvariantViolated`] if a participant's target
/// invariant does not hold in the post-state, and propagates update errors.
pub fn apply(
    network: &Network,
    state: &mut State,
    transition: &Transition,
) -> Result<(), SimError> {
    apply_with(network, state, transition, EvalEngine::default())
}

/// As [`apply`], with an explicit evaluation engine.
///
/// # Errors
///
/// As [`apply`].
pub fn apply_with(
    network: &Network,
    state: &mut State,
    transition: &Transition,
    engine: EvalEngine,
) -> Result<(), SimError> {
    for (aid, eid) in transition.participants() {
        let edge = network.automaton(aid).edge(eid);
        state.locations[aid.index()] = edge.to;
        bytecode::run_edge_updates(network, engine, aid, eid, state)?;
    }
    // Check invariants of all target locations in the post-state.
    for (aid, _) in transition.participants() {
        let loc = state.location_of(aid);
        if !bytecode::invariant_holds(network, engine, aid, loc, state).map_err(SimError::Eval)? {
            return Err(SimError::InvariantViolated {
                automaton: aid,
                location: loc,
                time: state.time,
            });
        }
    }
    Ok(())
}

/// Result of [`delay_bounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayBounds {
    /// Largest delay admitted by all invariants (`None` = unbounded).
    /// A value of `-1` means some invariant is already violated.
    pub max_delay: Option<i64>,
    /// Smallest strictly positive delay after which some action transition's
    /// guard (and its partner's, for synchronizations) holds, ignoring the
    /// invariant bound. `None` if no delay can enable anything.
    pub next_enabling: Option<i64>,
}

/// Computes the invariant-imposed delay bound and the earliest strictly
/// positive delay enabling any action, from the current state.
///
/// Assumes no action transition is enabled *now* (the caller checks first);
/// the computation is still sound otherwise, it just ignores delay 0.
///
/// # Errors
///
/// Propagates expression evaluation errors.
pub fn delay_bounds(network: &Network, state: &State) -> Result<DelayBounds, EvalError> {
    delay_bounds_with(network, state, EvalEngine::default())
}

/// As [`delay_bounds`], with an explicit evaluation engine.
///
/// # Errors
///
/// Propagates expression evaluation errors.
pub fn delay_bounds_with(
    network: &Network,
    state: &State,
    engine: EvalEngine,
) -> Result<DelayBounds, EvalError> {
    let mut max_delay: Option<i64> = None;
    for ai in 0..network.automata().len() {
        let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
        let loc = state.location_of(aid);
        if let Some(d) = bytecode::invariant_max_delay(network, engine, aid, loc, state)? {
            max_delay = Some(max_delay.map_or(d, |m| m.min(d)));
        }
    }

    let mut next: Option<i64> = None;
    let mut consider = |w: Option<DelayWindow>| {
        if let Some(w) = w {
            let lo = w.lo.max(1);
            if w.contains(lo) {
                next = Some(next.map_or(lo, |n| n.min(lo)));
            }
        }
    };

    for (ai, automaton) in network.automata().iter().enumerate() {
        let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
        let loc = state.location_of(aid);
        for &eid in network.outgoing_edges(aid, loc) {
            let edge = automaton.edge(eid);
            match edge.sync {
                Sync::Internal => {
                    consider(bytecode::guard_window(network, engine, aid, eid, state)?);
                }
                Sync::Send(ch) => {
                    let sender_window = bytecode::guard_window(network, engine, aid, eid, state)?;
                    let Some(sw) = sender_window else { continue };
                    match network.channels()[ch.index()].kind {
                        ChannelKind::Broadcast => {
                            // A broadcast send is never blocked by receivers.
                            consider(Some(sw));
                        }
                        ChannelKind::Binary => {
                            // Pair with each potential receiver's window.
                            for &(bid, reid) in network.receivers_on(ch) {
                                if bid == aid {
                                    continue;
                                }
                                let redge = network.automaton(bid).edge(reid);
                                if redge.from != state.location_of(bid) {
                                    continue;
                                }
                                let rw =
                                    bytecode::guard_window(network, engine, bid, reid, state)?;
                                if let Some(rw) = rw {
                                    consider(sw.intersect(rw));
                                }
                            }
                        }
                    }
                }
                Sync::Recv(_) => {}
            }
        }
    }

    Ok(DelayBounds {
        max_delay,
        next_enabling: next,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::expr::{CmpOp, IntExpr};
    use crate::guard::{ClockAtom, Guard, Invariant};
    use crate::network::NetworkBuilder;
    use crate::update::Update;

    #[test]
    fn internal_transition_enumeration_and_apply() {
        let mut nb = NetworkBuilder::new();
        let v = nb.var("x", 0, 0, 10);
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        let l1 = b.location("l1");
        b.edge(Edge::new(l0, l1).with_update(Update::set(v, 5)));
        nb.automaton(b.finish(l0));
        let n = nb.build().unwrap();
        let mut s = State::initial(&n);
        let ts = enabled_transitions(&n, &s).unwrap();
        assert_eq!(ts.len(), 1);
        apply(&n, &mut s, &ts[0]).unwrap();
        assert_eq!(s.vars[0], 5);
        assert_eq!(s.location_of(AutomatonId::from_raw(0)), l1);
        assert!(enabled_transitions(&n, &s).unwrap().is_empty());
    }

    #[test]
    fn binary_sync_pairs_sender_and_receiver() {
        let mut nb = NetworkBuilder::new();
        let ch = nb.binary_channel("go");
        let v = nb.var("x", 0, 0, 100);

        let mut b = AutomatonBuilder::new("sender");
        let s0 = b.location("s0");
        let s1 = b.location("s1");
        b.edge(
            Edge::new(s0, s1)
                .with_sync(Sync::Send(ch))
                .with_update(Update::set(v, 1)),
        );
        nb.automaton(b.finish(s0));

        let mut b = AutomatonBuilder::new("receiver");
        let r0 = b.location("r0");
        let r1 = b.location("r1");
        b.edge(
            Edge::new(r0, r1)
                .with_sync(Sync::Recv(ch))
                .with_update(Update::set(v, IntExpr::var(v) + IntExpr::lit(10))),
        );
        nb.automaton(b.finish(r0));

        let n = nb.build().unwrap();
        let mut s = State::initial(&n);
        let ts = enabled_transitions(&n, &s).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(matches!(&ts[0], Transition::Binary { .. }));
        apply(&n, &mut s, &ts[0]).unwrap();
        // Sender update (x := 1) ran before receiver update (x := x + 10).
        assert_eq!(s.vars[0], 11);
    }

    #[test]
    fn send_without_receiver_blocks_on_binary() {
        let mut nb = NetworkBuilder::new();
        let ch = nb.binary_channel("go");
        let mut b = AutomatonBuilder::new("sender");
        let s0 = b.location("s0");
        let s1 = b.location("s1");
        b.edge(Edge::new(s0, s1).with_sync(Sync::Send(ch)));
        nb.automaton(b.finish(s0));
        let n = nb.build().unwrap();
        let s = State::initial(&n);
        assert!(enabled_transitions(&n, &s).unwrap().is_empty());
    }

    #[test]
    fn broadcast_collects_all_ready_receivers_and_never_blocks() {
        let mut nb = NetworkBuilder::new();
        let ch = nb.broadcast_channel("tick");
        let v = nb.var("count", 0, 0, 10);

        let mut b = AutomatonBuilder::new("sender");
        let s0 = b.location("s0");
        b.edge(Edge::new(s0, s0).with_sync(Sync::Send(ch)));
        nb.automaton(b.finish(s0));

        for name in ["r1", "r2"] {
            let mut b = AutomatonBuilder::new(name);
            let r0 = b.location("r0");
            b.edge(
                Edge::new(r0, r0)
                    .with_sync(Sync::Recv(ch))
                    .with_update(Update::set(v, IntExpr::var(v) + IntExpr::lit(1))),
            );
            nb.automaton(b.finish(r0));
        }
        // A receiver with a false guard does not participate.
        let mut b = AutomatonBuilder::new("blocked");
        let r0 = b.location("r0");
        b.edge(
            Edge::new(r0, r0)
                .with_sync(Sync::Recv(ch))
                .with_guard(Guard::when(crate::expr::Pred::ff())),
        );
        nb.automaton(b.finish(r0));

        let n = nb.build().unwrap();
        let mut s = State::initial(&n);
        let ts = enabled_transitions(&n, &s).unwrap();
        assert_eq!(ts.len(), 1);
        if let Transition::Broadcast { receivers, .. } = &ts[0] {
            assert_eq!(receivers.len(), 2);
        } else {
            panic!("expected broadcast, got {:?}", ts[0]);
        }
        apply(&n, &mut s, &ts[0]).unwrap();
        assert_eq!(s.vars[0], 2);
    }

    #[test]
    fn broadcast_takes_first_edge_when_receiver_has_duplicates() {
        let mut nb = NetworkBuilder::new();
        let ch = nb.broadcast_channel("tick");
        let v = nb.var("which", 0, 0, 10);

        let mut b = AutomatonBuilder::new("sender");
        let s0 = b.location("s0");
        b.edge(Edge::new(s0, s0).with_sync(Sync::Send(ch)));
        nb.automaton(b.finish(s0));

        // One receiver with two enabled edges on the same channel from the
        // same location: it must participate exactly once, with the
        // lower-indexed edge.
        let mut b = AutomatonBuilder::new("recv");
        let r0 = b.location("r0");
        b.edge(
            Edge::new(r0, r0)
                .with_sync(Sync::Recv(ch))
                .with_update(Update::set(v, IntExpr::lit(1))),
        );
        b.edge(
            Edge::new(r0, r0)
                .with_sync(Sync::Recv(ch))
                .with_update(Update::set(v, IntExpr::lit(2))),
        );
        nb.automaton(b.finish(r0));

        let n = nb.build().unwrap();
        let mut s = State::initial(&n);
        let ts = enabled_transitions(&n, &s).unwrap();
        assert_eq!(ts.len(), 1);
        let Transition::Broadcast { receivers, .. } = &ts[0] else {
            panic!("expected broadcast, got {:?}", ts[0]);
        };
        assert_eq!(receivers.len(), 1, "duplicate receiver must be deduplicated");
        assert_eq!(receivers[0].1.raw(), 0, "first edge in canonical order wins");
        apply(&n, &mut s, &ts[0]).unwrap();
        assert_eq!(s.vars[0], 1);
    }

    #[test]
    fn committed_location_restricts_transitions() {
        let mut nb = NetworkBuilder::new();
        let mut b = AutomatonBuilder::new("committed");
        let c0 = b.committed_location("c0");
        let c1 = b.location("c1");
        b.edge(Edge::new(c0, c1));
        nb.automaton(b.finish(c0));

        let mut b = AutomatonBuilder::new("free");
        let f0 = b.location("f0");
        let f1 = b.location("f1");
        b.edge(Edge::new(f0, f1));
        nb.automaton(b.finish(f0));

        let n = nb.build().unwrap();
        let s = State::initial(&n);
        let ts = enabled_transitions(&n, &s).unwrap();
        // Only the committed automaton may move.
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].initiator(), AutomatonId::from_raw(0));
        assert!(any_committed(&n, &s));
    }

    #[test]
    fn delay_bounds_from_invariant_and_guard() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut b = AutomatonBuilder::new("timer");
        let l0 = b.location_with_invariant("wait", Invariant::upper_bound(c, 10));
        let l1 = b.location("done");
        b.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                10,
            ))),
        );
        nb.automaton(b.finish(l0));
        let n = nb.build().unwrap();
        let s = State::initial(&n);
        assert!(enabled_transitions(&n, &s).unwrap().is_empty());
        let b = delay_bounds(&n, &s).unwrap();
        assert_eq!(b.max_delay, Some(10));
        assert_eq!(b.next_enabling, Some(10));
    }

    #[test]
    fn delay_bounds_binary_pair_uses_window_intersection() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let ch = nb.binary_channel("go");

        let mut b = AutomatonBuilder::new("sender");
        let s0 = b.location("s0");
        b.edge(
            Edge::new(s0, s0)
                .with_sync(Sync::Send(ch))
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 3))),
        );
        nb.automaton(b.finish(s0));

        let mut b = AutomatonBuilder::new("receiver");
        let r0 = b.location("r0");
        b.edge(
            Edge::new(r0, r0)
                .with_sync(Sync::Recv(ch))
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 7))),
        );
        nb.automaton(b.finish(r0));

        let n = nb.build().unwrap();
        let s = State::initial(&n);
        let b = delay_bounds(&n, &s).unwrap();
        // The pair is enabled only once both guards hold: at delay 7.
        assert_eq!(b.next_enabling, Some(7));
        assert_eq!(b.max_delay, None);
    }

    #[test]
    fn apply_rejects_invariant_violation_on_entry() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut b = AutomatonBuilder::new("bad");
        let l0 = b.location("l0");
        // Target invariant c <= 0 is violated because c is not reset.
        let l1 = b.location_with_invariant("l1", Invariant::upper_bound(c, 0));
        b.edge(Edge::new(l0, l1));
        nb.automaton(b.finish(l0));
        let n = nb.build().unwrap();
        let mut s = State::initial(&n);
        s.advance(5);
        let ts = enabled_transitions(&n, &s).unwrap();
        let err = apply(&n, &mut s, &ts[0]).unwrap_err();
        assert!(matches!(err, SimError::InvariantViolated { .. }));
    }

    #[test]
    fn transition_accessors() {
        let t = Transition::Internal {
            participant: (AutomatonId::from_raw(2), EdgeId::from_raw(1)),
        };
        assert_eq!(t.channel(), None);
        assert_eq!(t.initiator(), AutomatonId::from_raw(2));
        assert_eq!(t.participants().len(), 1);
    }
}
