//! Deterministic event-driven simulator (interpreter) for networks of
//! stopwatch automata.
//!
//! The simulator implements the *maximal-progress* semantics used by the
//! paper's approach: while any action transition is enabled, one fires
//! (chosen by a fixed total order); only when none is enabled does time
//! advance, and it advances *exactly* to the next instant at which an action
//! can fire (computed from the guards' clock atoms) or to the horizon.
//!
//! Because the paper's Sect. 3 theorem guarantees that — for models built by
//! Algorithm 1 under the worst-case assumptions — every run produces the
//! same system trace, the choice of total order is immaterial for analysis.
//! [`TieBreak`] lets tests and the determinism ablation permute the order
//! and check that the observable trace is unchanged.

use crate::bytecode::EvalEngine;
use crate::diagnose::{Diagnosis, ExplainedError};
use crate::error::{SimError, SnapshotError};
use crate::ids::AutomatonId;
use crate::network::Network;
use crate::semantics::{
    any_committed, apply_with, delay_bounds_with, enabled_transitions_with, Transition,
};
use crate::snapshot::Snapshot;
use crate::state::State;
use crate::trace::{NsaTrace, SyncEvent};

/// How to choose among several simultaneously enabled transitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Take the first transition in canonical (automaton, edge) order.
    #[default]
    Canonical,
    /// Take the last transition in canonical order.
    Reversed,
    /// Order initiating automata through a permutation: transition with the
    /// smallest `perm[initiator]` wins; ties fall back to canonical order.
    ///
    /// The permutation is indexed by raw automaton id; missing entries map
    /// to themselves.
    Permuted(Vec<u32>),
}

impl TieBreak {
    fn choose<'t>(&self, candidates: &'t [Transition]) -> &'t Transition {
        debug_assert!(!candidates.is_empty());
        match self {
            Self::Canonical => &candidates[0],
            Self::Reversed => candidates.last().expect("nonempty candidates"),
            Self::Permuted(perm) => {
                let key = |t: &Transition| {
                    let raw = t.initiator().raw();
                    perm.get(raw as usize).copied().unwrap_or(raw)
                };
                candidates
                    .iter()
                    .min_by_key(|t| key(t))
                    .expect("nonempty candidates")
            }
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Model time reached the horizon.
    HorizonReached,
    /// No action transition is enabled and none can ever become enabled;
    /// the network is quiescent (this is a normal end, not an error).
    Quiescent,
}

/// Low-level interpreter counters for one run (all zero outside the
/// accelerated loop's instrumented paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Event-wheel wake-ups drained by the accelerated loop: how many
    /// parked automata were re-examined because their wake time came due.
    pub wheel_wakeups: u64,
}

/// The result of a completed run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The generated trace.
    pub trace: NsaTrace,
    /// The final state.
    pub final_state: State,
    /// Number of action transitions taken.
    pub steps: u64,
    /// Why the run ended.
    pub stop: StopReason,
    /// Interpreter counters.
    pub stats: SimStats,
}

/// Equality is over the *observable* outcome — trace, final state, steps,
/// stop reason. [`SimStats`] is loop-implementation accounting (the
/// generic interpreter has no event wheel to count wakeups on) and is
/// deliberately excluded, so differential tests can compare the fast and
/// generic loops directly.
impl PartialEq for SimOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.trace == other.trace
            && self.final_state == other.final_state
            && self.steps == other.steps
            && self.stop == other.stop
    }
}

impl Eq for SimOutcome {}

/// Deterministic simulator for one network.
///
/// # Examples
///
/// ```
/// use swa_nsa::automaton::{AutomatonBuilder, Edge};
/// use swa_nsa::expr::CmpOp;
/// use swa_nsa::guard::{ClockAtom, Guard, Invariant};
/// use swa_nsa::network::NetworkBuilder;
/// use swa_nsa::sim::Simulator;
/// use swa_nsa::update::Update;
///
/// // A clock that ticks every 10 time units.
/// let mut nb = NetworkBuilder::new();
/// let c = nb.clock("c");
/// let mut a = AutomatonBuilder::new("ticker");
/// let l0 = a.location_with_invariant("wait", Invariant::upper_bound(c, 10));
/// a.edge(
///     Edge::new(l0, l0)
///         .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 10)))
///         .with_update(Update::ResetClock(c))
///         .with_label("tick"),
/// );
/// nb.automaton(a.finish(l0));
/// let network = nb.build()?;
///
/// let outcome = Simulator::new(&network).horizon(95).run()?;
/// assert_eq!(outcome.trace.len(), 9); // ticks at 10, 20, …, 90
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'n> {
    network: &'n Network,
    horizon: i64,
    max_steps_per_instant: usize,
    tie_break: TieBreak,
    record_trace: bool,
    engine: EvalEngine,
}

impl<'n> Simulator<'n> {
    /// Creates a simulator with horizon 0 (set one with
    /// [`horizon`](Self::horizon)).
    #[must_use]
    pub fn new(network: &'n Network) -> Self {
        Self {
            network,
            horizon: 0,
            max_steps_per_instant: 1_000_000,
            tie_break: TieBreak::Canonical,
            record_trace: true,
            engine: EvalEngine::default(),
        }
    }

    /// Selects the guard/update evaluation engine (compiled bytecode by
    /// default; the AST walker is kept for differential testing).
    #[must_use]
    pub fn engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the time horizon (runs stop when model time reaches it).
    #[must_use]
    pub fn horizon(mut self, horizon: i64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the Zeno bound: the maximum number of action transitions allowed
    /// within one time instant.
    #[must_use]
    pub fn max_steps_per_instant(mut self, limit: usize) -> Self {
        self.max_steps_per_instant = limit;
        self
    }

    /// Sets the tie-break order used among simultaneously enabled
    /// transitions.
    #[must_use]
    pub fn tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Disables trace recording (events are still reported to the callback
    /// in [`run_with`](Self::run_with)); useful for pure timing benchmarks.
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.record_trace = false;
        self
    }

    /// Runs from the network's initial state.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on Zeno behaviour, time locks, committed
    /// deadlocks, domain violations or evaluation failures.
    pub fn run(&self) -> Result<SimOutcome, SimError> {
        self.run_with(|_, _| {})
    }

    /// Runs from the network's initial state, invoking `on_event` after
    /// every fired transition with the event and the post-state.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_with(
        &self,
        on_event: impl FnMut(&SyncEvent, &State),
    ) -> Result<SimOutcome, SimError> {
        self.run_from_with(State::initial(self.network), on_event)
    }

    /// Runs from an explicit starting state.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_from(&self, state: State) -> Result<SimOutcome, SimError> {
        self.run_from_with(state, |_, _| {})
    }

    /// Runs from an explicit starting state with an event callback.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_from_with(
        &self,
        state: State,
        on_event: impl FnMut(&SyncEvent, &State),
    ) -> Result<SimOutcome, SimError> {
        let mut state = state;
        let mut trace = NsaTrace::new();
        let (steps, stats, stop) = self.run_internal(&mut state, &mut trace, on_event)?;
        Ok(SimOutcome {
            trace,
            final_state: state,
            steps,
            stop,
            stats,
        })
    }

    /// Runs from the network's initial state; on failure, captures a
    /// structured forensic [`Diagnosis`] of the stuck state (see
    /// [`crate::diagnose`]).
    ///
    /// # Errors
    ///
    /// Returns an [`ExplainedError`] wrapping the [`SimError`]; for time
    /// locks, committed deadlocks and Zeno runs it carries a [`Diagnosis`].
    pub fn run_explained(&self) -> Result<SimOutcome, ExplainedError> {
        self.run_explained_from(State::initial(self.network))
    }

    /// Opens an incremental session starting from the network's initial
    /// state.
    ///
    /// A session runs in segments ([`SimSession::run_until`]) and can be
    /// snapshotted and restored between segments; segmented runs produce
    /// exactly the trace, final state and step count of one uninterrupted
    /// run, because the horizon is exclusive — events at time `k` always
    /// belong to the segment that *starts* at `k`, never to the one that
    /// ends there.
    #[must_use]
    pub fn session(&self) -> SimSession<'n> {
        SimSession {
            sim: self.clone(),
            state: State::initial(self.network),
            trace: NsaTrace::new(),
            steps: 0,
            stats: SimStats::default(),
            stop: None,
        }
    }

    /// Opens a session resuming from `snapshot` (taken earlier by
    /// [`SimSession::snapshot`], possibly in another process via
    /// [`Snapshot::to_bytes`]).
    ///
    /// The session's trace starts empty: it will hold only the events
    /// *after* the snapshot point. Callers that need the full trace keep
    /// the prefix alongside the snapshot (as the checkpoint store in
    /// `swa-core` does). The step counter and interpreter stats continue
    /// from the snapshot's values.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the snapshot does not fit this
    /// network's declarations.
    pub fn resume(&self, snapshot: &Snapshot) -> Result<SimSession<'n>, SnapshotError> {
        snapshot.validate(self.network)?;
        Ok(SimSession {
            sim: self.clone(),
            state: snapshot.state.clone(),
            trace: NsaTrace::new(),
            steps: snapshot.steps,
            stats: snapshot.stats,
            stop: None,
        })
    }

    /// As [`run_explained`](Self::run_explained), from an explicit state.
    ///
    /// # Errors
    ///
    /// As [`run_explained`](Self::run_explained).
    pub fn run_explained_from(&self, state: State) -> Result<SimOutcome, ExplainedError> {
        let mut state = state;
        let mut trace = NsaTrace::new();
        match self.run_internal(&mut state, &mut trace, |_, _| {}) {
            Ok((steps, stats, stop)) => Ok(SimOutcome {
                trace,
                final_state: state,
                steps,
                stop,
                stats,
            }),
            Err(error) => {
                let diagnosis =
                    Diagnosis::capture(self.network, &state, &trace, &error, self.engine)
                        .map(Box::new);
                Err(ExplainedError { error, diagnosis })
            }
        }
    }

    /// Dispatches to the accelerated or generic loop. The caller owns the
    /// state and trace, so on error they still describe the stuck
    /// configuration and the events leading up to it — that is what
    /// [`Diagnosis::capture`] reads.
    fn run_internal(
        &self,
        state: &mut State,
        trace: &mut NsaTrace,
        on_event: impl FnMut(&SyncEvent, &State),
    ) -> Result<(u64, SimStats, StopReason), SimError> {
        if self.tie_break == TieBreak::Canonical {
            let cache = crate::fastsim::FastCache::new(self.network);
            if cache.eligible() {
                return self.run_fast(state, trace, &cache, on_event);
            }
        }
        self.run_generic(state, trace, on_event)
    }

    /// The accelerated interpretation loop (see [`crate::fastsim`]).
    fn run_fast(
        &self,
        state: &mut State,
        trace: &mut NsaTrace,
        cache: &crate::fastsim::FastCache,
        mut on_event: impl FnMut(&SyncEvent, &State),
    ) -> Result<(u64, SimStats, StopReason), SimError> {
        let mut run = crate::fastsim::FastRun::new(self.network, cache, state, self.engine)?;
        let mut steps: u64 = 0;
        let mut steps_this_instant: usize = 0;

        loop {
            if state.time >= self.horizon {
                return Ok((steps, run.stats(), StopReason::HorizonReached));
            }

            if let Some(transition) = run.first_enabled(state)? {
                steps_this_instant += 1;
                if steps_this_instant > self.max_steps_per_instant {
                    return Err(SimError::ZenoViolation {
                        time: state.time,
                        limit: self.max_steps_per_instant,
                    });
                }
                run.apply(state, &transition)?;
                steps += 1;
                let event = SyncEvent {
                    time: state.time,
                    transition,
                };
                on_event(&event, state);
                if self.record_trace {
                    trace.push(event);
                }
                continue;
            }

            if run.any_committed() {
                return Err(SimError::CommittedDeadlock {
                    automaton: run.committed_automaton(state),
                    time: state.time,
                });
            }

            let (next_abs, expiry_abs, bounder) = run.delay_targets(state)?;
            let target = if next_abs <= expiry_abs {
                if next_abs == i64::MAX {
                    // Nothing will ever fire and no invariant binds:
                    // quiescent to the horizon.
                    let final_time = self.horizon;
                    state.advance(final_time - state.time);
                    return Ok((steps, run.stats(), StopReason::Quiescent));
                }
                next_abs
            } else if expiry_abs >= self.horizon {
                self.horizon
            } else {
                return Err(SimError::TimeLock {
                    time: state.time,
                    automaton: bounder
                        .or_else(|| run.earliest_bounded_automaton())
                        .unwrap_or_else(|| first_bounded_automaton(self.network, state)),
                });
            };
            let target = target.min(self.horizon);
            let delay = target - state.time;
            run.advance(state, delay);
            steps_this_instant = 0;
            if target >= self.horizon {
                return Ok((steps, run.stats(), StopReason::HorizonReached));
            }
        }
    }

    /// The generic interpretation loop (any tie-break, any network).
    fn run_generic(
        &self,
        state: &mut State,
        trace: &mut NsaTrace,
        mut on_event: impl FnMut(&SyncEvent, &State),
    ) -> Result<(u64, SimStats, StopReason), SimError> {
        let network = self.network;
        let mut steps: u64 = 0;
        let mut steps_this_instant: usize = 0;

        loop {
            if state.time >= self.horizon {
                return Ok((steps, SimStats::default(), StopReason::HorizonReached));
            }

            let candidates = enabled_transitions_with(network, state, self.engine)?;
            if !candidates.is_empty() {
                steps_this_instant += 1;
                if steps_this_instant > self.max_steps_per_instant {
                    return Err(SimError::ZenoViolation {
                        time: state.time,
                        limit: self.max_steps_per_instant,
                    });
                }
                let transition = self.tie_break.choose(&candidates).clone();
                apply_with(network, state, &transition, self.engine)?;
                steps += 1;
                let event = SyncEvent {
                    time: state.time,
                    transition,
                };
                on_event(&event, state);
                if self.record_trace {
                    trace.push(event);
                }
                continue;
            }

            // No action enabled: the network must delay.
            if any_committed(network, state) {
                let automaton = committed_automaton(network, state);
                return Err(SimError::CommittedDeadlock {
                    automaton,
                    time: state.time,
                });
            }

            let bounds = delay_bounds_with(network, state, self.engine)?;
            let remaining = self.horizon - state.time;
            let max_delay = bounds.max_delay;
            if let Some(d) = max_delay {
                if d < 0 {
                    // A stopped clock violates an invariant that can never
                    // recover: the state is stuck.
                    return Err(SimError::TimeLock {
                        time: state.time,
                        automaton: first_bounded_automaton(network, state),
                    });
                }
            }

            let delay = match bounds.next_enabling {
                Some(d) if max_delay.is_none_or(|m| d <= m) => d.min(remaining),
                _ => {
                    // Nothing will ever be enabled (within the invariant
                    // bound). If invariants allow waiting to the horizon,
                    // the network is quiescent; otherwise time is locked.
                    match max_delay {
                        None => remaining,
                        Some(m) if m >= remaining => remaining,
                        Some(_) => {
                            return Err(SimError::TimeLock {
                                time: state.time,
                                automaton: first_bounded_automaton(network, state),
                            });
                        }
                    }
                }
            };

            state.advance(delay);
            steps_this_instant = 0;
            if delay >= remaining {
                let stop = if bounds.next_enabling.is_none() && max_delay.is_none() {
                    StopReason::Quiescent
                } else {
                    StopReason::HorizonReached
                };
                return Ok((steps, SimStats::default(), stop));
            }
        }
    }
}

/// An incremental simulation run: the caller owns the state and trace and
/// advances the run in segments, snapshotting and restoring between them.
///
/// Invariants that make segmented runs equivalent to uninterrupted ones:
///
/// * the horizon is exclusive, so no time instant's events are ever split
///   across two segments (events at time `k` fire in the segment that
///   starts at `k`);
/// * the accelerated loop's event wheel is rebuilt from the [`State`] at
///   the start of every segment, so no wheel state needs to survive a
///   snapshot;
/// * the per-instant Zeno counter is zero at every segment boundary
///   (advancing time resets it, and a segment boundary always follows a
///   time advance or precedes the first instant).
///
/// # Examples
///
/// ```
/// use swa_nsa::automaton::{AutomatonBuilder, Edge};
/// use swa_nsa::expr::CmpOp;
/// use swa_nsa::guard::{ClockAtom, Guard, Invariant};
/// use swa_nsa::network::NetworkBuilder;
/// use swa_nsa::sim::Simulator;
/// use swa_nsa::update::Update;
///
/// let mut nb = NetworkBuilder::new();
/// let c = nb.clock("c");
/// let mut a = AutomatonBuilder::new("ticker");
/// let l0 = a.location_with_invariant("wait", Invariant::upper_bound(c, 10));
/// a.edge(
///     Edge::new(l0, l0)
///         .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 10)))
///         .with_update(Update::ResetClock(c)),
/// );
/// nb.automaton(a.finish(l0));
/// let network = nb.build()?;
///
/// let sim = Simulator::new(&network);
/// let mut session = sim.session();
/// session.run_until(45)?;             // ticks at 10, 20, 30, 40
/// let snapshot = session.snapshot();
/// session.run_until(95)?;             // … 50 through 90
/// assert_eq!(session.trace().len(), 9);
///
/// // Resume the snapshot: only the suffix is re-simulated.
/// let mut resumed = sim.resume(&snapshot)?;
/// resumed.run_until(95)?;
/// assert_eq!(resumed.trace().len(), 5);
/// assert_eq!(resumed.state(), session.state());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimSession<'n> {
    sim: Simulator<'n>,
    state: State,
    trace: NsaTrace,
    steps: u64,
    stats: SimStats,
    stop: Option<StopReason>,
}

impl<'n> SimSession<'n> {
    /// Runs until model time reaches `horizon` (exclusive for events) or
    /// the network goes quiescent. May be called repeatedly with
    /// nondecreasing horizons; a horizon at or before the current time
    /// returns immediately with [`StopReason::HorizonReached`].
    ///
    /// # Errors
    ///
    /// As [`Simulator::run`]. On error the session's state and trace
    /// describe the stuck configuration, as with the one-shot entry
    /// points.
    pub fn run_until(&mut self, horizon: i64) -> Result<StopReason, SimError> {
        self.run_until_with(horizon, |_, _| {})
    }

    /// As [`run_until`](Self::run_until), invoking `on_event` after every
    /// fired transition with the event and the post-state.
    ///
    /// # Errors
    ///
    /// As [`run_until`](Self::run_until).
    pub fn run_until_with(
        &mut self,
        horizon: i64,
        on_event: impl FnMut(&SyncEvent, &State),
    ) -> Result<StopReason, SimError> {
        self.sim.horizon = horizon;
        let (steps, stats, stop) =
            self.sim
                .run_internal(&mut self.state, &mut self.trace, on_event)?;
        self.steps += steps;
        self.stats.wheel_wakeups += stats.wheel_wakeups;
        self.stop = Some(stop);
        Ok(stop)
    }

    /// Captures a snapshot of the current session state. Call between
    /// segments (after [`run_until`](Self::run_until) returned `Ok`);
    /// resuming it reproduces the rest of the run exactly.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            state: self.state.clone(),
            steps: self.steps,
            stats: self.stats,
            trace_len: self.trace.len() as u64,
        }
    }

    /// Rewinds (or fast-forwards) the session to `snapshot`.
    ///
    /// The session's trace is cleared: after a restore it holds only the
    /// events fired since the restore point. The step counter and stats
    /// continue from the snapshot's values, so a restored run's totals
    /// match an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the snapshot does not fit the
    /// session's network.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), SnapshotError> {
        snapshot.validate(self.sim.network)?;
        self.state = snapshot.state.clone();
        self.steps = snapshot.steps;
        self.stats = snapshot.stats;
        self.trace = NsaTrace::new();
        self.stop = None;
        Ok(())
    }

    /// The current network state.
    #[must_use]
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Current model time.
    #[must_use]
    pub fn time(&self) -> i64 {
        self.state.time
    }

    /// The events recorded since the session started (or since the last
    /// [`restore`](Self::restore)).
    #[must_use]
    pub fn trace(&self) -> &NsaTrace {
        &self.trace
    }

    /// Total action transitions taken, including those before a resumed
    /// snapshot.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Why the most recent segment ended, if any segment has run.
    #[must_use]
    pub fn stop(&self) -> Option<StopReason> {
        self.stop
    }

    /// Consumes the session into a [`SimOutcome`].
    ///
    /// The outcome's trace covers the events since the session started (or
    /// since the last restore); its steps and stats are run totals. A
    /// session that never ran reports [`StopReason::HorizonReached`].
    #[must_use]
    pub fn into_outcome(self) -> SimOutcome {
        SimOutcome {
            trace: self.trace,
            final_state: self.state,
            steps: self.steps,
            stop: self.stop.unwrap_or(StopReason::HorizonReached),
            stats: self.stats,
        }
    }
}

fn committed_automaton(network: &Network, state: &State) -> AutomatonId {
    for (i, a) in network.automata().iter().enumerate() {
        let aid = AutomatonId::from_raw(u32::try_from(i).expect("automaton count fits u32"));
        if a.location(state.location_of(aid)).committed {
            return aid;
        }
    }
    AutomatonId::from_raw(0)
}

fn first_bounded_automaton(network: &Network, state: &State) -> AutomatonId {
    use crate::state::EnvView;
    let view = EnvView { network, state };
    for (i, a) in network.automata().iter().enumerate() {
        let aid = AutomatonId::from_raw(u32::try_from(i).expect("automaton count fits u32"));
        let inv = &a.location(state.location_of(aid)).invariant;
        if let Ok(Some(_)) = inv.max_delay(&view, &view) {
            return aid;
        }
    }
    AutomatonId::from_raw(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge, Sync};
    use crate::expr::{CmpOp, IntExpr};
    use crate::guard::{ClockAtom, Guard, Invariant};
    use crate::network::NetworkBuilder;
    use crate::update::Update;

    /// A periodic ticker with period `p` built around one clock.
    fn ticker(nb: &mut NetworkBuilder, name: &str, p: i64) {
        let c = nb.clock(format!("{name}_clk"));
        let mut a = AutomatonBuilder::new(name);
        let l0 = a.location_with_invariant("wait", Invariant::upper_bound(c, p));
        a.edge(
            Edge::new(l0, l0)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, p)))
                .with_update(Update::ResetClock(c))
                .with_label("tick"),
        );
        nb.automaton(a.finish(l0));
    }

    #[test]
    fn single_ticker_fires_at_exact_times() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "t", 10);
        let n = nb.build().unwrap();
        let out = Simulator::new(&n).horizon(35).run().unwrap();
        let times: Vec<i64> = out.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(out.stop, StopReason::HorizonReached);
        assert_eq!(out.final_state.time, 35);
    }

    #[test]
    fn two_tickers_interleave_deterministically() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "a", 4);
        ticker(&mut nb, "b", 6);
        let n = nb.build().unwrap();
        let out = Simulator::new(&n).horizon(13).run().unwrap();
        let times: Vec<i64> = out.trace.iter().map(|e| e.time).collect();
        // a at 4, 8, 12; b at 6, 12.
        assert_eq!(times, vec![4, 6, 8, 12, 12]);
        // At t = 12 the canonical order fires automaton 0 (a) first.
        assert_eq!(
            out.trace.events()[3].transition.initiator(),
            AutomatonId::from_raw(0)
        );
    }

    #[test]
    fn reversed_tie_break_swaps_simultaneous_events() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "a", 5);
        ticker(&mut nb, "b", 5);
        let n = nb.build().unwrap();
        let out = Simulator::new(&n)
            .horizon(6)
            .tie_break(TieBreak::Reversed)
            .run()
            .unwrap();
        assert_eq!(
            out.trace.events()[0].transition.initiator(),
            AutomatonId::from_raw(1)
        );
    }

    #[test]
    fn permuted_tie_break_follows_permutation() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "a", 5);
        ticker(&mut nb, "b", 5);
        ticker(&mut nb, "c", 5);
        let n = nb.build().unwrap();
        // Permutation c < a < b.
        let out = Simulator::new(&n)
            .horizon(6)
            .tie_break(TieBreak::Permuted(vec![1, 2, 0]))
            .run()
            .unwrap();
        let order: Vec<u32> = out
            .trace
            .iter()
            .map(|e| e.transition.initiator().raw())
            .collect();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn permuted_tie_break_cannot_override_committed_priority() {
        // While any automaton sits in a committed location, only committed
        // initiators may fire — the tie-break permutes within that filtered
        // candidate set, never around it.
        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("committed");
        let c0 = a.committed_location("c0");
        let c1 = a.location("c1");
        a.edge(Edge::new(c0, c1));
        nb.automaton(a.finish(c0));

        let mut a = AutomatonBuilder::new("free");
        let f0 = a.location("f0");
        let f1 = a.location("f1");
        a.edge(Edge::new(f0, f1));
        nb.automaton(a.finish(f0));

        let n = nb.build().unwrap();
        // Permutation prefers the free automaton (1) over the committed (0).
        let out = Simulator::new(&n)
            .horizon(1)
            .tie_break(TieBreak::Permuted(vec![1, 0]))
            .run()
            .unwrap();
        let order: Vec<u32> = out
            .trace
            .iter()
            .map(|e| e.transition.initiator().raw())
            .collect();
        assert_eq!(order, vec![0, 1], "committed automaton must fire first");
    }

    #[test]
    fn quiescent_network_jumps_to_horizon() {
        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("idle");
        let l0 = a.location("l0");
        // An edge that can never fire (guard false).
        let l1 = a.location("l1");
        a.edge(Edge::new(l0, l1).with_guard(Guard::when(crate::expr::Pred::ff())));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let out = Simulator::new(&n).horizon(1000).run().unwrap();
        assert_eq!(out.trace.len(), 0);
        assert_eq!(out.stop, StopReason::Quiescent);
        assert_eq!(out.final_state.time, 1000);
    }

    #[test]
    fn zeno_loop_is_detected() {
        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("spin");
        let l0 = a.location("l0");
        a.edge(Edge::new(l0, l0));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let err = Simulator::new(&n)
            .horizon(10)
            .max_steps_per_instant(100)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::ZenoViolation { .. }));
    }

    #[test]
    fn time_lock_is_detected() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("stuck");
        // Invariant forces action by t=5, but the only edge needs t>=10.
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                10,
            ))),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let err = Simulator::new(&n).horizon(100).run().unwrap_err();
        assert!(matches!(err, SimError::TimeLock { .. }));
    }

    #[test]
    fn horizon_cuts_before_invariant_lock() {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("late");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 50));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                100,
            ))),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        // Horizon 20 < invariant bound 50: the run ends normally.
        let out = Simulator::new(&n).horizon(20).run().unwrap();
        assert_eq!(out.final_state.time, 20);
    }

    #[test]
    fn committed_deadlock_is_detected() {
        let mut nb = NetworkBuilder::new();
        let ch = nb.binary_channel("never");
        let mut a = AutomatonBuilder::new("stuck");
        let l0 = a.committed_location("l0");
        let l1 = a.location("l1");
        // Send with no receiver: never enabled.
        a.edge(Edge::new(l0, l1).with_sync(Sync::Send(ch)));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let err = Simulator::new(&n).horizon(10).run().unwrap_err();
        assert!(matches!(err, SimError::CommittedDeadlock { .. }));
    }

    #[test]
    fn committed_location_preempts_time_passage() {
        // Automaton A: committed chain l0 -> l1 -> l2 with var updates.
        // Automaton B: ticker that would fire at t=0 only via clock >= 0.
        let mut nb = NetworkBuilder::new();
        let v = nb.var("x", 0, 0, 10);
        let mut a = AutomatonBuilder::new("chain");
        let l0 = a.committed_location("l0");
        let l1 = a.committed_location("l1");
        let l2 = a.location("l2");
        a.edge(Edge::new(l0, l1).with_update(Update::set(v, 1)));
        a.edge(Edge::new(l1, l2).with_update(Update::set(v, 2)));
        nb.automaton(a.finish(l0));
        ticker(&mut nb, "t", 7);
        let n = nb.build().unwrap();
        let out = Simulator::new(&n).horizon(8).run().unwrap();
        // First two events happen at t=0 (the committed chain), then tick.
        let times: Vec<i64> = out.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 0, 7]);
        assert_eq!(out.final_state.vars[0], 2);
    }

    #[test]
    fn run_with_callback_sees_every_event() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "t", 3);
        let n = nb.build().unwrap();
        let mut seen = Vec::new();
        let out = Simulator::new(&n)
            .horizon(10)
            .run_with(|e, s| seen.push((e.time, s.time)))
            .unwrap();
        assert_eq!(seen, vec![(3, 3), (6, 6), (9, 9)]);
        assert_eq!(out.trace.len(), 3);
    }

    #[test]
    fn without_trace_still_counts_steps() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "t", 2);
        let n = nb.build().unwrap();
        let out = Simulator::new(&n)
            .horizon(10)
            .without_trace()
            .run()
            .unwrap();
        assert_eq!(out.trace.len(), 0);
        // The horizon is exclusive: ticks at 2, 4, 6, 8 (not 10).
        assert_eq!(out.steps, 4);
    }

    #[test]
    fn variable_guard_changes_enabling_after_sync() {
        // A sets flag at t=5; B's edge guarded by flag fires immediately
        // after (same instant).
        let mut nb = NetworkBuilder::new();
        let flag = nb.flag("flag", false);
        let c = nb.clock("c");
        let mut a = AutomatonBuilder::new("setter");
        let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 5)))
                .with_update(Update::set(flag, 1)),
        );
        nb.automaton(a.finish(l0));

        let mut b = AutomatonBuilder::new("watcher");
        let m0 = b.location("m0");
        let m1 = b.location("m1");
        b.edge(Edge::new(m0, m1).with_guard(Guard::when(IntExpr::var(flag).eq(1))));
        nb.automaton(b.finish(m0));

        let n = nb.build().unwrap();
        let out = Simulator::new(&n).horizon(10).run().unwrap();
        let times: Vec<i64> = out.trace.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![5, 5]);
    }

    #[test]
    fn session_segments_match_one_shot_run() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "a", 4);
        ticker(&mut nb, "b", 6);
        let n = nb.build().unwrap();
        let sim = Simulator::new(&n).horizon(50);
        let cold = sim.run().unwrap();

        // Segment at every possible boundary, including event instants.
        for k in 0..50 {
            let mut session = sim.session();
            session.run_until(k).unwrap();
            session.run_until(50).unwrap();
            let warm = session.into_outcome();
            assert_eq!(warm, cold, "segment boundary k={k}");
        }
    }

    #[test]
    fn session_snapshot_resume_reproduces_the_suffix() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "a", 4);
        ticker(&mut nb, "b", 6);
        let n = nb.build().unwrap();
        let sim = Simulator::new(&n);
        let cold = sim.clone().horizon(40).run().unwrap();

        let mut session = sim.session();
        session.run_until(12).unwrap();
        let snap = session.snapshot();
        assert_eq!(snap.time(), 12);

        let mut resumed = sim.resume(&snap).unwrap();
        resumed.run_until(40).unwrap();
        let warm = resumed.into_outcome();
        assert_eq!(warm.final_state, cold.final_state);
        assert_eq!(warm.steps, cold.steps);
        assert_eq!(warm.stop, cold.stop);
        // Suffix trace: prefix events live with the first session.
        let mut stitched: Vec<&SyncEvent> = session.trace().events().iter().collect();
        stitched.extend(warm.trace.events());
        let cold_events: Vec<&SyncEvent> = cold.trace.events().iter().collect();
        assert_eq!(stitched, cold_events);
    }

    #[test]
    fn session_restore_rewinds_and_replays() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "t", 5);
        let n = nb.build().unwrap();
        let sim = Simulator::new(&n);
        let mut session = sim.session();
        session.run_until(11).unwrap();
        let snap = session.snapshot();
        session.run_until(31).unwrap();
        let first: Vec<i64> = session.trace().iter().map(|e| e.time).collect();
        assert_eq!(first, vec![5, 10, 15, 20, 25, 30]);

        session.restore(&snap).unwrap();
        assert_eq!(session.time(), 11);
        session.run_until(31).unwrap();
        // After a restore the trace holds only the replayed suffix.
        let replay: Vec<i64> = session.trace().iter().map(|e| e.time).collect();
        assert_eq!(replay, vec![15, 20, 25, 30]);
        assert_eq!(session.steps(), 6);
    }

    #[test]
    fn session_reports_quiescence_on_resume() {
        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("idle");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.edge(Edge::new(l0, l1).with_guard(Guard::when(crate::expr::Pred::ff())));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let sim = Simulator::new(&n);
        let mut session = sim.session();
        assert_eq!(session.run_until(10).unwrap(), StopReason::Quiescent);
        let snap = session.snapshot();
        let mut resumed = sim.resume(&snap).unwrap();
        assert_eq!(resumed.run_until(100).unwrap(), StopReason::Quiescent);
        assert_eq!(resumed.time(), 100);
    }

    #[test]
    fn resume_rejects_foreign_snapshots() {
        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "t", 5);
        let n = nb.build().unwrap();
        let snap = Simulator::new(&n).session().snapshot();

        let mut nb = NetworkBuilder::new();
        ticker(&mut nb, "a", 5);
        ticker(&mut nb, "b", 7);
        let other = nb.build().unwrap();
        assert!(Simulator::new(&other).resume(&snap).is_err());
    }

    #[test]
    fn stopped_clock_does_not_trigger_guard() {
        let mut nb = NetworkBuilder::new();
        let c = nb.stopped_clock("c");
        let mut a = AutomatonBuilder::new("frozen");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.edge(
            Edge::new(l0, l1).with_guard(Guard::always().and_clock(ClockAtom::new(
                c,
                CmpOp::Ge,
                5,
            ))),
        );
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let out = Simulator::new(&n).horizon(100).run().unwrap();
        // The stopped clock never reaches 5.
        assert!(out.trace.is_empty());
        assert_eq!(out.stop, StopReason::Quiescent);
    }
}
