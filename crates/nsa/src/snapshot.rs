//! Versioned snapshots of simulator state for checkpointing and
//! warm-start.
//!
//! A [`Snapshot`] captures everything a [`crate::sim::SimSession`] needs to
//! resume a run: the full concrete [`State`] (locations, clock valuations
//! including the frozen/running flags, variable store, model time), the
//! action-transition counter, the interpreter stats, and the trace cursor
//! (how many events preceded the snapshot). The event wheel of the
//! accelerated loop is *derived* state — [`crate::fastsim::FastRun`]
//! rebuilds it from the [`State`] on resume — so it is deliberately not
//! serialized; this is what makes snapshots engine-independent.
//!
//! The byte encoding ([`Snapshot::to_bytes`]) is versioned, little-endian
//! and length-prefixed, in the same style as `swa-core`'s canonical
//! configuration encoding. Identical simulator states produce identical
//! bytes under both the AST and bytecode engines.

use crate::error::SnapshotError;
use crate::ids::LocationId;
use crate::network::Network;
use crate::sim::SimStats;
use crate::state::{ClockVal, State};

/// Version tag written at the head of every serialized snapshot. Bump on
/// any change to the byte layout; old snapshots are then rejected with
/// [`SnapshotError::UnsupportedVersion`] instead of being misread.
pub const SNAPSHOT_VERSION: u8 = 1;

/// A resumable snapshot of one simulation run.
///
/// Taken with [`crate::sim::SimSession::snapshot`] and resumed with
/// [`crate::sim::Simulator::resume`] or
/// [`crate::sim::SimSession::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The full concrete network state at the snapshot instant.
    pub state: State,
    /// Action transitions taken up to the snapshot instant.
    pub steps: u64,
    /// Interpreter counters accumulated up to the snapshot instant.
    pub stats: SimStats,
    /// Number of trace events recorded before the snapshot (the trace
    /// cursor). The events themselves are owned by the session or the
    /// checkpoint store, not the snapshot.
    pub trace_len: u64,
}

impl Snapshot {
    /// The model time at which the snapshot was taken.
    #[must_use]
    pub fn time(&self) -> i64 {
        self.state.time
    }

    /// Serializes the snapshot to the versioned byte format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.state.locations.len() * 4
                + self.state.clocks_len() * 9
                + self.state.vars.len() * 8,
        );
        out.push(SNAPSHOT_VERSION);
        out.extend_from_slice(&self.steps.to_le_bytes());
        out.extend_from_slice(&self.stats.wheel_wakeups.to_le_bytes());
        out.extend_from_slice(&self.trace_len.to_le_bytes());
        out.extend_from_slice(&self.state.time.to_le_bytes());
        out.extend_from_slice(&(self.state.locations.len() as u64).to_le_bytes());
        for l in &self.state.locations {
            out.extend_from_slice(&l.raw().to_le_bytes());
        }
        out.extend_from_slice(&(self.state.clocks_len() as u64).to_le_bytes());
        for c in self.state.iter_clocks() {
            out.extend_from_slice(&c.value.to_le_bytes());
            out.push(u8::from(c.running));
        }
        out.extend_from_slice(&(self.state.vars.len() as u64).to_le_bytes());
        for v in &self.state.vars {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes a snapshot from its byte format.
    ///
    /// Decoding checks only the framing; call [`validate`](Self::validate)
    /// against the target network before resuming.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnsupportedVersion`], [`SnapshotError::Truncated`]
    /// or [`SnapshotError::TrailingBytes`] on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader { bytes, at: 0 };
        let version = r.u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let steps = r.u64()?;
        let wheel_wakeups = r.u64()?;
        let trace_len = r.u64()?;
        let time = r.i64()?;
        let n_locations = r.len()?;
        let mut locations = Vec::with_capacity(n_locations);
        for _ in 0..n_locations {
            locations.push(LocationId::from_raw(r.u32()?));
        }
        let n_clocks = r.len()?;
        let mut clocks = Vec::with_capacity(n_clocks);
        for _ in 0..n_clocks {
            let value = r.i64()?;
            let running = r.u8()? != 0;
            clocks.push(ClockVal { value, running });
        }
        let n_vars = r.len()?;
        let mut vars = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            vars.push(r.i64()?);
        }
        if r.at != bytes.len() {
            return Err(SnapshotError::TrailingBytes {
                extra: bytes.len() - r.at,
            });
        }
        Ok(Self {
            state: State::from_parts(locations, clocks, vars, time),
            steps,
            stats: SimStats { wheel_wakeups },
            trace_len,
        })
    }

    /// Checks that the snapshot shape matches `network`'s declarations:
    /// one location per automaton (each in range), one valuation per clock
    /// and per flattened variable cell.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::NetworkMismatch`] or
    /// [`SnapshotError::LocationOutOfRange`] when the snapshot was taken of
    /// a structurally different network.
    pub fn validate(&self, network: &Network) -> Result<(), SnapshotError> {
        let automata = network.automata();
        if self.state.locations.len() != automata.len() {
            return Err(SnapshotError::NetworkMismatch {
                field: "locations",
                expected: automata.len(),
                found: self.state.locations.len(),
            });
        }
        for (i, (automaton, location)) in
            automata.iter().zip(&self.state.locations).enumerate()
        {
            if location.index() >= automaton.locations.len() {
                return Err(SnapshotError::LocationOutOfRange {
                    automaton: crate::ids::AutomatonId::from_raw(
                        u32::try_from(i).expect("automaton count fits u32"),
                    ),
                    location: *location,
                });
            }
        }
        if self.state.clocks_len() != network.clocks().len() {
            return Err(SnapshotError::NetworkMismatch {
                field: "clocks",
                expected: network.clocks().len(),
                found: self.state.clocks_len(),
            });
        }
        let cells =
            network.vars().len() + network.arrays().iter().map(|a| a.init.len()).sum::<usize>();
        if self.state.vars.len() != cells {
            return Err(SnapshotError::NetworkMismatch {
                field: "variables",
                expected: cells,
                found: self.state.vars.len(),
            });
        }
        Ok(())
    }

    /// Approximate heap footprint of the snapshot, for byte-budgeted
    /// stores.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.state.locations.len() * std::mem::size_of::<LocationId>()
            + self.state.clocks_len() * std::mem::size_of::<ClockVal>()
            + self.state.vars.len() * 8
    }
}

/// Little-endian cursor over a snapshot byte stream.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn len(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::expr::CmpOp;
    use crate::guard::{ClockAtom, Guard, Invariant};
    use crate::network::NetworkBuilder;
    use crate::sim::Simulator;
    use crate::update::Update;

    fn ticker_network() -> Network {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("c");
        nb.stopped_clock("frozen");
        nb.var("x", 3, 0, 100);
        nb.array("arr", vec![7, 8], 0, 100);
        let mut a = AutomatonBuilder::new("ticker");
        let l0 = a.location_with_invariant("wait", Invariant::upper_bound(c, 10));
        a.edge(
            Edge::new(l0, l0)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 10)))
                .with_update(Update::ResetClock(c))
                .with_label("tick"),
        );
        nb.automaton(a.finish(l0));
        nb.build().unwrap()
    }

    fn sample_snapshot(network: &Network) -> Snapshot {
        let mut session = Simulator::new(network).horizon(100).session();
        session.run_until(35).unwrap();
        session.snapshot()
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let n = ticker_network();
        let snap = sample_snapshot(&n);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes);
        back.validate(&n).unwrap();
    }

    #[test]
    fn serialization_is_deterministic_and_engine_independent() {
        use crate::bytecode::EvalEngine;
        let n = ticker_network();
        let mut bytes = Vec::new();
        for engine in [EvalEngine::Ast, EvalEngine::Bytecode] {
            let mut session = Simulator::new(&n).horizon(100).engine(engine).session();
            session.run_until(35).unwrap();
            bytes.push(session.snapshot().to_bytes());
        }
        assert_eq!(bytes[0], bytes[1]);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let n = ticker_network();
        let mut bytes = sample_snapshot(&n).to_bytes();
        bytes[0] = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let n = ticker_network();
        let bytes = sample_snapshot(&n).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes[..cut]),
                    Err(SnapshotError::Truncated | SnapshotError::UnsupportedVersion { .. })
                ),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut long = bytes;
        long.push(0);
        assert_eq!(
            Snapshot::from_bytes(&long),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn validate_rejects_other_networks() {
        let n = ticker_network();
        let snap = sample_snapshot(&n);

        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("other");
        let l0 = a.location("l0");
        a.edge(Edge::new(l0, l0));
        nb.automaton(a.finish(l0));
        let other = nb.build().unwrap();
        assert!(matches!(
            snap.validate(&other),
            Err(SnapshotError::NetworkMismatch { .. })
        ));

        let mut bad = snap;
        bad.state.locations[0] = LocationId::from_raw(99);
        assert!(matches!(
            bad.validate(&n),
            Err(SnapshotError::LocationOutOfRange { .. })
        ));
    }
}
