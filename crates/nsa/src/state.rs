//! Concrete states of a network and update application.
//!
//! A [`State`] is a tuple `⟨l̄, c̄, v̄⟩` as in the paper: a location per
//! automaton, a valuation of all clocks (value plus running flag) and a
//! valuation of all integer variables (scalars first, then array cells,
//! flattened in declaration order).

use std::hash::{Hash, Hasher};

use crate::error::{EvalError, SimError};
use crate::expr::VarEnv;
use crate::guard::ClockEnv;
use crate::ids::{ArrayId, AutomatonId, ClockId, LocationId, VarId};
use crate::network::Network;
use crate::update::{LValue, Update};

/// Valuation of one stopwatch clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockVal {
    /// Current value.
    pub value: i64,
    /// Whether the clock advances under delay transitions.
    pub running: bool,
}

/// A concrete state of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Current location of each automaton, indexed by [`AutomatonId`].
    pub locations: Vec<LocationId>,
    /// Clock valuations, indexed by [`ClockId`].
    pub clocks: Vec<ClockVal>,
    /// Flattened variable valuation: scalars, then array cells.
    pub vars: Vec<i64>,
    /// Model time: the value of the implicit never-stopped global clock.
    pub time: i64,
}

impl State {
    /// The initial state of a network: every automaton in its initial
    /// location, all clocks at zero, variables at their declared initial
    /// values, time zero.
    #[must_use]
    pub fn initial(network: &Network) -> Self {
        let locations = network.automata().iter().map(|a| a.initial).collect();
        let clocks = network
            .clocks()
            .iter()
            .map(|c| ClockVal {
                value: 0,
                running: c.starts_running,
            })
            .collect();
        let mut vars: Vec<i64> = network.vars().iter().map(|v| v.init).collect();
        for a in network.arrays() {
            vars.extend_from_slice(&a.init);
        }
        Self {
            locations,
            clocks,
            vars,
            time: 0,
        }
    }

    /// Current location of an automaton.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn location_of(&self, automaton: AutomatonId) -> LocationId {
        self.locations[automaton.index()]
    }

    /// Advances time by `d`: all running clocks increase by `d`.
    ///
    /// The caller is responsible for having checked invariants.
    pub fn advance(&mut self, d: i64) {
        debug_assert!(d >= 0, "negative delay {d}");
        for c in &mut self.clocks {
            if c.running {
                c.value += d;
            }
        }
        self.time += d;
    }

    /// Applies one update in the context of `network`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Eval`] if an expression fails to evaluate and
    /// [`SimError::DomainViolation`] if an assignment leaves the declared
    /// domain.
    pub fn apply_update(&mut self, network: &Network, update: &Update) -> Result<(), SimError> {
        match update {
            Update::Assign { target, value } => {
                let value = {
                    let view = EnvView {
                        network,
                        state: self,
                    };
                    value.eval(&view)?
                };
                match target {
                    LValue::Var(v) => {
                        let decl = &network.vars()[v.index()];
                        if value < decl.min || value > decl.max {
                            return Err(SimError::DomainViolation {
                                var: *v,
                                value,
                                domain: (decl.min, decl.max),
                            });
                        }
                        self.vars[v.index()] = value;
                    }
                    LValue::Elem(a, idx) => {
                        let index = {
                            let view = EnvView {
                                network,
                                state: self,
                            };
                            idx.eval(&view)?
                        };
                        let len = network.array_len(*a);
                        let Some(i) = usize::try_from(index).ok().filter(|i| *i < len) else {
                            return Err(SimError::Eval(EvalError::IndexOutOfBounds {
                                array: a.raw(),
                                index,
                                len,
                            }));
                        };
                        let decl = &network.arrays()[a.index()];
                        if value < decl.min || value > decl.max {
                            return Err(SimError::DomainViolation {
                                var: VarId::from_raw(u32::MAX),
                                value,
                                domain: (decl.min, decl.max),
                            });
                        }
                        let offset = network.array_offset(*a);
                        self.vars[offset + i] = value;
                    }
                }
            }
            Update::ResetClock(c) => self.clocks[c.index()].value = 0,
            Update::StopClock(c) => self.clocks[c.index()].running = false,
            Update::StartClock(c) => self.clocks[c.index()].running = true,
            Update::If {
                cond,
                then,
                otherwise,
            } => {
                let holds = {
                    let view = EnvView {
                        network,
                        state: self,
                    };
                    cond.eval(&view)?
                };
                let branch = if holds { then } else { otherwise };
                for u in branch {
                    self.apply_update(network, u)?;
                }
            }
        }
        Ok(())
    }

    /// Applies a sequence of updates in order.
    ///
    /// # Errors
    ///
    /// As [`State::apply_update`].
    pub fn apply_updates(&mut self, network: &Network, updates: &[Update]) -> Result<(), SimError> {
        for u in updates {
            self.apply_update(network, u)?;
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of the state, for visited-set hashing in
    /// the model checker.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Hash for State {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in &self.locations {
            l.hash(state);
        }
        for c in &self.clocks {
            c.hash(state);
        }
        self.vars.hash(state);
        self.time.hash(state);
    }
}

/// Borrowed view of a state in the context of its network, implementing the
/// evaluation environments.
#[derive(Debug, Clone, Copy)]
pub struct EnvView<'a> {
    /// The network providing declarations (array offsets, domains).
    pub network: &'a Network,
    /// The state providing valuations.
    pub state: &'a State,
}

impl VarEnv for EnvView<'_> {
    fn var(&self, var: VarId) -> i64 {
        self.state.vars[var.index()]
    }

    fn array_len(&self, array: ArrayId) -> usize {
        self.network.array_len(array)
    }

    fn elem(&self, array: ArrayId, index: i64) -> Result<i64, EvalError> {
        let len = self.network.array_len(array);
        let Some(i) = usize::try_from(index).ok().filter(|i| *i < len) else {
            return Err(EvalError::IndexOutOfBounds {
                array: array.raw(),
                index,
                len,
            });
        };
        Ok(self.state.vars[self.network.array_offset(array) + i])
    }
}

impl ClockEnv for EnvView<'_> {
    fn clock(&self, clock: ClockId) -> i64 {
        self.state.clocks[clock.index()].value
    }

    fn is_running(&self, clock: ClockId) -> bool {
        self.state.clocks[clock.index()].running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::expr::IntExpr;
    use crate::network::NetworkBuilder;

    fn network() -> Network {
        let mut nb = NetworkBuilder::new();
        nb.clock("run");
        nb.stopped_clock("stop");
        nb.var("x", 3, 0, 100);
        nb.array("arr", vec![10, 20, 30], 0, 100);
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0));
        nb.automaton(b.finish(l0));
        nb.build().unwrap()
    }

    #[test]
    fn initial_state_matches_declarations() {
        let n = network();
        let s = State::initial(&n);
        assert_eq!(s.time, 0);
        assert_eq!(s.vars, vec![3, 10, 20, 30]);
        assert!(s.clocks[0].running);
        assert!(!s.clocks[1].running);
        assert_eq!(
            s.location_of(AutomatonId::from_raw(0)),
            LocationId::from_raw(0)
        );
    }

    #[test]
    fn advance_moves_only_running_clocks() {
        let n = network();
        let mut s = State::initial(&n);
        s.advance(5);
        assert_eq!(s.time, 5);
        assert_eq!(s.clocks[0].value, 5);
        assert_eq!(s.clocks[1].value, 0);
    }

    #[test]
    fn stop_and_start_clock() {
        let n = network();
        let mut s = State::initial(&n);
        s.apply_update(&n, &Update::StopClock(ClockId::from_raw(0)))
            .unwrap();
        s.advance(5);
        assert_eq!(s.clocks[0].value, 0);
        s.apply_update(&n, &Update::StartClock(ClockId::from_raw(0)))
            .unwrap();
        s.advance(2);
        assert_eq!(s.clocks[0].value, 2);
        s.apply_update(&n, &Update::ResetClock(ClockId::from_raw(0)))
            .unwrap();
        assert_eq!(s.clocks[0].value, 0);
        // Resetting keeps the running flag.
        assert!(s.clocks[0].running);
    }

    #[test]
    fn assignment_respects_domain() {
        let n = network();
        let mut s = State::initial(&n);
        let v = VarId::from_raw(0);
        s.apply_update(&n, &Update::set(v, 42)).unwrap();
        assert_eq!(s.vars[0], 42);
        let err = s.apply_update(&n, &Update::set(v, 101)).unwrap_err();
        assert!(matches!(err, SimError::DomainViolation { .. }));
        // Failed assignment leaves state untouched.
        assert_eq!(s.vars[0], 42);
    }

    #[test]
    fn array_assignment() {
        let n = network();
        let mut s = State::initial(&n);
        let a = ArrayId::from_raw(0);
        s.apply_update(&n, &Update::set_elem(a, 1, 99)).unwrap();
        assert_eq!(s.vars, vec![3, 10, 99, 30]);
        let err = s.apply_update(&n, &Update::set_elem(a, 3, 1)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Eval(EvalError::IndexOutOfBounds { .. })
        ));
        let err = s
            .apply_update(&n, &Update::set_elem(a, 0, 101))
            .unwrap_err();
        assert!(matches!(err, SimError::DomainViolation { .. }));
    }

    #[test]
    fn conditional_update() {
        let n = network();
        let mut s = State::initial(&n);
        let v = VarId::from_raw(0);
        let u = Update::If {
            cond: IntExpr::var(v).gt(0),
            then: vec![Update::set(v, 1)],
            otherwise: vec![Update::set(v, 2)],
        };
        s.apply_update(&n, &u).unwrap();
        assert_eq!(s.vars[0], 1);
        s.apply_update(&n, &Update::set(v, 0)).unwrap();
        s.apply_update(&n, &u).unwrap();
        assert_eq!(s.vars[0], 2);
    }

    #[test]
    fn env_view_evaluates_expressions() {
        let n = network();
        let s = State::initial(&n);
        let view = EnvView {
            network: &n,
            state: &s,
        };
        let e = IntExpr::elem(ArrayId::from_raw(0), 2) + IntExpr::var(VarId::from_raw(0));
        assert_eq!(e.eval(&view).unwrap(), 33);
    }

    #[test]
    fn updates_see_earlier_updates() {
        let n = network();
        let mut s = State::initial(&n);
        let v = VarId::from_raw(0);
        s.apply_updates(
            &n,
            &[
                Update::set(v, 7),
                Update::set(v, IntExpr::var(v) + IntExpr::lit(1)),
            ],
        )
        .unwrap();
        assert_eq!(s.vars[0], 8);
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let n = network();
        let s1 = State::initial(&n);
        let mut s2 = State::initial(&n);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        s2.advance(1);
        assert_ne!(s1.fingerprint(), s2.fingerprint());
    }
}
