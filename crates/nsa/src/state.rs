//! Concrete states of a network and update application.
//!
//! A [`State`] is a tuple `⟨l̄, c̄, v̄⟩` as in the paper: a location per
//! automaton, a valuation of all clocks (value plus running flag) and a
//! valuation of all integer variables (scalars first, then array cells,
//! flattened in declaration order).
//!
//! # Data layout
//!
//! Clock valuations are stored struct-of-arrays: a contiguous
//! `Vec<i64>` of values plus a `Vec<u64>` *stopped* bitmask (bit `i` set
//! ⇔ clock `i` is frozen). Delay application is then a branchless masked
//! add over a flat slice — with a plain vectorizable add for every
//! 64-clock word whose stopped bits are all zero — and guard evaluation
//! reads cache-linear `i64`s instead of 16-byte `(value, flag)` pairs.
//! [`ClockVal`] remains the exchange type at the API boundary
//! (snapshots, diagnostics, tests).
//!
//! Invariant: bits of `stopped` at positions `>= clock count` are always
//! zero, so the derived equality/hashing over the raw words is exact.

use std::hash::{Hash, Hasher};

use crate::error::{EvalError, SimError};
use crate::expr::VarEnv;
use crate::guard::ClockEnv;
use crate::ids::{ArrayId, AutomatonId, ClockId, LocationId, VarId};
use crate::network::Network;
use crate::update::{LValue, Update};

/// Valuation of one stopwatch clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockVal {
    /// Current value.
    pub value: i64,
    /// Whether the clock advances under delay transitions.
    pub running: bool,
}

/// A concrete state of a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Current location of each automaton, indexed by [`AutomatonId`].
    pub locations: Vec<LocationId>,
    /// Clock values, indexed by [`ClockId`] (see the module docs for the
    /// struct-of-arrays layout).
    clock_values: Vec<i64>,
    /// Stopped bitmask: bit `i` set ⇔ clock `i` is frozen. Bits past the
    /// clock count are kept zero.
    stopped: Vec<u64>,
    /// Flattened variable valuation: scalars, then array cells.
    pub vars: Vec<i64>,
    /// Model time: the value of the implicit never-stopped global clock.
    pub time: i64,
}

#[inline]
fn word_bit(i: usize) -> (usize, u64) {
    (i >> 6, 1u64 << (i & 63))
}

impl State {
    /// The initial state of a network: every automaton in its initial
    /// location, all clocks at zero, variables at their declared initial
    /// values, time zero.
    #[must_use]
    pub fn initial(network: &Network) -> Self {
        let locations = network.automata().iter().map(|a| a.initial).collect();
        let n = network.clocks().len();
        let mut stopped = vec![0u64; n.div_ceil(64)];
        for (i, c) in network.clocks().iter().enumerate() {
            if !c.starts_running {
                let (w, b) = word_bit(i);
                stopped[w] |= b;
            }
        }
        let mut vars: Vec<i64> = network.vars().iter().map(|v| v.init).collect();
        for a in network.arrays() {
            vars.extend_from_slice(&a.init);
        }
        Self {
            locations,
            clock_values: vec![0; n],
            stopped,
            vars,
            time: 0,
        }
    }

    /// Builds a state from its parts, with clock valuations in the
    /// [`ClockVal`] exchange form (snapshot decoding, tests).
    #[must_use]
    pub fn from_parts(
        locations: Vec<LocationId>,
        clocks: Vec<ClockVal>,
        vars: Vec<i64>,
        time: i64,
    ) -> Self {
        let n = clocks.len();
        let mut clock_values = Vec::with_capacity(n);
        let mut stopped = vec![0u64; n.div_ceil(64)];
        for (i, c) in clocks.iter().enumerate() {
            clock_values.push(c.value);
            if !c.running {
                let (w, b) = word_bit(i);
                stopped[w] |= b;
            }
        }
        Self {
            locations,
            clock_values,
            stopped,
            vars,
            time,
        }
    }

    /// Current location of an automaton.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn location_of(&self, automaton: AutomatonId) -> LocationId {
        self.locations[automaton.index()]
    }

    /// Number of clocks.
    #[must_use]
    pub fn clocks_len(&self) -> usize {
        self.clock_values.len()
    }

    /// The flat clock-value slice (struct-of-arrays hot path).
    #[must_use]
    pub fn clock_values(&self) -> &[i64] {
        &self.clock_values
    }

    /// The stopped bitmask words (bit `i` set ⇔ clock `i` frozen).
    #[must_use]
    pub fn stopped_words(&self) -> &[u64] {
        &self.stopped
    }

    /// Current value of one clock.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn clock_value(&self, clock: ClockId) -> i64 {
        self.clock_values[clock.index()]
    }

    /// Whether one clock is running.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn clock_running(&self, clock: ClockId) -> bool {
        let (w, b) = word_bit(clock.index());
        debug_assert!(clock.index() < self.clock_values.len());
        self.stopped[w] & b == 0
    }

    /// One clock's valuation in exchange form.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn clock(&self, clock: ClockId) -> ClockVal {
        ClockVal {
            value: self.clock_value(clock),
            running: self.clock_running(clock),
        }
    }

    /// Iterates over all clock valuations in [`ClockId`] order.
    pub fn iter_clocks(&self) -> impl Iterator<Item = ClockVal> + '_ {
        self.clock_values.iter().enumerate().map(|(i, &value)| {
            let (w, b) = word_bit(i);
            ClockVal {
                value,
                running: self.stopped[w] & b == 0,
            }
        })
    }

    #[inline]
    pub(crate) fn reset_clock_at(&mut self, i: usize) {
        self.clock_values[i] = 0;
    }

    #[inline]
    pub(crate) fn stop_clock_at(&mut self, i: usize) {
        let (w, b) = word_bit(i);
        debug_assert!(i < self.clock_values.len());
        self.stopped[w] |= b;
    }

    #[inline]
    pub(crate) fn start_clock_at(&mut self, i: usize) {
        let (w, b) = word_bit(i);
        debug_assert!(i < self.clock_values.len());
        self.stopped[w] &= !b;
    }

    /// Advances time by `d`: all running clocks increase by `d`.
    ///
    /// The caller is responsible for having checked invariants. The loop
    /// is branchless per clock: a 64-clock word with no stopped bits takes
    /// the plain (vectorizable) add; mixed words use a masked add.
    pub fn advance(&mut self, d: i64) {
        debug_assert!(d >= 0, "negative delay {d}");
        for (chunk, &word) in self.clock_values.chunks_mut(64).zip(&self.stopped) {
            if word == 0 {
                for v in chunk {
                    *v += d;
                }
            } else {
                for (bit, v) in chunk.iter_mut().enumerate() {
                    let stopped = (word >> bit) & 1;
                    // stopped = 1 → mask 0 (frozen); stopped = 0 → mask -1.
                    #[allow(clippy::cast_possible_wrap)]
                    let mask = (stopped as i64).wrapping_sub(1);
                    *v += d & mask;
                }
            }
        }
        self.time += d;
    }

    /// Applies one update in the context of `network`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Eval`] if an expression fails to evaluate and
    /// [`SimError::DomainViolation`] if an assignment leaves the declared
    /// domain.
    pub fn apply_update(&mut self, network: &Network, update: &Update) -> Result<(), SimError> {
        match update {
            Update::Assign { target, value } => {
                let value = {
                    let view = EnvView {
                        network,
                        state: self,
                    };
                    value.eval(&view)?
                };
                match target {
                    LValue::Var(v) => {
                        let decl = &network.vars()[v.index()];
                        if value < decl.min || value > decl.max {
                            return Err(SimError::DomainViolation {
                                var: *v,
                                value,
                                domain: (decl.min, decl.max),
                            });
                        }
                        self.vars[v.index()] = value;
                    }
                    LValue::Elem(a, idx) => {
                        let index = {
                            let view = EnvView {
                                network,
                                state: self,
                            };
                            idx.eval(&view)?
                        };
                        let len = network.array_len(*a);
                        let Some(i) = usize::try_from(index).ok().filter(|i| *i < len) else {
                            return Err(SimError::Eval(EvalError::IndexOutOfBounds {
                                array: a.raw(),
                                index,
                                len,
                            }));
                        };
                        let decl = &network.arrays()[a.index()];
                        if value < decl.min || value > decl.max {
                            return Err(SimError::DomainViolation {
                                var: VarId::from_raw(u32::MAX),
                                value,
                                domain: (decl.min, decl.max),
                            });
                        }
                        let offset = network.array_offset(*a);
                        self.vars[offset + i] = value;
                    }
                }
            }
            Update::ResetClock(c) => self.reset_clock_at(c.index()),
            Update::StopClock(c) => self.stop_clock_at(c.index()),
            Update::StartClock(c) => self.start_clock_at(c.index()),
            Update::If {
                cond,
                then,
                otherwise,
            } => {
                let holds = {
                    let view = EnvView {
                        network,
                        state: self,
                    };
                    cond.eval(&view)?
                };
                let branch = if holds { then } else { otherwise };
                for u in branch {
                    self.apply_update(network, u)?;
                }
            }
        }
        Ok(())
    }

    /// Applies a sequence of updates in order.
    ///
    /// # Errors
    ///
    /// As [`State::apply_update`].
    pub fn apply_updates(&mut self, network: &Network, updates: &[Update]) -> Result<(), SimError> {
        for u in updates {
            self.apply_update(network, u)?;
        }
        Ok(())
    }

    /// A stable 64-bit fingerprint of the state, for visited-set hashing in
    /// the model checker.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

impl Hash for State {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for l in &self.locations {
            l.hash(state);
        }
        self.clock_values.hash(state);
        self.stopped.hash(state);
        self.vars.hash(state);
        self.time.hash(state);
    }
}

/// Borrowed view of a state in the context of its network, implementing the
/// evaluation environments.
#[derive(Debug, Clone, Copy)]
pub struct EnvView<'a> {
    /// The network providing declarations (array offsets, domains).
    pub network: &'a Network,
    /// The state providing valuations.
    pub state: &'a State,
}

impl VarEnv for EnvView<'_> {
    fn var(&self, var: VarId) -> i64 {
        self.state.vars[var.index()]
    }

    fn array_len(&self, array: ArrayId) -> usize {
        self.network.array_len(array)
    }

    fn elem(&self, array: ArrayId, index: i64) -> Result<i64, EvalError> {
        let len = self.network.array_len(array);
        let Some(i) = usize::try_from(index).ok().filter(|i| *i < len) else {
            return Err(EvalError::IndexOutOfBounds {
                array: array.raw(),
                index,
                len,
            });
        };
        Ok(self.state.vars[self.network.array_offset(array) + i])
    }
}

impl ClockEnv for EnvView<'_> {
    fn clock(&self, clock: ClockId) -> i64 {
        self.state.clock_value(clock)
    }

    fn is_running(&self, clock: ClockId) -> bool {
        self.state.clock_running(clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::expr::IntExpr;
    use crate::network::NetworkBuilder;

    fn network() -> Network {
        let mut nb = NetworkBuilder::new();
        nb.clock("run");
        nb.stopped_clock("stop");
        nb.var("x", 3, 0, 100);
        nb.array("arr", vec![10, 20, 30], 0, 100);
        let mut b = AutomatonBuilder::new("a");
        let l0 = b.location("l0");
        b.edge(Edge::new(l0, l0));
        nb.automaton(b.finish(l0));
        nb.build().unwrap()
    }

    fn clock(i: u32) -> ClockId {
        ClockId::from_raw(i)
    }

    #[test]
    fn initial_state_matches_declarations() {
        let n = network();
        let s = State::initial(&n);
        assert_eq!(s.time, 0);
        assert_eq!(s.vars, vec![3, 10, 20, 30]);
        assert!(s.clock_running(clock(0)));
        assert!(!s.clock_running(clock(1)));
        assert_eq!(
            s.location_of(AutomatonId::from_raw(0)),
            LocationId::from_raw(0)
        );
    }

    #[test]
    fn advance_moves_only_running_clocks() {
        let n = network();
        let mut s = State::initial(&n);
        s.advance(5);
        assert_eq!(s.time, 5);
        assert_eq!(s.clock_value(clock(0)), 5);
        assert_eq!(s.clock_value(clock(1)), 0);
    }

    #[test]
    fn stop_and_start_clock() {
        let n = network();
        let mut s = State::initial(&n);
        s.apply_update(&n, &Update::StopClock(clock(0))).unwrap();
        s.advance(5);
        assert_eq!(s.clock_value(clock(0)), 0);
        s.apply_update(&n, &Update::StartClock(clock(0))).unwrap();
        s.advance(2);
        assert_eq!(s.clock_value(clock(0)), 2);
        s.apply_update(&n, &Update::ResetClock(clock(0))).unwrap();
        assert_eq!(s.clock_value(clock(0)), 0);
        // Resetting keeps the running flag.
        assert!(s.clock_running(clock(0)));
    }

    #[test]
    fn from_parts_round_trips_through_iter_clocks() {
        let clocks = vec![
            ClockVal {
                value: 7,
                running: true,
            },
            ClockVal {
                value: -2,
                running: false,
            },
            ClockVal {
                value: 0,
                running: true,
            },
        ];
        let s = State::from_parts(vec![], clocks.clone(), vec![1], 9);
        assert_eq!(s.clocks_len(), 3);
        assert_eq!(s.iter_clocks().collect::<Vec<_>>(), clocks);
        assert_eq!(s.clock_values(), &[7, -2, 0]);
        assert_eq!(s.stopped_words(), &[0b010]);
    }

    #[test]
    fn soa_equality_ignores_nothing_and_tail_bits_stay_zero() {
        // Two states built through different op sequences but with equal
        // clock valuations must compare (and hash) equal: the stopped
        // mask's unused tail bits stay canonically zero.
        let n = network();
        let mut a = State::initial(&n);
        let mut b = State::initial(&n);
        a.apply_update(&n, &Update::StopClock(clock(0))).unwrap();
        a.apply_update(&n, &Update::StartClock(clock(0))).unwrap();
        b.apply_update(&n, &Update::StartClock(clock(0))).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.stopped_words().iter().all(|w| w >> 2 == 0));
    }

    #[test]
    fn advance_masked_add_matches_reference_on_mixed_words() {
        // 130 clocks spanning three mask words, every third stopped.
        let clocks: Vec<ClockVal> = (0..130)
            .map(|i| ClockVal {
                value: i64::from(i),
                running: i % 3 != 0,
            })
            .collect();
        let mut s = State::from_parts(vec![], clocks.clone(), vec![], 0);
        s.advance(7);
        for (i, cv) in s.iter_clocks().enumerate() {
            let expected = clocks[i].value + if clocks[i].running { 7 } else { 0 };
            assert_eq!(cv.value, expected, "clock {i}");
            assert_eq!(cv.running, clocks[i].running, "clock {i} flag");
        }
        assert_eq!(s.time, 7);
    }

    #[test]
    fn assignment_respects_domain() {
        let n = network();
        let mut s = State::initial(&n);
        let v = VarId::from_raw(0);
        s.apply_update(&n, &Update::set(v, 42)).unwrap();
        assert_eq!(s.vars[0], 42);
        let err = s.apply_update(&n, &Update::set(v, 101)).unwrap_err();
        assert!(matches!(err, SimError::DomainViolation { .. }));
        // Failed assignment leaves state untouched.
        assert_eq!(s.vars[0], 42);
    }

    #[test]
    fn array_assignment() {
        let n = network();
        let mut s = State::initial(&n);
        let a = ArrayId::from_raw(0);
        s.apply_update(&n, &Update::set_elem(a, 1, 99)).unwrap();
        assert_eq!(s.vars, vec![3, 10, 99, 30]);
        let err = s.apply_update(&n, &Update::set_elem(a, 3, 1)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Eval(EvalError::IndexOutOfBounds { .. })
        ));
        let err = s
            .apply_update(&n, &Update::set_elem(a, 0, 101))
            .unwrap_err();
        assert!(matches!(err, SimError::DomainViolation { .. }));
    }

    #[test]
    fn conditional_update() {
        let n = network();
        let mut s = State::initial(&n);
        let v = VarId::from_raw(0);
        let u = Update::If {
            cond: IntExpr::var(v).gt(0),
            then: vec![Update::set(v, 1)],
            otherwise: vec![Update::set(v, 2)],
        };
        s.apply_update(&n, &u).unwrap();
        assert_eq!(s.vars[0], 1);
        s.apply_update(&n, &Update::set(v, 0)).unwrap();
        s.apply_update(&n, &u).unwrap();
        assert_eq!(s.vars[0], 2);
    }

    #[test]
    fn env_view_evaluates_expressions() {
        let n = network();
        let s = State::initial(&n);
        let view = EnvView {
            network: &n,
            state: &s,
        };
        let e = IntExpr::elem(ArrayId::from_raw(0), 2) + IntExpr::var(VarId::from_raw(0));
        assert_eq!(e.eval(&view).unwrap(), 33);
    }

    #[test]
    fn updates_see_earlier_updates() {
        let n = network();
        let mut s = State::initial(&n);
        let v = VarId::from_raw(0);
        s.apply_updates(
            &n,
            &[
                Update::set(v, 7),
                Update::set(v, IntExpr::var(v) + IntExpr::lit(1)),
            ],
        )
        .unwrap();
        assert_eq!(s.vars[0], 8);
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let n = network();
        let s1 = State::initial(&n);
        let mut s2 = State::initial(&n);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        s2.advance(1);
        assert_ne!(s1.fingerprint(), s2.fingerprint());
    }
}
