//! Updates performed when an edge fires: variable assignments and clock
//! operations (reset, stop, resume).

use std::fmt;

use crate::expr::{IntExpr, Pred};
use crate::ids::{ArrayId, ClockId, VarId};

/// Target of an assignment: a scalar variable or an array element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// A scalar variable.
    Var(VarId),
    /// An array element with a computed index.
    Elem(ArrayId, Box<IntExpr>),
}

impl LValue {
    /// Scalar variable target.
    #[must_use]
    pub fn var(var: VarId) -> Self {
        Self::Var(var)
    }

    /// Array element target.
    #[must_use]
    pub fn elem(array: ArrayId, index: impl Into<IntExpr>) -> Self {
        Self::Elem(array, Box::new(index.into()))
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Var(v) => write!(f, "{v}"),
            Self::Elem(a, idx) => write!(f, "{a}[{idx}]"),
        }
    }
}

/// One atomic update executed when an edge fires.
///
/// Updates on a single edge execute in order; on a synchronization, the
/// sender's updates execute before the receivers' (UPPAAL convention).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Update {
    /// `target := value`.
    Assign {
        /// The assigned variable or array element.
        target: LValue,
        /// Clock-free right-hand side.
        value: IntExpr,
    },
    /// Resets a clock to zero (keeps its running/stopped status).
    ResetClock(ClockId),
    /// Stops a clock; its value is frozen until resumed.
    StopClock(ClockId),
    /// Resumes a stopped clock from its frozen value.
    StartClock(ClockId),
    /// Conditional update: applies `then` if `cond` holds, else `otherwise`.
    If {
        /// Condition evaluated against the pre-update state of this update.
        cond: Pred,
        /// Updates applied when the condition holds.
        then: Vec<Update>,
        /// Updates applied when the condition does not hold.
        otherwise: Vec<Update>,
    },
}

impl Update {
    /// Assignment `target := value`.
    #[must_use]
    pub fn assign(target: LValue, value: impl Into<IntExpr>) -> Self {
        Self::Assign {
            target,
            value: value.into(),
        }
    }

    /// Assignment to a scalar variable.
    #[must_use]
    pub fn set(var: VarId, value: impl Into<IntExpr>) -> Self {
        Self::assign(LValue::var(var), value)
    }

    /// Assignment to an array element.
    #[must_use]
    pub fn set_elem(array: ArrayId, index: impl Into<IntExpr>, value: impl Into<IntExpr>) -> Self {
        Self::assign(LValue::elem(array, index), value)
    }

    /// Substitutes template parameters in every contained expression.
    #[must_use]
    pub fn bind_params(&self, params: &[i64]) -> Self {
        match self {
            Self::Assign { target, value } => Self::Assign {
                target: match target {
                    LValue::Var(v) => LValue::Var(*v),
                    LValue::Elem(a, idx) => LValue::Elem(*a, Box::new(idx.bind_params(params))),
                },
                value: value.bind_params(params),
            },
            Self::ResetClock(c) => Self::ResetClock(*c),
            Self::StopClock(c) => Self::StopClock(*c),
            Self::StartClock(c) => Self::StartClock(*c),
            Self::If {
                cond,
                then,
                otherwise,
            } => Self::If {
                cond: cond.bind_params(params),
                then: then.iter().map(|u| u.bind_params(params)).collect(),
                otherwise: otherwise.iter().map(|u| u.bind_params(params)).collect(),
            },
        }
    }

    /// Largest parameter index used by the update.
    #[must_use]
    pub fn max_param(&self) -> Option<u32> {
        fn opt_max(a: Option<u32>, b: Option<u32>) -> Option<u32> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        match self {
            Self::Assign { target, value } => {
                let t = match target {
                    LValue::Var(_) => None,
                    LValue::Elem(_, idx) => idx.max_param(),
                };
                opt_max(t, value.max_param())
            }
            Self::ResetClock(_) | Self::StopClock(_) | Self::StartClock(_) => None,
            Self::If {
                cond,
                then,
                otherwise,
            } => {
                let mut m = cond.max_param();
                for u in then.iter().chain(otherwise) {
                    m = opt_max(m, u.max_param());
                }
                m
            }
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Assign { target, value } => write!(f, "{target} := {value}"),
            Self::ResetClock(c) => write!(f, "{c} := 0"),
            Self::StopClock(c) => write!(f, "stop {c}"),
            Self::StartClock(c) => write!(f, "start {c}"),
            Self::If {
                cond,
                then,
                otherwise,
            } => {
                write!(f, "if {cond} {{ ")?;
                for u in then {
                    write!(f, "{u}; ")?;
                }
                write!(f, "}} else {{ ")?;
                for u in otherwise {
                    write!(f, "{u}; ")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ParamId;

    #[test]
    fn constructors() {
        let u = Update::set(VarId::from_raw(0), 5);
        assert_eq!(
            u,
            Update::Assign {
                target: LValue::Var(VarId::from_raw(0)),
                value: IntExpr::lit(5)
            }
        );
        let u = Update::set_elem(ArrayId::from_raw(1), 2, 3);
        assert!(matches!(
            u,
            Update::Assign {
                target: LValue::Elem(..),
                ..
            }
        ));
    }

    #[test]
    fn bind_params_in_nested_if() {
        let p = IntExpr::param(ParamId::from_raw(0));
        let u = Update::If {
            cond: p.clone().gt(0),
            then: vec![Update::set(VarId::from_raw(0), p.clone())],
            otherwise: vec![Update::set_elem(ArrayId::from_raw(0), p, 1)],
        };
        assert_eq!(u.max_param(), Some(0));
        let bound = u.bind_params(&[9]);
        assert_eq!(bound.max_param(), None);
        if let Update::If { cond, then, .. } = &bound {
            assert_eq!(cond, &IntExpr::lit(9).gt(0));
            assert_eq!(then[0], Update::set(VarId::from_raw(0), 9));
        } else {
            panic!("expected If");
        }
    }

    #[test]
    fn clock_updates_have_no_params() {
        assert_eq!(Update::ResetClock(ClockId::from_raw(0)).max_param(), None);
        assert_eq!(Update::StopClock(ClockId::from_raw(0)).max_param(), None);
        assert_eq!(Update::StartClock(ClockId::from_raw(0)).max_param(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Update::set(VarId::from_raw(1), 2).to_string(), "v1 := 2");
        assert_eq!(
            Update::ResetClock(ClockId::from_raw(3)).to_string(),
            "c3 := 0"
        );
        assert_eq!(
            Update::StopClock(ClockId::from_raw(3)).to_string(),
            "stop c3"
        );
        assert_eq!(
            Update::StartClock(ClockId::from_raw(3)).to_string(),
            "start c3"
        );
    }
}
