//! UPPAAL 4.x XML export.
//!
//! The paper's toolchain authored component automata in UPPAAL and
//! translated them to an executable representation (its Fig. 3); this
//! module closes the loop in the other direction: any [`Network`] built
//! here can be exported to UPPAAL's XML format, so the component models
//! can be inspected, simulated and verified in the original toolset.
//!
//! Two translation concerns need real work:
//!
//! 1. **Stopwatches.** This library stops/starts clocks with edge updates;
//!    UPPAAL expresses stopwatches as *location rate invariants*
//!    (`x' == 0`). The exporter runs a forward dataflow analysis over each
//!    automaton (and the network's initial clock states) to infer, per
//!    location, whether each stopped/started clock is consistently running
//!    or consistently frozen there; inconsistent clocks make the network
//!    inexpressible as location-rate stopwatches and are reported.
//! 2. **Conditional updates.** Edge updates of the form
//!    `if p { x := e }` become UPPAAL ternaries (`x = p ? e : x`); nested
//!    conditionals or conditional clock operations are rejected.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::automaton::{Automaton, Sync};
use crate::expr::{CmpOp, IntExpr, Pred};
use crate::guard::{Guard, Invariant};
use crate::ids::{AutomatonId, ClockId, LocationId};
use crate::network::{ChannelKind, Network};
use crate::update::{LValue, Update};

/// Errors that make a network inexpressible in UPPAAL's location-rate
/// stopwatch form.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExportError {
    /// A clock is running in some path into a location and stopped in
    /// another, so no location rate can represent it.
    InconsistentClockRate {
        /// The automaton.
        automaton: AutomatonId,
        /// The location with conflicting clock states.
        location: LocationId,
        /// The clock.
        clock: ClockId,
    },
    /// An update shape has no UPPAAL equivalent (nested conditionals,
    /// conditional clock operations).
    UnsupportedUpdate {
        /// The automaton.
        automaton: AutomatonId,
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InconsistentClockRate {
                automaton,
                location,
                clock,
            } => write!(
                f,
                "clock {clock} is both running and stopped at location {location} of \
                 automaton {automaton}; location-rate stopwatches cannot express this"
            ),
            Self::UnsupportedUpdate { automaton, detail } => {
                write!(f, "automaton {automaton}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExportError {}

/// Exports a network to UPPAAL 4.x XML.
///
/// # Errors
///
/// See [`ExportError`].
pub fn network_to_uppaal(network: &Network) -> Result<String, ExportError> {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
    out.push_str(
        "<!DOCTYPE nta PUBLIC '-//Uppaal Team//DTD Flat System 1.1//EN' \
         'http://www.it.uu.se/research/group/darts/uppaal/flat-1_2.dtd'>\n",
    );
    out.push_str("<nta>\n");

    // Global declarations.
    out.push_str("  <declaration>\n");
    for c in network.clocks() {
        let _ = writeln!(out, "clock {};", ident(&c.name));
    }
    for v in network.vars() {
        let _ = writeln!(
            out,
            "int[{},{}] {} = {};",
            v.min,
            v.max,
            ident(&v.name),
            v.init
        );
    }
    for a in network.arrays() {
        let init: Vec<String> = a.init.iter().map(ToString::to_string).collect();
        let _ = writeln!(
            out,
            "int[{},{}] {}[{}] = {{{}}};",
            a.min,
            a.max,
            ident(&a.name),
            a.init.len(),
            init.join(", ")
        );
    }
    for ch in network.channels() {
        let kw = match ch.kind {
            ChannelKind::Binary => "chan",
            ChannelKind::Broadcast => "broadcast chan",
        };
        let _ = writeln!(out, "{kw} {};", ident(&ch.name));
    }
    out.push_str("  </declaration>\n");

    // Templates (one per automaton; the instances are the templates since
    // all parameters are already bound).
    for (ai, a) in network.automata().iter().enumerate() {
        let aid = AutomatonId::from_raw(u32::try_from(ai).expect("automaton count fits u32"));
        let rates = infer_clock_rates(network, aid)?;
        write_template(&mut out, network, aid, a, &rates)?;
    }

    // System line.
    out.push_str("  <system>\nsystem ");
    let names: Vec<String> = network.automata().iter().map(|a| ident(&a.name)).collect();
    out.push_str(&names.join(", "));
    out.push_str(";\n  </system>\n</nta>\n");
    Ok(out)
}

/// For each location of `automaton`: the set of clocks *stopped* there
/// (consistently across all paths), restricted to clocks the automaton
/// manipulates or that start stopped.
fn infer_clock_rates(
    network: &Network,
    aid: AutomatonId,
) -> Result<HashMap<LocationId, Vec<ClockId>>, ExportError> {
    let automaton = network.automaton(aid);
    // Which clocks does this automaton ever stop/start? Plus clocks that
    // start stopped and are guarded/bounded here.
    let mut tracked: Vec<ClockId> = Vec::new();
    let track = |c: ClockId, tracked: &mut Vec<ClockId>| {
        if !tracked.contains(&c) {
            tracked.push(c);
        }
    };
    for e in &automaton.edges {
        collect_clock_ops(&e.updates, &mut |c| track(c, &mut tracked));
    }
    for (ci, decl) in network.clocks().iter().enumerate() {
        if !decl.starts_running {
            let c = ClockId::from_raw(u32::try_from(ci).expect("clock count fits u32"));
            let referenced = automaton
                .edges
                .iter()
                .any(|e| e.guard.clock_atoms.iter().any(|a| a.clock == c))
                || automaton
                    .locations
                    .iter()
                    .any(|l| l.invariant.atoms.iter().any(|a| a.clock == c));
            if referenced {
                track(c, &mut tracked);
            }
        }
    }
    if tracked.is_empty() {
        return Ok(HashMap::new());
    }

    // Forward fixpoint: per location, per tracked clock: Some(running?) or
    // conflict.
    let mut state: Vec<HashMap<ClockId, bool>> = vec![HashMap::new(); automaton.locations.len()];
    let initial: HashMap<ClockId, bool> = tracked
        .iter()
        .map(|&c| (c, network.clocks()[c.index()].starts_running))
        .collect();
    let mut work = vec![(automaton.initial, initial)];
    while let Some((loc, incoming)) = work.pop() {
        // Merge into the location's state; conflicts are errors.
        let slot = &mut state[loc.index()];
        let mut changed = false;
        for (&c, &running) in &incoming {
            match slot.get(&c) {
                None => {
                    slot.insert(c, running);
                    changed = true;
                }
                Some(&prev) if prev == running => {}
                Some(_) => {
                    return Err(ExportError::InconsistentClockRate {
                        automaton: aid,
                        location: loc,
                        clock: c,
                    });
                }
            }
        }
        if !changed && !slot.is_empty() {
            continue;
        }
        let here = state[loc.index()].clone();
        for e in automaton.edges.iter().filter(|e| e.from == loc) {
            let mut next = here.clone();
            apply_clock_ops(&e.updates, &mut next);
            work.push((e.to, next));
        }
    }

    Ok(state
        .into_iter()
        .enumerate()
        .map(|(li, m)| {
            (
                LocationId::from_raw(u32::try_from(li).expect("location count fits u32")),
                m.into_iter()
                    .filter(|(_, running)| !running)
                    .map(|(c, _)| c)
                    .collect(),
            )
        })
        .collect())
}

fn collect_clock_ops(updates: &[Update], f: &mut impl FnMut(ClockId)) {
    for u in updates {
        match u {
            Update::StopClock(c) | Update::StartClock(c) => f(*c),
            Update::If {
                then, otherwise, ..
            } => {
                collect_clock_ops(then, f);
                collect_clock_ops(otherwise, f);
            }
            Update::Assign { .. } | Update::ResetClock(_) => {}
        }
    }
}

fn apply_clock_ops(updates: &[Update], state: &mut HashMap<ClockId, bool>) {
    for u in updates {
        match u {
            Update::StopClock(c) => {
                state.insert(*c, false);
            }
            Update::StartClock(c) => {
                state.insert(*c, true);
            }
            _ => {}
        }
    }
}

fn write_template(
    out: &mut String,
    network: &Network,
    aid: AutomatonId,
    automaton: &Automaton,
    stopped: &HashMap<LocationId, Vec<ClockId>>,
) -> Result<(), ExportError> {
    let _ = writeln!(out, "  <template>");
    let _ = writeln!(out, "    <name>{}</name>", ident(&automaton.name));
    for (li, l) in automaton.locations.iter().enumerate() {
        let lid = LocationId::from_raw(u32::try_from(li).expect("location count fits u32"));
        let x = (li % 8) * 150;
        let y = (li / 8) * 120;
        let _ = writeln!(out, "    <location id=\"id{li}\" x=\"{x}\" y=\"{y}\">");
        let _ = writeln!(out, "      <name>{}</name>", xml_escape(&l.name));
        let mut inv_parts: Vec<String> = Vec::new();
        if !l.invariant.atoms.is_empty() {
            inv_parts.push(render_invariant(network, &l.invariant));
        }
        if let Some(cs) = stopped.get(&lid) {
            for c in cs {
                inv_parts.push(format!("{}' == 0", clock_name(network, *c)));
            }
        }
        if !inv_parts.is_empty() {
            let _ = writeln!(
                out,
                "      <label kind=\"invariant\">{}</label>",
                xml_escape(&inv_parts.join(" && "))
            );
        }
        if l.committed {
            let _ = writeln!(out, "      <committed/>");
        }
        let _ = writeln!(out, "    </location>");
    }
    let _ = writeln!(out, "    <init ref=\"id{}\"/>", automaton.initial.index());
    for e in &automaton.edges {
        let _ = writeln!(out, "    <transition>");
        let _ = writeln!(out, "      <source ref=\"id{}\"/>", e.from.index());
        let _ = writeln!(out, "      <target ref=\"id{}\"/>", e.to.index());
        let guard = render_guard(network, &e.guard);
        if !guard.is_empty() {
            let _ = writeln!(
                out,
                "      <label kind=\"guard\">{}</label>",
                xml_escape(&guard)
            );
        }
        match e.sync {
            Sync::Internal => {}
            Sync::Send(ch) => {
                let _ = writeln!(
                    out,
                    "      <label kind=\"synchronisation\">{}!</label>",
                    ident(&network.channels()[ch.index()].name)
                );
            }
            Sync::Recv(ch) => {
                let _ = writeln!(
                    out,
                    "      <label kind=\"synchronisation\">{}?</label>",
                    ident(&network.channels()[ch.index()].name)
                );
            }
        }
        let assignment = render_updates(network, aid, &e.updates)?;
        if !assignment.is_empty() {
            let _ = writeln!(
                out,
                "      <label kind=\"assignment\">{}</label>",
                xml_escape(&assignment)
            );
        }
        let _ = writeln!(out, "    </transition>");
    }
    let _ = writeln!(out, "  </template>");
    Ok(())
}

fn clock_name(network: &Network, c: ClockId) -> String {
    ident(&network.clocks()[c.index()].name)
}

fn render_invariant(network: &Network, inv: &Invariant) -> String {
    inv.atoms
        .iter()
        .map(|a| {
            format!(
                "{} <= {}",
                clock_name(network, a.clock),
                render_expr(network, &a.rhs, 0)
            )
        })
        .collect::<Vec<_>>()
        .join(" && ")
}

fn render_guard(network: &Network, guard: &Guard) -> String {
    let mut parts: Vec<String> = Vec::new();
    for p in &guard.preds {
        parts.push(render_pred(network, p, 0));
    }
    for a in &guard.clock_atoms {
        parts.push(format!(
            "{} {} {}",
            clock_name(network, a.clock),
            render_cmp(a.op),
            render_expr(network, &a.rhs, 0)
        ));
    }
    parts.join(" && ")
}

fn render_cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn render_expr(network: &Network, e: &IntExpr, depth: usize) -> String {
    match e {
        IntExpr::Lit(v) => v.to_string(),
        IntExpr::Var(v) => ident(&network.vars()[v.index()].name),
        IntExpr::Elem(a, idx) => format!(
            "{}[{}]",
            ident(&network.arrays()[a.index()].name),
            render_expr(network, idx, depth)
        ),
        IntExpr::Param(p) => format!("P{}", p.raw()),
        IntExpr::Bound(d) => format!("q{}", depth - 1 - d),
        IntExpr::Add(a, b) => format!(
            "({} + {})",
            render_expr(network, a, depth),
            render_expr(network, b, depth)
        ),
        IntExpr::Sub(a, b) => format!(
            "({} - {})",
            render_expr(network, a, depth),
            render_expr(network, b, depth)
        ),
        IntExpr::Mul(a, b) => format!(
            "({} * {})",
            render_expr(network, a, depth),
            render_expr(network, b, depth)
        ),
        IntExpr::Div(a, b) => format!(
            "({} / {})",
            render_expr(network, a, depth),
            render_expr(network, b, depth)
        ),
        IntExpr::Rem(a, b) => format!(
            "({} % {})",
            render_expr(network, a, depth),
            render_expr(network, b, depth)
        ),
        IntExpr::Neg(a) => format!("(-{})", render_expr(network, a, depth)),
        IntExpr::Min(a, b) => format!(
            "(({0}) <? ({1}))",
            render_expr(network, a, depth),
            render_expr(network, b, depth)
        ),
        IntExpr::Max(a, b) => format!(
            "(({0}) >? ({1}))",
            render_expr(network, a, depth),
            render_expr(network, b, depth)
        ),
        IntExpr::Ite(p, t, f) => format!(
            "({} ? {} : {})",
            render_pred(network, p, depth),
            render_expr(network, t, depth),
            render_expr(network, f, depth)
        ),
    }
}

fn render_pred(network: &Network, p: &Pred, depth: usize) -> String {
    match p {
        Pred::Lit(true) => "true".to_string(),
        Pred::Lit(false) => "false".to_string(),
        Pred::Cmp(op, a, b) => format!(
            "{} {} {}",
            render_expr(network, a, depth),
            render_cmp(*op),
            render_expr(network, b, depth)
        ),
        Pred::Not(inner) => format!("!({})", render_pred(network, inner, depth)),
        Pred::And(ps) => {
            if ps.is_empty() {
                "true".to_string()
            } else {
                let parts: Vec<String> =
                    ps.iter().map(|q| render_pred(network, q, depth)).collect();
                format!("({})", parts.join(" && "))
            }
        }
        Pred::Or(ps) => {
            if ps.is_empty() {
                "false".to_string()
            } else {
                let parts: Vec<String> =
                    ps.iter().map(|q| render_pred(network, q, depth)).collect();
                format!("({})", parts.join(" || "))
            }
        }
        Pred::ForAll { lo, hi, body } => format!(
            "forall (q{depth} : int[{}, {} - 1]) {}",
            render_expr(network, lo, depth),
            render_expr(network, hi, depth),
            render_pred(network, body, depth + 1)
        ),
        Pred::Exists { lo, hi, body } => format!(
            "exists (q{depth} : int[{}, {} - 1]) {}",
            render_expr(network, lo, depth),
            render_expr(network, hi, depth),
            render_pred(network, body, depth + 1)
        ),
    }
}

fn render_updates(
    network: &Network,
    aid: AutomatonId,
    updates: &[Update],
) -> Result<String, ExportError> {
    let mut parts: Vec<String> = Vec::new();
    for u in updates {
        render_update(network, aid, u, &mut parts)?;
    }
    Ok(parts.join(", "))
}

fn render_update(
    network: &Network,
    aid: AutomatonId,
    u: &Update,
    parts: &mut Vec<String>,
) -> Result<(), ExportError> {
    match u {
        Update::Assign { target, value } => {
            parts.push(format!(
                "{} = {}",
                render_lvalue(network, target),
                render_expr(network, value, 0)
            ));
            Ok(())
        }
        Update::ResetClock(c) => {
            parts.push(format!("{} = 0", clock_name(network, *c)));
            Ok(())
        }
        // Stop/start are encoded as location rates (inferred separately),
        // so the edge itself carries nothing.
        Update::StopClock(_) | Update::StartClock(_) => Ok(()),
        Update::If {
            cond,
            then,
            otherwise,
        } => {
            // Expressible as ternaries when both branches contain only
            // simple assignments.
            let all_simple = then
                .iter()
                .chain(otherwise)
                .all(|u| matches!(u, Update::Assign { .. }));
            if !all_simple {
                return Err(ExportError::UnsupportedUpdate {
                    automaton: aid,
                    detail: "conditional update with non-assignment branches".to_string(),
                });
            }
            let cond_s = render_pred(network, cond, 0);
            for u in then {
                if let Update::Assign { target, value } = u {
                    let t = render_lvalue(network, target);
                    parts.push(format!(
                        "{t} = ({cond_s} ? {} : {t})",
                        render_expr(network, value, 0)
                    ));
                }
            }
            for u in otherwise {
                if let Update::Assign { target, value } = u {
                    let t = render_lvalue(network, target);
                    parts.push(format!(
                        "{t} = ({cond_s} ? {t} : {})",
                        render_expr(network, value, 0)
                    ));
                }
            }
            Ok(())
        }
    }
}

fn render_lvalue(network: &Network, l: &LValue) -> String {
    match l {
        LValue::Var(v) => ident(&network.vars()[v.index()].name),
        LValue::Elem(a, idx) => format!(
            "{}[{}]",
            ident(&network.arrays()[a.index()].name),
            render_expr(network, idx, 0)
        ),
    }
}

/// Makes a name a valid UPPAAL identifier.
fn ident(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{AutomatonBuilder, Edge};
    use crate::guard::ClockAtom;
    use crate::network::NetworkBuilder;

    fn ticker_with_stopwatch() -> Network {
        let mut nb = NetworkBuilder::new();
        let c = nb.clock("period_clk");
        let sw = nb.stopped_clock("work_clk");
        let v = nb.var("count", 0, 0, 10);
        let ch = nb.broadcast_channel("tick");
        let mut a = AutomatonBuilder::new("worker");
        let idle = a.location_with_invariant("idle", Invariant::upper_bound(c, 5));
        let busy = a.location_with_invariant("busy", Invariant::upper_bound(sw, 3));
        a.edge(
            Edge::new(idle, busy)
                .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 5)))
                .with_sync(Sync::Send(ch))
                .with_updates([
                    Update::ResetClock(c),
                    Update::StartClock(sw),
                    Update::set(
                        crate::ids::VarId::from_raw(0),
                        IntExpr::var(crate::ids::VarId::from_raw(0)) + IntExpr::lit(1),
                    ),
                ]),
        );
        a.edge(
            Edge::new(busy, idle)
                .with_guard(Guard::always().and_clock(ClockAtom::new(sw, CmpOp::Ge, 3)))
                .with_updates([Update::StopClock(sw), Update::ResetClock(sw)]),
        );
        nb.automaton(a.finish(idle));
        let _ = v;
        nb.build().unwrap()
    }

    #[test]
    fn exports_declarations_and_system_line() {
        let n = ticker_with_stopwatch();
        let xml = network_to_uppaal(&n).unwrap();
        assert!(xml.contains("<nta>"), "{xml}");
        assert!(xml.contains("clock period_clk;"));
        assert!(xml.contains("clock work_clk;"));
        assert!(xml.contains("int[0,10] count = 0;"));
        assert!(xml.contains("broadcast chan tick;"));
        assert!(xml.contains("system worker;"));
    }

    #[test]
    fn stopwatch_rates_appear_as_location_invariants() {
        let n = ticker_with_stopwatch();
        let xml = network_to_uppaal(&n).unwrap();
        // In `idle` the stopwatch is frozen: rate invariant emitted.
        assert!(
            xml.contains("work_clk' == 0"),
            "expected a rate invariant:\n{xml}"
        );
        // In `busy` the stopwatch runs: its upper bound appears without a
        // rate annotation on the same label.
        assert!(xml.contains("work_clk &lt;= 3"));
    }

    #[test]
    fn guards_syncs_and_assignments_render() {
        let n = ticker_with_stopwatch();
        let xml = network_to_uppaal(&n).unwrap();
        assert!(xml.contains("period_clk &gt;= 5"));
        assert!(xml.contains("tick!"));
        assert!(xml.contains("count = (count + 1)"));
        assert!(xml.contains("period_clk = 0"));
    }

    #[test]
    fn quantifiers_render_in_uppaal_syntax() {
        let mut nb = NetworkBuilder::new();
        let arr = nb.array("ready", vec![0, 0, 0], 0, 1);
        let mut a = AutomatonBuilder::new("sel");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.edge(Edge::new(l0, l1).with_guard(Guard::when(Pred::forall(
            0,
            3,
            IntExpr::elem(arr, IntExpr::bound(0)).eq(0),
        ))));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let xml = network_to_uppaal(&n).unwrap();
        assert!(
            xml.contains("forall (q0 : int[0, 3 - 1]) ready[q0] == 0"),
            "{xml}"
        );
    }

    #[test]
    fn conditional_update_becomes_ternary() {
        let mut nb = NetworkBuilder::new();
        let v = nb.var("r", 1, 0, 5);
        let mut a = AutomatonBuilder::new("cond");
        let l0 = a.location("l0");
        a.edge(Edge::new(l0, l0).with_update(Update::If {
            cond: IntExpr::var(v).gt(0),
            then: vec![Update::set(v, 0)],
            otherwise: vec![],
        }));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let xml = network_to_uppaal(&n).unwrap();
        assert!(xml.contains("r = (r &gt; 0 ? 0 : r)"), "{xml}");
    }

    #[test]
    fn nested_conditionals_are_rejected() {
        let mut nb = NetworkBuilder::new();
        let v = nb.var("r", 1, 0, 5);
        let mut a = AutomatonBuilder::new("cond");
        let l0 = a.location("l0");
        a.edge(Edge::new(l0, l0).with_update(Update::If {
            cond: IntExpr::var(v).gt(0),
            then: vec![Update::If {
                cond: IntExpr::var(v).gt(1),
                then: vec![],
                otherwise: vec![],
            }],
            otherwise: vec![],
        }));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        assert!(matches!(
            network_to_uppaal(&n),
            Err(ExportError::UnsupportedUpdate { .. })
        ));
    }

    #[test]
    fn committed_locations_are_marked() {
        let mut nb = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("c");
        let l0 = a.committed_location("l0");
        let l1 = a.location("l1");
        a.edge(Edge::new(l0, l1));
        nb.automaton(a.finish(l0));
        let n = nb.build().unwrap();
        let xml = network_to_uppaal(&n).unwrap();
        assert!(xml.contains("<committed/>"));
    }

    #[test]
    fn identifier_sanitization() {
        assert_eq!(ident("T0_P.a b"), "T0_P_a_b");
        assert_eq!(ident("0abc"), "_0abc");
        assert_eq!(ident(""), "_");
    }
}
