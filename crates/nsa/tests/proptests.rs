//! Property-based tests of the formalism's core invariants: exact
//! enabling-window computation, invariant delay bounds, quantifier
//! semantics, and the event-driven simulator against a brute-force oracle.

// Gated: compiling this suite requires the non-default `proptest-tests`
// feature plus a re-added `proptest` dev-dependency (network access).
#![cfg(feature = "proptest-tests")]
use proptest::prelude::*;
use swa_nsa::automaton::{AutomatonBuilder, Edge};
use swa_nsa::expr::{CmpOp, IntExpr, Pred, VarEnv};
use swa_nsa::guard::{ClockAtom, ClockEnv, DelayWindow, Guard, Invariant};
use swa_nsa::ids::{ArrayId, ClockId, VarId};
use swa_nsa::network::NetworkBuilder;
use swa_nsa::sim::Simulator;
use swa_nsa::update::Update;
use swa_nsa::EvalError;

/// Test environment with one clock and one array.
struct Env {
    clock: i64,
    running: bool,
    arr: Vec<i64>,
}

impl ClockEnv for Env {
    fn clock(&self, _c: ClockId) -> i64 {
        self.clock
    }
    fn is_running(&self, _c: ClockId) -> bool {
        self.running
    }
}

impl VarEnv for Env {
    fn var(&self, _v: VarId) -> i64 {
        0
    }
    fn array_len(&self, _a: ArrayId) -> usize {
        self.arr.len()
    }
    fn elem(&self, a: ArrayId, index: i64) -> Result<i64, EvalError> {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.arr.get(i))
            .copied()
            .ok_or(EvalError::IndexOutOfBounds {
                array: a.raw(),
                index,
                len: self.arr.len(),
            })
    }
}

fn any_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

proptest! {
    /// `delay_window` is exactly the set of delays after which the atom
    /// holds (checked against brute force over a window of delays).
    #[test]
    fn clock_atom_window_matches_brute_force(
        value in 0i64..30,
        running in any::<bool>(),
        op in any_cmp_op(),
        rhs in 0i64..30,
    ) {
        let atom = ClockAtom::new(ClockId::from_raw(0), op, rhs);
        let env = Env { clock: value, running, arr: vec![] };
        let window = atom.delay_window(&env, &env).unwrap();
        for d in 0..70i64 {
            let future = Env {
                clock: if running { value + d } else { value },
                running,
                arr: vec![],
            };
            let holds = atom.holds(&future, &future).unwrap();
            let in_window = window.is_some_and(|w| w.contains(d));
            // `Ne` uses a conservative interval approximation; skip it.
            if op != CmpOp::Ne {
                prop_assert_eq!(
                    holds, in_window,
                    "op {:?} value {} rhs {} running {} delay {}",
                    op, value, rhs, running, d
                );
            } else if in_window {
                // The approximation must still be sound: window ⊆ holds.
                prop_assert!(holds);
            }
        }
    }

    /// Window intersection is exactly conjunction of membership.
    #[test]
    fn window_intersection_is_conjunction(
        lo1 in 0i64..20, len1 in 0i64..20, unb1 in any::<bool>(),
        lo2 in 0i64..20, len2 in 0i64..20, unb2 in any::<bool>(),
        probe in 0i64..60,
    ) {
        let w1 = if unb1 { DelayWindow::unbounded(lo1) } else { DelayWindow::bounded(lo1, lo1 + len1) };
        let w2 = if unb2 { DelayWindow::unbounded(lo2) } else { DelayWindow::bounded(lo2, lo2 + len2) };
        let both = w1.intersect(w2);
        prop_assert_eq!(
            both.is_some_and(|w| w.contains(probe)),
            w1.contains(probe) && w2.contains(probe)
        );
        // Commutativity.
        prop_assert_eq!(both, w2.intersect(w1));
    }

    /// The invariant's max delay is the largest delay that keeps it true.
    #[test]
    fn invariant_max_delay_is_tight(
        value in 0i64..30,
        bound in 0i64..40,
    ) {
        let inv = Invariant::upper_bound(ClockId::from_raw(0), bound);
        let env = Env { clock: value, running: true, arr: vec![] };
        match inv.max_delay(&env, &env).unwrap() {
            Some(d) if d >= 0 => {
                let at = Env { clock: value + d, running: true, arr: vec![] };
                prop_assert!(inv.holds(&at, &at).unwrap());
                let past = Env { clock: value + d + 1, running: true, arr: vec![] };
                prop_assert!(!inv.holds(&past, &past).unwrap());
            }
            Some(_) => prop_assert!(!inv.holds(&env, &env).unwrap()),
            None => prop_assert!(false, "running-clock invariant must bound delay"),
        }
    }

    /// `forall` over an array equals the min-based formulation; `exists`
    /// equals the max-based one.
    #[test]
    fn quantifiers_match_min_max(arr in prop::collection::vec(-20i64..20, 1..8), k in -25i64..25) {
        let env = Env { clock: 0, running: true, arr: arr.clone() };
        let n = i64::try_from(arr.len()).unwrap();
        let a0 = ArrayId::from_raw(0);
        let all_ge = Pred::forall(0, n, IntExpr::elem(a0, IntExpr::bound(0)).ge(k));
        prop_assert_eq!(all_ge.eval(&env).unwrap(), arr.iter().copied().min().unwrap() >= k);
        let some_ge = Pred::exists(0, n, IntExpr::elem(a0, IntExpr::bound(0)).ge(k));
        prop_assert_eq!(some_ge.eval(&env).unwrap(), arr.iter().copied().max().unwrap() >= k);
    }

    /// Guard enabling windows respect conjunction: the guard holds after
    /// delay `d` iff `d` is in the computed window (var-free guards).
    #[test]
    fn guard_window_is_exact(
        value in 0i64..20,
        lo in 0i64..25,
        hi_off in 0i64..25,
    ) {
        let c = ClockId::from_raw(0);
        let guard = Guard::always()
            .and_clock(ClockAtom::new(c, CmpOp::Ge, lo))
            .and_clock(ClockAtom::new(c, CmpOp::Le, lo + hi_off));
        let env = Env { clock: value, running: true, arr: vec![] };
        let window = guard.enabling_window(&env, &env).unwrap();
        for d in 0..60i64 {
            let future = Env { clock: value + d, running: true, arr: vec![] };
            prop_assert_eq!(
                guard.holds(&future, &future).unwrap(),
                window.is_some_and(|w| w.contains(d))
            );
        }
    }
}

/// Brute-force oracle for a set of periodic tickers: the merged, sorted
/// multiset of all multiples of each period below the horizon.
fn ticker_oracle(periods: &[i64], horizon: i64) -> Vec<i64> {
    let mut times = Vec::new();
    for &p in periods {
        let mut t = p;
        while t < horizon {
            times.push(t);
            t += p;
        }
    }
    times.sort_unstable();
    times
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event-driven simulator fires periodic tickers at exactly the
    /// times a brute-force oracle predicts, regardless of period mixes.
    #[test]
    fn simulator_matches_ticker_oracle(
        periods in prop::collection::vec(1i64..12, 1..5),
        horizon in 1i64..80,
    ) {
        let mut nb = NetworkBuilder::new();
        for (i, &p) in periods.iter().enumerate() {
            let c = nb.clock(format!("c{i}"));
            let mut b = AutomatonBuilder::new(format!("t{i}"));
            let l0 = b.location_with_invariant("wait", Invariant::upper_bound(c, p));
            b.edge(
                Edge::new(l0, l0)
                    .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, p)))
                    .with_update(Update::ResetClock(c)),
            );
            nb.automaton(b.finish(l0));
        }
        let network = nb.build().unwrap();
        let out = Simulator::new(&network).horizon(horizon).run().unwrap();
        let times: Vec<i64> = out.trace.iter().map(|e| e.time).collect();
        prop_assert_eq!(times, ticker_oracle(&periods, horizon));
    }
}
