//! # swa-rta — classical analytical schedulability tests
//!
//! The paper motivates its trace-based approach by noting that existing
//! analytical methods "do not consider all modular systems features"
//! (reference \[4\] there): classical response-time analysis assumes a task
//! set *alone on a core, always available* — no partition windows, no
//! data dependencies over virtual links. This crate implements those
//! classics so the difference can be *measured*:
//!
//! * [`response_times`] — the Joseph & Pandya fixed-point iteration for
//!   FPPS (exact for the classical model);
//! * [`liu_layland_bound`] — the Liu & Layland utilization bound (a
//!   sufficient test);
//! * [`compare`] — runs classical RTA per partition against the
//!   stopwatch-automata trace analysis and reports where the classical
//!   model's blind spots (windows, dependencies) change the verdict;
//! * [`window_rta`] — the *window-supply* generalization (supply-bound /
//!   request-bound functions over the ARINC-653 window schedule, per the
//!   compositional interfaces of Han et al., arXiv:1807.11050). Unlike
//!   the classics above it **sees** partition windows, which makes its
//!   `Schedulable` answers sound against the trace analysis; it powers
//!   tier T1 of the verdict ladder
//!   ([`swa_core::ladder`], DESIGN.md §4.20).

#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

use swa_ima::{Configuration, PartitionId, SchedulerKind};

/// A task as the classical model sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtaTask {
    /// Worst-case execution time.
    pub wcet: i64,
    /// Period.
    pub period: i64,
    /// Relative deadline (`≤ period`).
    pub deadline: i64,
    /// Fixed priority (larger = more urgent).
    pub priority: i64,
}

/// Worst-case response times under fixed-priority preemptive scheduling on
/// a dedicated, always-available core (Joseph & Pandya 1986).
///
/// `R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / P_j⌉ · C_j`, iterated to the fixed
/// point. Returns `None` for a task whose iteration exceeds its deadline
/// (the task set is then unschedulable in the classical model).
///
/// Equal priorities are handled pessimistically, as usual: each task
/// counts same-priority peers as interference.
#[must_use]
pub fn response_times(tasks: &[RtaTask]) -> Vec<Option<i64>> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let interferers: Vec<&RtaTask> = tasks
                .iter()
                .enumerate()
                .filter(|(j, o)| *j != i && o.priority >= t.priority)
                .map(|(_, o)| o)
                .collect();
            let mut r = t.wcet;
            loop {
                let interference: i64 = interferers
                    .iter()
                    .map(|o| ((r + o.period - 1) / o.period) * o.wcet)
                    .sum();
                let next = t.wcet + interference;
                if next > t.deadline {
                    return None;
                }
                if next == r {
                    return Some(r);
                }
                r = next;
            }
        })
        .collect()
}

/// The Liu & Layland utilization bound for `n` tasks under rate-monotonic
/// priorities: `n (2^{1/n} − 1)`.
///
/// A task set of `n` independent periodic tasks on a dedicated,
/// always-available core is schedulable under rate-monotonic FPPS if its
/// total utilization is at most this bound (a *sufficient* test: sets
/// above the bound may still be schedulable, e.g. harmonic periods up to
/// utilization 1). The bound is 1.0 for a single task and decreases
/// monotonically towards `ln 2 ≈ 0.693` as `n → ∞`.
///
/// For `n = 0` there are no tasks and the formula is vacuous; this
/// returns `0.0` — the empty set's own utilization — so that
/// `utilization ≤ bound` still holds exactly for the empty task set
/// (earlier releases returned a meaningless `1.0` here).
///
/// ```
/// assert_eq!(swa_rta::liu_layland_bound(0), 0.0);
/// assert_eq!(swa_rta::liu_layland_bound(1), 1.0);
/// assert!((swa_rta::liu_layland_bound(2) - 0.828_427).abs() < 1e-6);
/// assert!(swa_rta::liu_layland_bound(1000) > (2.0f64).ln());
/// ```
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let n = n as f64;
    n * ((2.0f64).powf(1.0 / n) - 1.0)
}

/// The classical verdict for one partition's task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtaVerdict {
    /// The partition.
    pub partition: PartitionId,
    /// Response time per task (`None` = exceeds its deadline).
    pub response_times: Vec<Option<i64>>,
    /// Whether every task met its deadline in the classical model.
    pub schedulable: bool,
    /// Whether the classical model's assumptions even apply (FPPS, no
    /// incoming data dependencies). When `false`, the verdict is reported
    /// but marked inapplicable.
    pub assumptions_hold: bool,
}

/// A comparison of classical RTA and the trace-based analysis.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-partition classical verdicts.
    pub rta: Vec<RtaVerdict>,
    /// The trace-based verdict for the whole configuration.
    pub trace_schedulable: bool,
    /// Partitions where classical RTA says schedulable but the trace shows
    /// a miss (the classical model ignores windows and link delays, so it
    /// is optimistic for modular systems).
    pub optimistic_partitions: Vec<PartitionId>,
}

impl Comparison {
    /// Whether the classical model told the whole story (no optimism).
    #[must_use]
    pub fn classical_model_suffices(&self) -> bool {
        self.optimistic_partitions.is_empty()
    }
}

/// Runs classical per-partition RTA against the trace-based analysis.
///
/// # Errors
///
/// Propagates pipeline errors from the trace-based analysis.
pub fn compare(config: &Configuration) -> Result<Comparison, swa_core::PipelineError> {
    let report = swa_core::analyze_configuration(config)?;

    let mut rta = Vec::new();
    let mut optimistic = Vec::new();
    for (pi, p) in config.partitions.iter().enumerate() {
        let pid = PartitionId::from_raw(u32::try_from(pi).expect("partition count fits u32"));
        let core_type = config
            .core_type_of_task(swa_ima::TaskRef::new(pid, 0))
            .expect("validated binding");
        let tasks: Vec<RtaTask> = p
            .tasks
            .iter()
            .map(|t| RtaTask {
                wcet: t.wcet_on(core_type),
                period: t.period,
                deadline: t.deadline,
                priority: t.priority,
            })
            .collect();
        let rts = response_times(&tasks);
        let schedulable = rts.iter().all(Option::is_some);
        let has_inputs = config.messages.iter().any(|m| m.receiver.partition == pid);
        let assumptions_hold = p.scheduler == SchedulerKind::Fpps && !has_inputs;

        // Optimism: classical says yes, the trace shows this partition
        // missing.
        let partition_missed = report
            .analysis
            .missed_jobs()
            .any(|j| j.task.partition == pid);
        if schedulable && partition_missed {
            optimistic.push(pid);
        }
        rta.push(RtaVerdict {
            partition: pid,
            response_times: rts,
            schedulable,
            assumptions_hold,
        });
    }

    Ok(Comparison {
        rta,
        trace_schedulable: report.schedulable(),
        optimistic_partitions: optimistic,
    })
}

pub use swa_core::ladder::{partition_window_rta, window_supply_rta};

/// The window-supply RTA verdict for one partition.
///
/// Produced by [`window_rta`]; mirrors [`RtaVerdict`] but for the
/// supply-bound-function test that accounts for the partition's ARINC-653
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRtaVerdict {
    /// The partition.
    pub partition: PartitionId,
    /// Whether every task provably meets its deadline given the window
    /// supply. Always `false` when `assumptions_hold` is `false` — an
    /// inapplicable test proves nothing.
    pub schedulable: bool,
    /// Whether the test applies to this partition (FPPS scheduler, no
    /// incoming data dependencies, finite task parameters). When `false`
    /// the partition must be left to the exact trace analysis.
    pub assumptions_hold: bool,
}

/// Runs the window-supply response-time test on every partition.
///
/// Unlike classical [`response_times`], this test models the partition's
/// window schedule through its supply-bound function, so a `schedulable`
/// answer with `assumptions_hold` is *sound*: the exact trace analysis
/// agrees (see `tests/soundness.rs`). Partitions where the assumptions
/// fail (non-FPPS scheduler, message receivers) come back with
/// `assumptions_hold: false` and `schedulable: false`.
#[must_use]
pub fn window_rta(config: &Configuration) -> Vec<WindowRtaVerdict> {
    (0..config.partitions.len())
        .map(|pi| {
            let pid = PartitionId::from_raw(u32::try_from(pi).expect("partition count fits u32"));
            match partition_window_rta(config, pid) {
                Some(schedulable) => WindowRtaVerdict {
                    partition: pid,
                    schedulable,
                    assumptions_hold: true,
                },
                None => WindowRtaVerdict {
                    partition: pid,
                    schedulable: false,
                    assumptions_hold: false,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::{CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, Task, Window};

    /// The classic three-task example (Burns & Wellings): C = (3, 3, 5),
    /// P = (7, 12, 20), priorities descending — response times 3, 6, 20.
    #[test]
    fn textbook_example_matches() {
        let tasks = [
            RtaTask {
                wcet: 3,
                period: 7,
                deadline: 7,
                priority: 3,
            },
            RtaTask {
                wcet: 3,
                period: 12,
                deadline: 12,
                priority: 2,
            },
            RtaTask {
                wcet: 5,
                period: 20,
                deadline: 20,
                priority: 1,
            },
        ];
        assert_eq!(response_times(&tasks), vec![Some(3), Some(6), Some(20)]);
    }

    #[test]
    fn overload_is_unschedulable() {
        let tasks = [
            RtaTask {
                wcet: 5,
                period: 10,
                deadline: 10,
                priority: 2,
            },
            RtaTask {
                wcet: 6,
                period: 10,
                deadline: 10,
                priority: 1,
            },
        ];
        let rts = response_times(&tasks);
        assert_eq!(rts[0], Some(5));
        assert_eq!(rts[1], None);
    }

    #[test]
    fn single_task_response_is_its_wcet() {
        let tasks = [RtaTask {
            wcet: 4,
            period: 10,
            deadline: 10,
            priority: 1,
        }];
        assert_eq!(response_times(&tasks), vec![Some(4)]);
    }

    #[test]
    fn liu_layland_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-9);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
        // The bound decreases towards ln 2.
        assert!(liu_layland_bound(100) > 0.69);
        assert!(liu_layland_bound(100) < liu_layland_bound(2));
    }

    fn windowed_config(window_end: i64) -> Configuration {
        Configuration {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new(
                "P",
                SchedulerKind::Fpps,
                vec![
                    Task::new("a", 2, vec![10], 50),
                    Task::new("b", 1, vec![15], 50),
                ],
            )],
            binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
            windows: vec![vec![Window::new(0, window_end)]],
            messages: vec![],
        }
    }

    #[test]
    fn agreement_with_full_windows() {
        // Whole hyperperiod available: classical and trace-based agree.
        let comparison = compare(&windowed_config(50)).unwrap();
        assert!(comparison.trace_schedulable);
        assert!(comparison.rta[0].schedulable);
        assert!(comparison.classical_model_suffices());
        assert!(comparison.rta[0].assumptions_hold);
    }

    #[test]
    fn classical_rta_is_blind_to_windows() {
        // Only 20 of 50 ticks are granted: the trace shows misses while
        // classical RTA (which cannot see windows) still says schedulable —
        // exactly the optimism the paper's approach eliminates.
        let comparison = compare(&windowed_config(20)).unwrap();
        assert!(!comparison.trace_schedulable);
        assert!(comparison.rta[0].schedulable);
        assert!(!comparison.classical_model_suffices());
        assert_eq!(
            comparison.optimistic_partitions,
            vec![PartitionId::from_raw(0)]
        );
    }

    #[test]
    fn assumptions_flag_marks_dependencies_and_other_policies() {
        let mut c = windowed_config(50);
        c.partitions[0].scheduler = SchedulerKind::Edf;
        let comparison = compare(&c).unwrap();
        assert!(!comparison.rta[0].assumptions_hold);
    }

    #[test]
    fn window_rta_sees_the_windows_classical_rta_misses() {
        // Same pair of configurations as the classical comparison above:
        // with the full hyperperiod granted, the window-supply test proves
        // schedulability; with only 20 of 50 ticks it refuses to — where
        // classical RTA would still (optimistically) say yes.
        let full = window_rta(&windowed_config(50));
        assert_eq!(full.len(), 1);
        assert!(full[0].assumptions_hold);
        assert!(full[0].schedulable);
        assert!(window_supply_rta(&windowed_config(50)).is_schedulable());

        let starved = window_rta(&windowed_config(20));
        assert!(starved[0].assumptions_hold);
        assert!(!starved[0].schedulable);
        assert!(window_supply_rta(&windowed_config(20)).is_undecided());
    }

    #[test]
    fn window_rta_marks_inapplicable_partitions() {
        let mut c = windowed_config(50);
        c.partitions[0].scheduler = SchedulerKind::Edf;
        let verdicts = window_rta(&c);
        assert!(!verdicts[0].assumptions_hold);
        assert!(!verdicts[0].schedulable);
        // An inapplicable partition forces the whole-config answer to
        // Undecided, never to Schedulable.
        assert!(window_supply_rta(&c).is_undecided());
    }
}
