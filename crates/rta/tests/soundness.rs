//! Soundness of classical RTA against the trace-based analysis.
//!
//! Classical response-time analysis models a task set that owns its whole
//! core. On exactly that class — FPPS, full-core windows, no incoming
//! messages — it is *sound*: RTA schedulable implies the simulation finds
//! no miss. The moment windows or link delays enter, RTA turns
//! optimistic; [`swa_rta::compare`] reports that as
//! `optimistic_partitions`, and the golden fixture corpus pins concrete
//! instances of both regimes.

use std::path::{Path, PathBuf};

use swa_ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, SchedulerKind,
    Task, Window,
};
use swa_rta::{compare, window_rta, window_supply_rta};
use swa_workload::rng::Rng64;
use swa_xmlio::configuration_from_xml;

/// A single full-core FPPS partition with a randomized task set —
/// exactly the model classical RTA assumes. Utilizations range from
/// comfortable to overloaded so both verdicts occur.
fn full_core_config(seed: u64) -> Configuration {
    let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1);
    let periods = [10i64, 20, 40];
    let n_tasks = 2 + rng.gen_range(4);
    let mut tasks = Vec::new();
    for t in 0..n_tasks {
        let period = periods[rng.gen_range(periods.len())];
        let wcet = 1 + i64::try_from(rng.gen_range(6)).expect("small");
        // Rate-monotonic, made unique by index so dispatch is tie-free.
        let t_i = i64::try_from(t).expect("small");
        let n_i = i64::try_from(n_tasks).expect("small");
        let priority = (40 / period) * n_i + (n_i - t_i);
        tasks.push(Task::new(format!("t{t}"), priority, vec![wcet], period));
    }
    let hyperperiod =
        swa_ima::util::lcm_all(tasks.iter().map(|t| t.period)).expect("positive periods");
    Configuration {
        core_types: vec![CoreType::new("generic")],
        modules: vec![Module::homogeneous("M0", 1, CoreTypeId::from_raw(0))],
        partitions: vec![Partition::new("P0", SchedulerKind::Fpps, tasks)],
        binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
        windows: vec![vec![Window::new(0, hyperperiod)]],
        messages: Vec::new(),
    }
}

/// RTA schedulable ⇒ simulation schedulable, over randomized full-core
/// task sets. The run also counts both verdicts so the property is not
/// vacuously true.
#[test]
fn rta_schedulable_implies_simulation_schedulable_on_full_core_sets() {
    let (mut said_yes, mut said_no) = (0u32, 0u32);
    for seed in 0..60 {
        let config = full_core_config(seed);
        config.validate().unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        let cmp = compare(&config).expect("analysis runs");
        let verdict = &cmp.rta[0];
        assert!(verdict.assumptions_hold, "seed {seed}: full-core FPPS must qualify");
        if verdict.schedulable {
            said_yes += 1;
            assert!(
                cmp.trace_schedulable,
                "seed {seed}: RTA said schedulable but the simulation found a miss"
            );
            assert!(cmp.classical_model_suffices(), "seed {seed}: optimism on a full core");
        } else {
            said_no += 1;
        }
    }
    assert!(said_yes >= 10, "corpus too overloaded to test the implication ({said_yes} yes)");
    assert!(said_no >= 10, "corpus too light to include RTA rejections ({said_no} no)");
}

/// Window-supply RTA is sound on the same randomized corpus: a
/// `Schedulable` whole-config verdict implies the simulation agrees, and
/// on full-core windows the test is applicable to every partition. The
/// corpus keeps both verdicts represented so neither implication is
/// vacuous.
#[test]
fn window_rta_schedulable_implies_simulation_schedulable() {
    let (mut said_yes, mut said_rest) = (0u32, 0u32);
    for seed in 0..60 {
        let config = full_core_config(seed);
        let verdicts = window_rta(&config);
        assert!(
            verdicts.iter().all(|v| v.assumptions_hold),
            "seed {seed}: full-core FPPS must qualify for the window-supply test"
        );
        let whole = window_supply_rta(&config);
        assert_eq!(
            whole.is_schedulable(),
            verdicts.iter().all(|v| v.schedulable),
            "seed {seed}: whole-config verdict must aggregate the per-partition ones"
        );
        if whole.is_schedulable() {
            said_yes += 1;
            let report = swa_core::analyze_configuration(&config).expect("analysis runs");
            assert!(
                report.schedulable(),
                "seed {seed}: window RTA said schedulable but the simulation found a miss"
            );
        } else {
            said_rest += 1;
        }
    }
    assert!(said_yes >= 10, "corpus too overloaded to test the implication ({said_yes} yes)");
    assert!(said_rest >= 10, "corpus too light to exercise refusals ({said_rest} undecided)");
}

/// On the full-core corpus the window-supply test is at least as strong
/// as classical RTA: every set classical RTA proves schedulable, the
/// window test (whose supply there is the identity) proves too.
#[test]
fn window_rta_generalizes_classical_rta_on_full_cores() {
    for seed in 0..60 {
        let config = full_core_config(seed);
        let cmp = compare(&config).expect("analysis runs");
        if cmp.rta[0].schedulable {
            assert!(
                window_supply_rta(&config).is_schedulable(),
                "seed {seed}: classical RTA passes but window RTA refuses on a full core"
            );
        }
    }
}

/// Response times computed by RTA upper-bound the completion the
/// simulation observes on a full core: the trace's verdict never
/// contradicts a finite response time within the deadline.
#[test]
fn rta_response_times_cover_the_simulated_worst_case() {
    for seed in [3u64, 11, 27] {
        let config = full_core_config(seed);
        let cmp = compare(&config).expect("analysis runs");
        let verdict = &cmp.rta[0];
        if verdict.response_times.iter().all(Option::is_some) {
            assert!(cmp.trace_schedulable, "seed {seed}");
        }
    }
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures")
}

fn load_fixture(name: &str) -> Configuration {
    let path = fixture_dir().join(name);
    let xml = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "fixture {} missing ({e}); bless the golden corpus first (SWA_UPDATE_GOLDEN=1 \
             cargo test --test golden)",
            path.display()
        )
    });
    configuration_from_xml(&xml).expect("fixture parses")
}

/// The golden FPPS fixture: windows restrict service, but the schedule
/// still fits — RTA and the trace agree, no optimism.
#[test]
fn fpps_fixture_agrees_with_rta() {
    let cmp = compare(&load_fixture("fpps.xml")).expect("analysis runs");
    assert!(cmp.trace_schedulable);
    assert!(cmp.classical_model_suffices());
    assert!(cmp.rta.iter().all(|v| v.schedulable));
}

/// The golden FPNPS fixture misses a deadline *because of* blocking that
/// the classical preemptive model cannot see: RTA's assumptions are
/// flagged as not holding, so its (optimistic) verdict is marked
/// inapplicable rather than trusted.
#[test]
fn fpnps_fixture_is_outside_rta_assumptions() {
    let cmp = compare(&load_fixture("fpnps.xml")).expect("analysis runs");
    assert!(!cmp.trace_schedulable, "the fixture pins a blocking-induced miss");
    assert!(
        cmp.rta.iter().all(|v| !v.assumptions_hold),
        "FPNPS partitions must not claim classical-model applicability"
    );
}

/// EDF is likewise outside the fixed-priority model.
#[test]
fn edf_fixture_is_outside_rta_assumptions() {
    let cmp = compare(&load_fixture("edf.xml")).expect("analysis runs");
    assert!(cmp.trace_schedulable);
    assert!(cmp.rta.iter().all(|v| !v.assumptions_hold));
}

/// The virtual-link fixture: the receiving partitions have incoming data
/// dependencies, so RTA's assumptions hold only for the pure sender.
#[test]
fn virtual_link_fixture_flags_receivers_as_inapplicable() {
    let config = load_fixture("virtual_link.xml");
    let cmp = compare(&config).expect("analysis runs");
    assert!(cmp.trace_schedulable);
    for (i, verdict) in cmp.rta.iter().enumerate() {
        let has_inputs = config
            .messages
            .iter()
            .any(|m| m.receiver.partition.index() == i);
        assert_eq!(
            verdict.assumptions_hold, !has_inputs,
            "partition {i}: applicability must track data dependencies"
        );
    }
}
