//! Partition-to-core binding by first-fit-decreasing bin packing on
//! utilization — the standard opening move of IMA allocation tools.

use swa_ima::{CoreRef, ModuleId, PartitionId};

use crate::problem::DesignProblem;

/// A binding decision with its per-core load for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Packing {
    /// Core chosen for each partition.
    pub binding: Vec<CoreRef>,
    /// Resulting utilization per core, in `DesignProblem` core order.
    pub core_loads: Vec<(CoreRef, f64)>,
}

/// Binds partitions to cores with first-fit decreasing: partitions in
/// decreasing utilization order, each placed on the least-loaded core that
/// keeps the load under `cap` (or the globally least-loaded core if none
/// fits).
///
/// Returns `None` when the problem has no cores.
#[must_use]
pub fn first_fit_decreasing(problem: &DesignProblem, cap: f64) -> Option<Packing> {
    // Enumerate cores.
    let mut cores: Vec<(CoreRef, swa_ima::CoreTypeId)> = Vec::new();
    for (mi, m) in problem.modules.iter().enumerate() {
        for (ci, c) in m.cores.iter().enumerate() {
            cores.push((
                CoreRef::new(
                    ModuleId::from_raw(u32::try_from(mi).ok()?),
                    u32::try_from(ci).ok()?,
                ),
                c.core_type,
            ));
        }
    }
    if cores.is_empty() {
        return None;
    }

    // Partitions in decreasing utilization (computed per candidate core's
    // type at placement time; for the sort we use the first core type).
    let mut order: Vec<PartitionId> = (0..problem.partitions.len())
        .map(|i| PartitionId::from_raw(u32::try_from(i).expect("partition count fits u32")))
        .collect();
    let sort_type = cores[0].1;
    order.sort_by(|a, b| {
        let ua = problem.partitions[a.index()].utilization_on(sort_type);
        let ub = problem.partitions[b.index()].utilization_on(sort_type);
        ub.partial_cmp(&ua).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut loads = vec![0.0f64; cores.len()];
    let mut binding = vec![cores[0].0; problem.partitions.len()];
    for pid in order {
        let p = &problem.partitions[pid.index()];
        // Least-loaded core that fits under the cap; else least-loaded.
        let mut best_fit: Option<usize> = None;
        let mut least: usize = 0;
        for (i, &(_, ct)) in cores.iter().enumerate() {
            let u = p.utilization_on(ct);
            if loads[i] + u <= cap && best_fit.is_none_or(|b| loads[i] < loads[b]) {
                best_fit = Some(i);
            }
            if loads[i] < loads[least] {
                least = i;
            }
        }
        let chosen = best_fit.unwrap_or(least);
        loads[chosen] += p.utilization_on(cores[chosen].1);
        binding[pid.index()] = cores[chosen].0;
    }

    Some(Packing {
        binding,
        core_loads: cores
            .iter()
            .map(|(c, _)| *c)
            .zip(loads.iter().copied())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::{CoreType, CoreTypeId, Module, Partition, SchedulerKind, Task};

    fn problem(utils: &[f64], cores: usize) -> DesignProblem {
        DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", cores, CoreTypeId::from_raw(0))],
            partitions: utils
                .iter()
                .enumerate()
                .map(|(i, &u)| {
                    #[allow(clippy::cast_possible_truncation)]
                    let wcet = ((u * 100.0).round() as i64).max(1);
                    Partition::new(
                        format!("P{i}"),
                        SchedulerKind::Fpps,
                        vec![Task::new("t", 1, vec![wcet], 100)],
                    )
                })
                .collect(),
            messages: vec![],
        }
    }

    #[test]
    fn spreads_partitions_across_cores() {
        let p = problem(&[0.4, 0.4, 0.4, 0.4], 2);
        let packing = first_fit_decreasing(&p, 0.9).unwrap();
        // Two per core, loads balanced.
        for (_, load) in &packing.core_loads {
            assert!((*load - 0.8).abs() < 1e-9, "load {load}");
        }
    }

    #[test]
    fn respects_cap_when_possible() {
        let p = problem(&[0.6, 0.5, 0.3], 2);
        let packing = first_fit_decreasing(&p, 0.95).unwrap();
        for (_, load) in &packing.core_loads {
            assert!(*load <= 0.95 + 1e-9, "load {load}");
        }
    }

    #[test]
    fn overflows_to_least_loaded_when_nothing_fits() {
        let p = problem(&[0.9, 0.9, 0.9], 2);
        let packing = first_fit_decreasing(&p, 1.0);
        let packing = packing.unwrap();
        // All bound somewhere, one core carries two partitions.
        assert_eq!(packing.binding.len(), 3);
        let max_load = packing
            .core_loads
            .iter()
            .map(|(_, l)| *l)
            .fold(0.0f64, f64::max);
        assert!(max_load > 1.0);
    }

    #[test]
    fn none_without_cores() {
        let mut p = problem(&[0.5], 1);
        p.modules.clear();
        assert!(first_fit_decreasing(&p, 1.0).is_none());
    }
}
