//! Repair hints from per-task sensitivity sweeps.
//!
//! The search loop's repair heuristics (window widening, rebinding) act
//! on *structure*; a sensitivity sweep tells it *where* the structure is
//! tight. [`repair_hints`] ranks the tasks of a
//! [`TaskSensitivity`](swa_sweep::TaskSensitivity) vector by ascending
//! WCET slack, so the caller can aim its next repair at the task whose
//! budget breaks first — and knows which tasks have headroom to give up.

use swa_ima::TaskRef;
use swa_sweep::{BreakdownOutcome, TaskSensitivity};

/// One ranked repair hint: a task and how close it is to its breakdown.
#[derive(Debug, Clone)]
pub struct RepairHint {
    /// The task the hint is about.
    pub task: TaskRef,
    /// Stable `<partition>/<task>` label from the sweep.
    pub label: String,
    /// WCET slack (`breakdown − 1`); `None` when no feasible factor was
    /// found at all — the system is broken at (or below) this task's
    /// current budget, which ranks it most critical.
    pub slack: Option<f64>,
    /// Human-readable suggestion for the repair loop's operator log.
    pub suggestion: String,
}

impl RepairHint {
    fn from_sensitivity(entry: &TaskSensitivity) -> Self {
        let slack = entry.slack();
        let suggestion = match (slack, entry.result.outcome) {
            (None, _) => format!(
                "{}: no feasible WCET scale found — shrink this task's budget or widen its partition's windows",
                entry.label
            ),
            (Some(s), BreakdownOutcome::NonMonotone) => format!(
                "{}: slack {s:.4} but the verdict flips non-monotonically — treat the bracket as advisory",
                entry.label
            ),
            (Some(s), _) if s < 0.25 => format!(
                "{}: tight (slack {s:.4}) — first candidate for more window time or a faster core",
                entry.label
            ),
            (Some(s), _) => format!(
                "{}: slack {s:.4} — headroom available; a donor if another task needs budget",
                entry.label
            ),
        };
        RepairHint {
            task: entry.task,
            label: entry.label.clone(),
            slack,
            suggestion,
        }
    }
}

/// Ranks a sensitivity vector by ascending slack: the tightest task —
/// the one whose WCET budget breaks the system first — comes first.
/// Tasks with no feasible factor at all rank ahead of everything.
#[must_use]
pub fn repair_hints(sensitivity: &[TaskSensitivity]) -> Vec<RepairHint> {
    let mut hints: Vec<RepairHint> = sensitivity.iter().map(RepairHint::from_sensitivity).collect();
    hints.sort_by(|a, b| {
        let ka = a.slack.unwrap_or(f64::NEG_INFINITY);
        let kb = b.slack.unwrap_or(f64::NEG_INFINITY);
        ka.total_cmp(&kb).then_with(|| a.label.cmp(&b.label))
    });
    hints
}

/// The single most critical hint (the tightest task), when the vector is
/// non-empty.
#[must_use]
pub fn repair_hint(sensitivity: &[TaskSensitivity]) -> Option<RepairHint> {
    repair_hints(sensitivity).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::PartitionId;
    use swa_sweep::{BreakdownResult, ProbeRecord};

    fn entry(label: &str, index: u32, lo: Option<f64>) -> TaskSensitivity {
        TaskSensitivity {
            task: TaskRef::new(PartitionId::from_raw(0), index),
            label: label.to_string(),
            result: BreakdownResult {
                outcome: if lo.is_some() {
                    BreakdownOutcome::Converged
                } else {
                    BreakdownOutcome::InfeasibleEverywhere
                },
                lo,
                hi: lo.map(|l| l + 0.01),
                records: vec![ProbeRecord {
                    factor: 1.0,
                    feasible: lo.is_some(),
                }],
                flips: vec![],
            },
        }
    }

    #[test]
    fn tightest_task_ranks_first() {
        let hints = repair_hints(&[
            entry("P/a", 0, Some(3.0)),
            entry("P/b", 1, Some(1.1)),
            entry("P/c", 2, Some(2.0)),
        ]);
        let labels: Vec<&str> = hints.iter().map(|h| h.label.as_str()).collect();
        assert_eq!(labels, ["P/b", "P/c", "P/a"]);
        assert!(hints[0].suggestion.contains("tight"), "{}", hints[0].suggestion);
        assert!(hints[2].suggestion.contains("headroom"), "{}", hints[2].suggestion);
    }

    #[test]
    fn infeasible_tasks_outrank_everything() {
        let top = repair_hint(&[entry("P/ok", 0, Some(1.5)), entry("P/broken", 1, None)])
            .expect("non-empty vector");
        assert_eq!(top.label, "P/broken");
        assert_eq!(top.slack, None);
        assert!(top.suggestion.contains("no feasible"), "{}", top.suggestion);
        assert!(repair_hint(&[]).is_none());
    }

    #[test]
    fn non_monotone_results_are_flagged_advisory() {
        let mut e = entry("P/odd", 0, Some(2.0));
        e.result.outcome = BreakdownOutcome::NonMonotone;
        e.result.flips = vec![(1.5, 2.0)];
        let hint = repair_hint(&[e]).unwrap();
        assert!(hint.suggestion.contains("advisory"), "{}", hint.suggestion);
    }

    /// End-to-end: a real sensitivity sweep over a two-task partition
    /// ranks the heavier task (less slack) as the first repair target.
    #[test]
    fn real_sweep_ranks_the_heavier_task_tighter() {
        use swa_ima::{
            Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition,
            SchedulerKind, Task, Window,
        };
        use swa_sweep::{SweepEngine, SweepOptions};
        let config = Configuration {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new(
                "P",
                SchedulerKind::Fpps,
                vec![
                    Task::new("heavy", 2, vec![20], 50),
                    Task::new("light", 1, vec![5], 50),
                ],
            )],
            binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
            windows: vec![vec![Window::new(0, 50)]],
            messages: vec![],
        };
        let mut engine = SweepEngine::new(config, SweepOptions::default()).unwrap();
        let vector = engine.sensitivity(|_| {}, || false).unwrap();
        let hints = repair_hints(&vector);
        assert_eq!(hints[0].label, "P/heavy");
        assert!(
            hints[0].slack.unwrap() < hints[1].slack.unwrap(),
            "heavy task must have less slack: {hints:?}"
        );
    }
}
