//! # swa-schedtool — IMA configuration search
//!
//! Reproduces the paper's Sect. 4 integration: a scheduling tool that
//! searches for a schedulable configuration, using the stopwatch-automata
//! model as its schedulability oracle. On every iteration the tool
//! proposes a candidate (`Bind` by first-fit-decreasing bin packing,
//! `Sched` by per-frame window synthesis), runs the model, and — exactly
//! as in the paper — discards unschedulable candidates and repairs the
//! windows/binding before the next attempt.
//!
//! * [`problem::DesignProblem`] — the open design problem (hardware +
//!   workload, binding and windows to be decided);
//! * [`binpack`] — first-fit-decreasing binding;
//! * [`search()`] — the iterative-repair loop with per-iteration records
//!   (check time, misses), which the S2 experiment reports;
//! * [`hint`] — ranks a `swa-sweep` per-task sensitivity vector into
//!   repair targets (tightest WCET slack first).

#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

pub mod binpack;
pub mod hint;
pub mod problem;
pub mod search;

pub use binpack::{first_fit_decreasing, Packing};
pub use hint::{repair_hint, repair_hints, RepairHint};
pub use problem::DesignProblem;
pub use search::{search, search_with, IterationRecord, SearchOptions, SearchOutcome};
