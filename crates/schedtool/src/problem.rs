//! Design problems: a configuration with the hardware and workload fixed
//! but the binding and window schedule left open — exactly what the
//! scheduling tool of the paper's Sect. 4 searches over.

use swa_ima::{Configuration, CoreType, Message, Module, Partition};

/// A partially specified system: everything except `Bind` and `Sched`.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignProblem {
    /// Processor core types.
    pub core_types: Vec<CoreType>,
    /// Hardware modules.
    pub modules: Vec<Module>,
    /// Partitions with their tasks and schedulers.
    pub partitions: Vec<Partition>,
    /// The data-flow graph.
    pub messages: Vec<Message>,
}

impl DesignProblem {
    /// Extracts the open design problem from a complete configuration
    /// (dropping its binding and windows).
    #[must_use]
    pub fn from_configuration(config: &Configuration) -> Self {
        Self {
            core_types: config.core_types.clone(),
            modules: config.modules.clone(),
            partitions: config.partitions.clone(),
            messages: config.messages.clone(),
        }
    }

    /// Assembles a candidate configuration from a binding and windows.
    #[must_use]
    pub fn candidate(
        &self,
        binding: Vec<swa_ima::CoreRef>,
        windows: Vec<Vec<swa_ima::Window>>,
    ) -> Configuration {
        Configuration {
            core_types: self.core_types.clone(),
            modules: self.modules.clone(),
            partitions: self.partitions.clone(),
            binding,
            windows,
            messages: self.messages.clone(),
        }
    }

    /// The hyperperiod of the problem's task set.
    #[must_use]
    pub fn hyperperiod(&self) -> Option<i64> {
        swa_ima::util::lcm_all(
            self.partitions
                .iter()
                .flat_map(|p| p.tasks.iter().map(|t| t.period)),
        )
    }

    /// The smallest task period (used as the window frame).
    #[must_use]
    pub fn min_period(&self) -> Option<i64> {
        self.partitions
            .iter()
            .flat_map(|p| p.tasks.iter().map(|t| t.period))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::{CoreTypeId, SchedulerKind, Task};

    #[test]
    fn problem_roundtrip_through_candidate() {
        let problem = DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new(
                "P",
                SchedulerKind::Fpps,
                vec![
                    Task::new("t", 1, vec![10], 50),
                    Task::new("u", 2, vec![5], 25),
                ],
            )],
            messages: vec![],
        };
        assert_eq!(problem.hyperperiod(), Some(50));
        assert_eq!(problem.min_period(), Some(25));
        let candidate = problem.candidate(
            vec![swa_ima::CoreRef::new(swa_ima::ModuleId::from_raw(0), 0)],
            vec![vec![swa_ima::Window::new(0, 50)]],
        );
        candidate.validate().unwrap();
        assert_eq!(DesignProblem::from_configuration(&candidate), problem);
    }
}
