//! The configuration-search loop: the paper's Sect. 4 integration, where a
//! scheduling tool repeatedly proposes candidate configurations, checks
//! each with the stopwatch-automata model, and keeps schedulable ones.
//!
//! The search here is the classic shape of IMA allocation tools (\[8\] of the
//! paper): bind partitions to cores by bin packing, synthesize a window
//! schedule, analyze; on deadline misses, widen the windows of the missing
//! partitions (iterative repair), occasionally re-binding the worst
//! offender to the least-loaded core.
//!
//! Candidate checking runs on the parallel batch engine
//! ([`swa_core::batch`]): every round the repair rule is unrolled into a
//! *speculative ladder* of [`SearchOptions::speculation`] candidates
//! (candidate `k` assumes the previously missing partitions keep missing
//! and widens their windows `k` times), and the whole ladder is checked
//! first-wins across [`SearchOptions::parallelism`] workers. Because the
//! engine's winner is deterministic (always the lowest candidate index),
//! the search finds the *same* configuration whatever the parallelism —
//! only faster.

use std::sync::Arc;
use std::time::Duration;

use swa_core::{
    canonicalize, compositional_lookup, Analyzer, CachedVerdict, LadderMode, PipelineError,
    Verdict, VerdictCache, VerdictLadder,
};
use swa_ima::{Configuration, CoreRef, PartitionId};
use swa_workload::{synthesize_windows, PartitionDemand};

use crate::binpack::first_fit_decreasing;
use crate::problem::DesignProblem;

/// Knobs of the search.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Give up after this many candidate evaluations.
    pub max_iterations: usize,
    /// Bin-packing utilization cap per core.
    pub utilization_cap: f64,
    /// Initial window over-provisioning factor.
    pub initial_boost: f64,
    /// Multiplier applied to a missing partition's boost each iteration.
    pub boost_step: f64,
    /// Speculative candidates proposed per round (the batch the engine
    /// checks first-wins). The candidate sequence — and therefore the
    /// found configuration — depends on this, but *not* on `parallelism`.
    pub speculation: usize,
    /// Worker threads for candidate checking; `0` means one per core.
    pub parallelism: usize,
    /// Analytic pre-filtering of candidates through the
    /// [`VerdictLadder`] (tiers T0–T2, see `swa_core::ladder`). Decided
    /// candidates skip the simulation; the found configuration is
    /// unchanged because the ladder's tiers are sound and the deepest
    /// speculative rung — whose simulated diagnostics drive the repair
    /// rule — is never pre-filtered. Off by default.
    pub ladder: LadderMode,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            utilization_cap: 0.85,
            initial_boost: 1.1,
            boost_step: 1.35,
            speculation: 4,
            parallelism: 0,
            ladder: LadderMode::Off,
        }
    }
}

/// One candidate evaluation.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub index: usize,
    /// The typed verdict for this candidate; an unschedulable diagnosis
    /// names the missing partitions and their modules.
    pub verdict: Verdict,
    /// The verdict for this candidate (the boolean shadow of
    /// [`verdict`](Self::verdict), kept for older callers).
    pub schedulable: bool,
    /// Number of missed jobs.
    pub missed_jobs: usize,
    /// Partitions that had at least one miss.
    pub missing_partitions: Vec<PartitionId>,
    /// Wall-clock time of the schedulability check (model construction +
    /// interpretation + analysis).
    pub check_time: Duration,
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// A schedulable configuration, if one was found.
    pub configuration: Option<Configuration>,
    /// Every candidate evaluated, in order.
    pub iterations: Vec<IterationRecord>,
}

impl SearchOutcome {
    /// Whether the search succeeded.
    #[must_use]
    pub fn found(&self) -> bool {
        self.configuration.is_some()
    }

    /// Total schedulability-checking time across iterations.
    #[must_use]
    pub fn total_check_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.check_time).sum()
    }
}

/// Searches for a schedulable configuration of the problem.
///
/// The outcome is deterministic for a given problem and options —
/// [`SearchOptions::parallelism`] changes only how fast candidates are
/// checked, never which configuration is found.
///
/// # Errors
///
/// Propagates [`PipelineError`]s from candidate evaluation (structural
/// problems in the generated candidates indicate bugs, not unschedulable
/// workloads) and reports a schema-level problem when the problem has no
/// cores or an undefined hyperperiod.
pub fn search(
    problem: &DesignProblem,
    options: &SearchOptions,
) -> Result<SearchOutcome, PipelineError> {
    search_impl(problem, options, None, &Analyzer::configure())
}

/// [`search`], with candidate checking configured by an [`Analyzer`] — the
/// one entry point behind every store combination.
///
/// The analyzer contributes its engine, tie-break order, checkpoint store,
/// verdict cache and [`compositional`](Analyzer::compositional) setting to
/// every candidate evaluation; batch parallelism comes from
/// [`SearchOptions::parallelism`] (the search's own knob). The stores
/// compose:
///
/// * the **verdict cache** short-circuits *exact repeats* before any model
///   is built — every ladder candidate is canonicalized
///   ([`swa_core::canon`]) and probed first; known verdicts skip the batch
///   engine entirely (their [`IterationRecord::check_time`] is zero), and
///   freshly evaluated candidates are inserted for the next round — or the
///   next search: the window-synthesis quantization makes distinct rounds
///   regenerate identical configurations. Under compositional analysis the
///   probe is [`compositional_lookup`], so a candidate whose modules were
///   each seen before — in *different* earlier candidates — is answered by
///   composition without any simulation;
/// * the **checkpoint store** warm-starts the simulations that still have
///   to run — a revisited candidate resumes from its stored end state
///   instead of replaying from t = 0, per module when compositional, and a
///   later longer-horizon validation of the found configuration (see
///   [`Analyzer::checkpoints`]) picks up the checkpoints this search left
///   behind.
///
/// All of it is exact, so the found configuration — and every iteration
/// verdict — is identical whatever the analyzer settings: cached and
/// composed verdicts equal computed ones, and the first-wins winner rule
/// is applied to the merged (cached + evaluated) verdict sequence.
///
/// # Errors
///
/// Same contract as [`search`].
pub fn search_with(
    problem: &DesignProblem,
    options: &SearchOptions,
    analyzer: &Analyzer<'_>,
) -> Result<SearchOutcome, PipelineError> {
    let cache = analyzer.verdict_cache().cloned();
    search_impl(problem, options, cache.as_deref(), analyzer)
}

/// The search loop. `cache` is the probe/insert handle; when the
/// `analyzer` carries its own cache the evaluation path inserts results
/// itself and this function only probes.
fn search_impl(
    problem: &DesignProblem,
    options: &SearchOptions,
    cache: Option<&dyn VerdictCache>,
    analyzer: &Analyzer<'_>,
) -> Result<SearchOutcome, PipelineError> {
    let hyperperiod = problem.hyperperiod().ok_or_else(bad_problem)?;
    let frame = problem.min_period().ok_or_else(bad_problem)?;
    let mut packing =
        first_fit_decreasing(problem, options.utilization_cap).ok_or_else(bad_problem)?;

    let ladder = VerdictLadder::new(options.ladder);
    let mut boosts = vec![options.initial_boost; problem.partitions.len()];
    // Which partitions the next repair escalates. Before any verdict the
    // best guess is "all of them"; afterwards, the ones that just missed.
    let mut predicted: Vec<PartitionId> = (0..problem.partitions.len())
        .map(|i| PartitionId::from_raw(u32::try_from(i).expect("partition count fits u32")))
        .collect();
    let mut iterations = Vec::new();
    let mut stuck_count = 0usize;
    let mut last_missed = usize::MAX;

    while iterations.len() < options.max_iterations {
        // Unroll the repair rule into a speculative ladder: candidate k
        // has the predicted-missing partitions widened k times.
        let budget = (options.max_iterations - iterations.len()).min(options.speculation.max(1));
        let mut candidates = Vec::with_capacity(budget);
        let mut ladder_boosts = Vec::with_capacity(budget);
        let mut rung = boosts.clone();
        for k in 0..budget {
            if k > 0 {
                for pid in &predicted {
                    rung[pid.index()] *= options.boost_step;
                }
            }
            let windows = synthesize(problem, &packing.binding, &rung, hyperperiod, frame);
            candidates.push(problem.candidate(packing.binding.clone(), windows));
            ladder_boosts.push(rung.clone());
        }

        // Probe the cache: ladder candidates regenerated by the window
        // quantization (and whole re-runs of a search) hit here and skip
        // the batch engine. Under compositional analysis the probe also
        // composes a whole verdict from per-module entries, so a candidate
        // is served even when only its *modules* were seen before.
        let hp = analyzer.hyperperiods();
        let mut known: Vec<Option<Arc<CachedVerdict>>> = match cache {
            Some(cache) if analyzer.is_compositional() => candidates
                .iter()
                .map(|c| compositional_lookup(cache, c, hp))
                .collect(),
            Some(cache) => candidates
                .iter()
                .map(|c| cache.lookup(&canonicalize(c, hp)))
                .collect(),
            None => vec![None; candidates.len()],
        };
        // Analytic pre-filter: let the ladder decide candidates the cache
        // could not, *except the deepest rung* — when no winner emerges
        // this round, the repair rule reads the deepest rung's simulated
        // diagnostics, and those must stay identical to a ladder-off run.
        // Ladder verdicts are not inserted into the cache (they carry no
        // job-level counts) and only cover a single hyperperiod.
        if ladder.mode() != LadderMode::Off && hp == 1 {
            let noop = swa_core::NoopRecorder;
            let recorder: &dyn swa_core::Recorder = analyzer
                .attached_recorder()
                .map_or(&noop, |r| r.as_ref());
            for (k, slot) in known.iter_mut().enumerate().take(candidates.len() - 1) {
                if slot.is_none() {
                    if let Some(decision) = ladder.evaluate(&candidates[k], recorder) {
                        *slot =
                            Some(Arc::new(CachedVerdict::from_ladder(&decision, &candidates[k])));
                    }
                }
            }
        }
        let cached_winner = known
            .iter()
            .position(|v| v.as_ref().is_some_and(|v| v.schedulable));

        // Evaluate only unknown candidates that could still win (indices
        // past a cached schedulable verdict can never be the first-wins
        // winner).
        let horizon = cached_winner.unwrap_or(candidates.len());
        let subset_idx: Vec<usize> = (0..horizon).filter(|&k| known[k].is_none()).collect();
        let subset: Vec<Configuration> =
            subset_idx.iter().map(|&k| candidates[k].clone()).collect();
        let batch = if subset.is_empty() {
            None
        } else {
            Some(
                analyzer
                    .clone()
                    .parallelism(options.parallelism)
                    .first_schedulable(&subset)?,
            )
        };
        // An analyzer carrying its own cache inserts during evaluation
        // (whole and — compositionally — per-module keys); only the
        // borrowed-cache entry points insert here.
        if analyzer.verdict_cache().is_none() {
            if let (Some(cache), Some(batch)) = (cache, &batch) {
                for (pos, result) in batch.results.iter().enumerate() {
                    if let Some(result) = result.as_ref() {
                        cache.insert(
                            &canonicalize(&candidates[subset_idx[pos]], hp),
                            Arc::new(CachedVerdict::from_report(&result.report)),
                        );
                    }
                }
            }
        }
        let subset_winner = batch
            .as_ref()
            .and_then(|b| b.winner)
            .map(|w| subset_idx[w]);
        // Merged first-wins winner: the subset only covers indices below
        // any cached schedulable candidate, so the minimum is correct.
        let winner = match (cached_winner, subset_winner) {
            (Some(c), Some(s)) => Some(c.min(s)),
            (c, s) => c.or(s),
        };

        // Record the deterministic evaluated prefix (up to and including
        // the winner; everything, when there is none) from the merged
        // cached + evaluated verdicts.
        let record_of = |k: usize| -> IterationRecord {
            if let Some(v) = &known[k] {
                return IterationRecord {
                    index: 0,
                    verdict: v.verdict_in(&candidates[k]),
                    schedulable: v.schedulable,
                    missed_jobs: v.missed_jobs,
                    missing_partitions: v.missing_partitions.clone(),
                    check_time: Duration::ZERO,
                };
            }
            let pos = subset_idx
                .iter()
                .position(|&i| i == k)
                .expect("uncached prefix candidate was batched");
            let result = batch
                .as_ref()
                .and_then(|b| b.results[pos].as_ref())
                .expect("prefix is always evaluated");
            IterationRecord {
                index: 0,
                verdict: result.report.verdict_in(&candidates[k]),
                schedulable: result.report.schedulable(),
                missed_jobs: result.report.analysis.missed_jobs().count(),
                missing_partitions: missing_partitions(result.report.analysis.missed_jobs()),
                check_time: result.report.metrics.total(),
            }
        };
        let upto = winner.map_or(candidates.len(), |w| w + 1);
        for k in 0..upto {
            let mut record = record_of(k);
            record.index = iterations.len();
            iterations.push(record);
        }

        if let Some(w) = winner {
            return Ok(SearchOutcome {
                configuration: Some(candidates.swap_remove(w)),
                iterations,
            });
        }

        // Repair from the deepest rung's diagnostics: adopt its boosts,
        // widen the partitions that still missed there, and predict they
        // miss again.
        let deepest = record_of(candidates.len() - 1);
        let missed = deepest.missing_partitions;
        let missed_jobs = deepest.missed_jobs;
        boosts = ladder_boosts.pop().expect("nonempty ladder");
        for pid in &missed {
            boosts[pid.index()] *= options.boost_step;
        }
        if !missed.is_empty() {
            predicted = missed.clone();
        }

        // If misses stopped improving, re-bind the worst offender to the
        // least-loaded core.
        if missed_jobs >= last_missed {
            stuck_count += 1;
        } else {
            stuck_count = 0;
        }
        last_missed = missed_jobs;
        if stuck_count >= 2 {
            if let Some(&worst) = missed.first() {
                rebind_to_least_loaded(problem, &mut packing.binding, worst);
                boosts[worst.index()] = options.initial_boost;
                stuck_count = 0;
            }
        }
    }

    Ok(SearchOutcome {
        configuration: None,
        iterations,
    })
}

/// Sorted, deduplicated partitions with at least one missed job.
fn missing_partitions<'a>(
    missed_jobs: impl Iterator<Item = &'a swa_core::JobOutcome>,
) -> Vec<PartitionId> {
    let mut ps: Vec<PartitionId> = missed_jobs.map(|j| j.task.partition).collect();
    ps.sort_unstable();
    ps.dedup();
    ps
}

fn bad_problem() -> PipelineError {
    PipelineError::Model(swa_core::ModelError::InvalidConfig(vec![
        swa_ima::ConfigError::NoModules,
    ]))
}

/// Builds per-partition window sets for a binding with per-partition
/// boosts.
fn synthesize(
    problem: &DesignProblem,
    binding: &[CoreRef],
    boosts: &[f64],
    hyperperiod: i64,
    frame: i64,
) -> Vec<Vec<swa_ima::Window>> {
    let mut windows: Vec<Vec<swa_ima::Window>> = vec![Vec::new(); problem.partitions.len()];
    // Group partitions per core, preserving partition order.
    let mut cores: Vec<CoreRef> = binding.to_vec();
    cores.sort_unstable();
    cores.dedup();
    for core in cores {
        let members: Vec<usize> = binding
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == core)
            .map(|(i, _)| i)
            .collect();
        let core_type = core_type_of(problem, core);
        let demands: Vec<PartitionDemand> = members
            .iter()
            .map(|&i| PartitionDemand {
                utilization: problem.partitions[i].utilization_on(core_type) * boosts[i],
            })
            .collect();
        let sets = synthesize_windows(hyperperiod, frame, &demands, 1.0);
        for (&i, set) in members.iter().zip(sets) {
            windows[i] = set;
        }
    }
    windows
}

fn core_type_of(problem: &DesignProblem, core: CoreRef) -> swa_ima::CoreTypeId {
    problem.modules[core.module.index()].cores[core.core as usize].core_type
}

fn rebind_to_least_loaded(problem: &DesignProblem, binding: &mut [CoreRef], pid: PartitionId) {
    // Compute loads and pick the least-loaded core different from the
    // current one.
    let mut cores: Vec<CoreRef> = Vec::new();
    for (mi, m) in problem.modules.iter().enumerate() {
        for ci in 0..m.cores.len() {
            cores.push(CoreRef::new(
                swa_ima::ModuleId::from_raw(u32::try_from(mi).expect("module count fits u32")),
                u32::try_from(ci).expect("core count fits u32"),
            ));
        }
    }
    if cores.len() < 2 {
        return;
    }
    let load = |core: CoreRef| -> f64 {
        let ct = core_type_of(problem, core);
        binding
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == core)
            .map(|(i, _)| problem.partitions[i].utilization_on(ct))
            .sum()
    };
    let current = binding[pid.index()];
    if let Some(best) = least_loaded(cores, current, load) {
        binding[pid.index()] = best;
    }
}

/// The least-loaded core other than `current`. Loads are ordered with
/// [`f64::total_cmp`], which gives NaN a fixed place above every number —
/// a NaN-scored candidate (a degenerate utilization like 0/0) can then
/// never win, and ties resolve to the first candidate in declaration
/// order, keeping the search deterministic. The previous
/// `partial_cmp(..).unwrap_or(Equal)` treated NaN as equal to everything,
/// which made the winner depend on candidate order around the NaN.
fn least_loaded(
    cores: Vec<CoreRef>,
    current: CoreRef,
    load: impl Fn(CoreRef) -> f64,
) -> Option<CoreRef> {
    cores
        .into_iter()
        .filter(|c| *c != current)
        .min_by(|a, b| load(*a).total_cmp(&load(*b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_core::analyze_configuration;
    use swa_ima::{CoreType, CoreTypeId, Module, Partition, SchedulerKind, Task};

    fn two_partition_problem(cores: usize) -> DesignProblem {
        DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", cores, CoreTypeId::from_raw(0))],
            partitions: vec![
                Partition::new(
                    "control",
                    SchedulerKind::Fpps,
                    vec![
                        Task::new("law", 2, vec![10], 50),
                        Task::new("log", 1, vec![10], 100),
                    ],
                ),
                Partition::new(
                    "io",
                    SchedulerKind::Fpps,
                    vec![Task::new("poll", 1, vec![15], 100)],
                ),
            ],
            messages: vec![],
        }
    }

    #[test]
    fn least_loaded_is_nan_safe() {
        let c = |core: u32| CoreRef::new(swa_ima::ModuleId::from_raw(0), core);
        let cores = vec![c(0), c(1), c(2)];
        // Core 1's load is NaN (a degenerate utilization); it must lose to
        // the finite minimum instead of poisoning the comparison.
        let load = |core: CoreRef| -> f64 {
            match core.core {
                1 => f64::NAN,
                2 => 0.25,
                _ => 1.0,
            }
        };
        assert_eq!(least_loaded(cores.clone(), c(0), load), Some(c(2)));
        // Candidate order around the NaN must not change the winner.
        let reversed: Vec<CoreRef> = cores.iter().rev().copied().collect();
        assert_eq!(least_loaded(reversed, c(0), load), Some(c(2)));
        // All-NaN loads still give a deterministic (first) pick.
        assert_eq!(least_loaded(cores, c(2), |_| f64::NAN), Some(c(0)));
    }

    #[test]
    fn finds_schedulable_configuration_on_one_core() {
        let problem = two_partition_problem(1);
        let outcome = search(&problem, &SearchOptions::default()).unwrap();
        assert!(outcome.found(), "iterations: {:#?}", outcome.iterations);
        let config = outcome.configuration.unwrap();
        config.validate().unwrap();
        // Verify the found configuration really is schedulable.
        let report = analyze_configuration(&config).unwrap();
        assert!(report.schedulable());
    }

    #[test]
    fn finds_schedulable_configuration_on_two_cores() {
        let problem = two_partition_problem(2);
        let outcome = search(&problem, &SearchOptions::default()).unwrap();
        assert!(outcome.found());
        // With two cores the bin packer separates the partitions.
        let config = outcome.configuration.unwrap();
        assert_ne!(config.binding[0], config.binding[1]);
    }

    #[test]
    fn reports_failure_on_impossible_problem() {
        // Utilization 1.5 on a single core can never be schedulable.
        let problem = DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![
                Partition::new(
                    "a",
                    SchedulerKind::Fpps,
                    vec![Task::new("t", 1, vec![80], 100)],
                ),
                Partition::new(
                    "b",
                    SchedulerKind::Fpps,
                    vec![Task::new("t", 1, vec![70], 100)],
                ),
            ],
            messages: vec![],
        };
        let outcome = search(
            &problem,
            &SearchOptions {
                max_iterations: 5,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.found());
        assert_eq!(outcome.iterations.len(), 5);
        assert!(outcome.iterations.iter().all(|i| !i.schedulable));
    }

    #[test]
    fn iteration_records_carry_diagnostics() {
        let problem = two_partition_problem(1);
        let outcome = search(&problem, &SearchOptions::default()).unwrap();
        let last = outcome.iterations.last().unwrap();
        assert!(last.schedulable);
        assert_eq!(last.missed_jobs, 0);
        assert!(outcome.total_check_time() > Duration::ZERO);
    }

    #[test]
    fn cached_search_finds_the_same_configuration() {
        let cache = Arc::new(swa_core::ShardedVerdictCache::new(1 << 22));
        for problem in [two_partition_problem(1), two_partition_problem(2)] {
            let baseline = search(&problem, &SearchOptions::default()).unwrap();
            let analyzer = Analyzer::configure().cache(cache.clone());
            let cached = search_with(&problem, &SearchOptions::default(), &analyzer).unwrap();
            assert_eq!(baseline.configuration, cached.configuration);
            assert_eq!(baseline.iterations.len(), cached.iterations.len());
            for (b, c) in baseline.iterations.iter().zip(&cached.iterations) {
                assert_eq!(b.schedulable, c.schedulable);
                assert_eq!(b.missed_jobs, c.missed_jobs);
                assert_eq!(b.missing_partitions, c.missing_partitions);
            }
        }
    }

    #[test]
    fn repeated_search_is_served_from_the_cache() {
        let problem = two_partition_problem(1);
        let options = SearchOptions::default();
        let cache = Arc::new(swa_core::ShardedVerdictCache::new(1 << 22));
        let analyzer = Analyzer::configure().cache(cache.clone());

        let first = search_with(&problem, &options, &analyzer).unwrap();
        let after_first = cache.stats();
        assert!(after_first.insertions > 0, "first run populates the cache");

        let second = search_with(&problem, &options, &analyzer).unwrap();
        let after_second = cache.stats();

        assert_eq!(first.configuration, second.configuration);
        assert_eq!(first.iterations.len(), second.iterations.len());
        // The second run re-simulated nothing: no new insertions, every
        // probed candidate was a hit, and the per-iteration check time is
        // the cache's O(1) zero.
        assert_eq!(after_second.insertions, after_first.insertions);
        assert!(after_second.hits > after_first.hits);
        assert!(second.iterations.iter().all(|i| i.check_time == Duration::ZERO));
        assert!(second.total_check_time() == Duration::ZERO);
    }

    #[test]
    fn checkpointed_search_finds_the_same_configuration() {
        use swa_core::{CheckpointStore, ShardedCheckpointStore};

        for problem in [two_partition_problem(1), two_partition_problem(2)] {
            let baseline = search(&problem, &SearchOptions::default()).unwrap();
            let store = Arc::new(ShardedCheckpointStore::new(1 << 22));
            let analyzer =
                Analyzer::configure().checkpoints(store.clone() as Arc<dyn CheckpointStore>);
            let warm = search_with(&problem, &SearchOptions::default(), &analyzer).unwrap();
            assert_eq!(baseline.configuration, warm.configuration);
            assert_eq!(baseline.iterations.len(), warm.iterations.len());
            for (b, w) in baseline.iterations.iter().zip(&warm.iterations) {
                assert_eq!(b.schedulable, w.schedulable);
                assert_eq!(b.missed_jobs, w.missed_jobs);
                assert_eq!(b.missing_partitions, w.missing_partitions);
            }
            assert!(store.stats().insertions > 0, "candidates were checkpointed");

            // The found configuration's longer-horizon validation resumes
            // from the checkpoint the search left behind.
            if let Some(config) = &warm.configuration {
                let before = store.stats();
                let report = Analyzer::new(config)
                    .horizon(2)
                    .checkpoints(store.clone() as Arc<dyn CheckpointStore>)
                    .run()
                    .unwrap();
                assert!(report.schedulable());
                assert_eq!(store.stats().hits, before.hits + 1);
            }
        }
    }

    fn two_module_problem() -> DesignProblem {
        DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![
                Module::homogeneous("A", 1, CoreTypeId::from_raw(0)),
                Module::homogeneous("B", 1, CoreTypeId::from_raw(0)),
            ],
            partitions: vec![
                Partition::new("p0", SchedulerKind::Fpps, vec![Task::new("t", 1, vec![20], 100)]),
                Partition::new("p1", SchedulerKind::Fpps, vec![Task::new("t", 1, vec![30], 100)]),
                Partition::new("p2", SchedulerKind::Fpps, vec![Task::new("t", 1, vec![25], 100)]),
            ],
            messages: vec![],
        }
    }

    #[test]
    fn compositional_search_finds_the_same_configuration() {
        for problem in [two_partition_problem(2), two_module_problem()] {
            let baseline = search(&problem, &SearchOptions::default()).unwrap();
            let cache = Arc::new(swa_core::ShardedVerdictCache::new(1 << 22));
            let store = Arc::new(swa_core::ShardedCheckpointStore::new(1 << 22));
            let analyzer = Analyzer::configure()
                .compositional(true)
                .cache(cache.clone())
                .checkpoints(store.clone());
            let composed = search_with(&problem, &SearchOptions::default(), &analyzer).unwrap();
            assert_eq!(baseline.configuration, composed.configuration);
            assert_eq!(baseline.iterations.len(), composed.iterations.len());
            for (b, c) in baseline.iterations.iter().zip(&composed.iterations) {
                assert_eq!(b.schedulable, c.schedulable);
                assert_eq!(b.missed_jobs, c.missed_jobs);
                assert_eq!(b.missing_partitions, c.missing_partitions);
            }
        }
    }

    #[test]
    fn iteration_verdicts_are_typed() {
        let problem = two_partition_problem(1);
        let outcome = search(&problem, &SearchOptions::default()).unwrap();
        for record in &outcome.iterations {
            assert_eq!(record.verdict.is_schedulable(), record.schedulable);
            if let Some(diagnosis) = record.verdict.diagnosis() {
                assert_eq!(diagnosis.missed_jobs, record.missed_jobs);
                assert_eq!(diagnosis.missing_partitions, record.missing_partitions);
            }
        }
    }

    #[test]
    fn ladder_prefilter_does_not_change_the_found_configuration() {
        for problem in [
            two_partition_problem(1),
            two_partition_problem(2),
            two_module_problem(),
        ] {
            let baseline = search(&problem, &SearchOptions::default()).unwrap();
            for mode in [LadderMode::Fast, LadderMode::Full] {
                let laddered = search(
                    &problem,
                    &SearchOptions {
                        ladder: mode,
                        ..SearchOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    laddered.configuration, baseline.configuration,
                    "ladder {mode} must not change the found configuration"
                );
                assert_eq!(laddered.iterations.len(), baseline.iterations.len());
                for (l, b) in laddered.iterations.iter().zip(&baseline.iterations) {
                    assert_eq!(l.schedulable, b.schedulable, "ladder {mode}");
                }
            }
        }
    }

    #[test]
    fn ladder_prefilter_skips_simulations_on_impossible_problems() {
        // Utilization 1.5 on one core: T0 decides every non-deepest rung
        // without simulating it, and the outcome still reports failure on
        // every iteration.
        let problem = DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![
                Partition::new(
                    "a",
                    SchedulerKind::Fpps,
                    vec![Task::new("t", 1, vec![80], 100)],
                ),
                Partition::new(
                    "b",
                    SchedulerKind::Fpps,
                    vec![Task::new("t", 1, vec![70], 100)],
                ),
            ],
            messages: vec![],
        };
        let recorder = Arc::new(swa_core::MetricsRecorder::new());
        let analyzer = Analyzer::configure().recorder(recorder.clone());
        let options = SearchOptions {
            max_iterations: 5,
            ladder: LadderMode::Fast,
            ..SearchOptions::default()
        };
        let outcome = search_with(&problem, &options, &analyzer).unwrap();
        assert!(!outcome.found());
        assert!(outcome.iterations.iter().all(|i| !i.schedulable));
        assert!(
            recorder.counter_value("ladder.t0_unschedulable") > 0,
            "the overload must be caught analytically"
        );
        // Ladder-decided iterations are the zero-check-time ones.
        assert!(outcome
            .iterations
            .iter()
            .any(|i| i.check_time == Duration::ZERO));
    }

    #[test]
    fn parallelism_does_not_change_the_found_configuration() {
        for problem in [two_partition_problem(1), two_partition_problem(2)] {
            let sequential = search(
                &problem,
                &SearchOptions {
                    parallelism: 1,
                    ..SearchOptions::default()
                },
            )
            .unwrap();
            for parallelism in [2usize, 4] {
                let parallel = search(
                    &problem,
                    &SearchOptions {
                        parallelism,
                        ..SearchOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    parallel.configuration, sequential.configuration,
                    "parallelism {parallelism}"
                );
                assert_eq!(
                    parallel.iterations.len(),
                    sequential.iterations.len(),
                    "parallelism {parallelism}"
                );
            }
        }
    }
}
