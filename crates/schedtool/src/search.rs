//! The configuration-search loop: the paper's Sect. 4 integration, where a
//! scheduling tool repeatedly proposes candidate configurations, checks
//! each with the stopwatch-automata model, and keeps schedulable ones.
//!
//! The search here is the classic shape of IMA allocation tools (\[8\] of the
//! paper): bind partitions to cores by bin packing, synthesize a window
//! schedule, analyze; on deadline misses, widen the windows of the missing
//! partitions (iterative repair), occasionally re-binding the worst
//! offender to the least-loaded core.

use std::time::Duration;

use swa_core::{analyze_configuration, PipelineError};
use swa_ima::{Configuration, CoreRef, PartitionId};
use swa_workload::{synthesize_windows, PartitionDemand};

use crate::binpack::first_fit_decreasing;
use crate::problem::DesignProblem;

/// Knobs of the search.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Give up after this many candidate evaluations.
    pub max_iterations: usize,
    /// Bin-packing utilization cap per core.
    pub utilization_cap: f64,
    /// Initial window over-provisioning factor.
    pub initial_boost: f64,
    /// Multiplier applied to a missing partition's boost each iteration.
    pub boost_step: f64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            utilization_cap: 0.85,
            initial_boost: 1.1,
            boost_step: 1.35,
        }
    }
}

/// One candidate evaluation.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub index: usize,
    /// The verdict for this candidate.
    pub schedulable: bool,
    /// Number of missed jobs.
    pub missed_jobs: usize,
    /// Partitions that had at least one miss.
    pub missing_partitions: Vec<PartitionId>,
    /// Wall-clock time of the schedulability check (model construction +
    /// interpretation + analysis).
    pub check_time: Duration,
}

/// The result of a search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// A schedulable configuration, if one was found.
    pub configuration: Option<Configuration>,
    /// Every candidate evaluated, in order.
    pub iterations: Vec<IterationRecord>,
}

impl SearchOutcome {
    /// Whether the search succeeded.
    #[must_use]
    pub fn found(&self) -> bool {
        self.configuration.is_some()
    }

    /// Total schedulability-checking time across iterations.
    #[must_use]
    pub fn total_check_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.check_time).sum()
    }
}

/// Searches for a schedulable configuration of the problem.
///
/// # Errors
///
/// Propagates [`PipelineError`]s from candidate evaluation (structural
/// problems in the generated candidates indicate bugs, not unschedulable
/// workloads) and reports a schema-level problem when the problem has no
/// cores or an undefined hyperperiod.
pub fn search(
    problem: &DesignProblem,
    options: &SearchOptions,
) -> Result<SearchOutcome, PipelineError> {
    let hyperperiod = problem.hyperperiod().ok_or_else(bad_problem)?;
    let frame = problem.min_period().ok_or_else(bad_problem)?;
    let mut packing =
        first_fit_decreasing(problem, options.utilization_cap).ok_or_else(bad_problem)?;

    let mut boosts = vec![options.initial_boost; problem.partitions.len()];
    let mut iterations = Vec::new();
    let mut stuck_count = 0usize;
    let mut last_missed = usize::MAX;

    for index in 0..options.max_iterations {
        let windows = synthesize(problem, &packing.binding, &boosts, hyperperiod, frame);
        let candidate = problem.candidate(packing.binding.clone(), windows);
        let report = analyze_configuration(&candidate)?;
        let missed: Vec<PartitionId> = {
            let mut ps: Vec<PartitionId> = report
                .analysis
                .missed_jobs()
                .map(|j| j.task.partition)
                .collect();
            ps.sort_unstable();
            ps.dedup();
            ps
        };
        let missed_jobs = report.analysis.missed_jobs().count();
        iterations.push(IterationRecord {
            index,
            schedulable: report.schedulable(),
            missed_jobs,
            missing_partitions: missed.clone(),
            check_time: report.metrics.total(),
        });

        if report.schedulable() {
            return Ok(SearchOutcome {
                configuration: Some(candidate),
                iterations,
            });
        }

        // Repair: widen the windows of every missing partition.
        for pid in &missed {
            boosts[pid.index()] *= options.boost_step;
        }
        // If misses stopped improving, re-bind the worst offender to the
        // least-loaded core.
        if missed_jobs >= last_missed {
            stuck_count += 1;
        } else {
            stuck_count = 0;
        }
        last_missed = missed_jobs;
        if stuck_count >= 2 {
            if let Some(&worst) = missed.first() {
                rebind_to_least_loaded(problem, &mut packing.binding, worst);
                boosts[worst.index()] = options.initial_boost;
                stuck_count = 0;
            }
        }
    }

    Ok(SearchOutcome {
        configuration: None,
        iterations,
    })
}

fn bad_problem() -> PipelineError {
    PipelineError::Model(swa_core::ModelError::InvalidConfig(vec![
        swa_ima::ConfigError::NoModules,
    ]))
}

/// Builds per-partition window sets for a binding with per-partition
/// boosts.
fn synthesize(
    problem: &DesignProblem,
    binding: &[CoreRef],
    boosts: &[f64],
    hyperperiod: i64,
    frame: i64,
) -> Vec<Vec<swa_ima::Window>> {
    let mut windows: Vec<Vec<swa_ima::Window>> = vec![Vec::new(); problem.partitions.len()];
    // Group partitions per core, preserving partition order.
    let mut cores: Vec<CoreRef> = binding.to_vec();
    cores.sort_unstable();
    cores.dedup();
    for core in cores {
        let members: Vec<usize> = binding
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == core)
            .map(|(i, _)| i)
            .collect();
        let core_type = core_type_of(problem, core);
        let demands: Vec<PartitionDemand> = members
            .iter()
            .map(|&i| PartitionDemand {
                utilization: problem.partitions[i].utilization_on(core_type) * boosts[i],
            })
            .collect();
        let sets = synthesize_windows(hyperperiod, frame, &demands, 1.0);
        for (&i, set) in members.iter().zip(sets) {
            windows[i] = set;
        }
    }
    windows
}

fn core_type_of(problem: &DesignProblem, core: CoreRef) -> swa_ima::CoreTypeId {
    problem.modules[core.module.index()].cores[core.core as usize].core_type
}

fn rebind_to_least_loaded(problem: &DesignProblem, binding: &mut [CoreRef], pid: PartitionId) {
    // Compute loads and pick the least-loaded core different from the
    // current one.
    let mut cores: Vec<CoreRef> = Vec::new();
    for (mi, m) in problem.modules.iter().enumerate() {
        for ci in 0..m.cores.len() {
            cores.push(CoreRef::new(
                swa_ima::ModuleId::from_raw(u32::try_from(mi).expect("module count fits u32")),
                u32::try_from(ci).expect("core count fits u32"),
            ));
        }
    }
    if cores.len() < 2 {
        return;
    }
    let load = |core: CoreRef| -> f64 {
        let ct = core_type_of(problem, core);
        binding
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == core)
            .map(|(i, _)| problem.partitions[i].utilization_on(ct))
            .sum()
    };
    let current = binding[pid.index()];
    if let Some(best) = cores.into_iter().filter(|c| *c != current).min_by(|a, b| {
        load(*a)
            .partial_cmp(&load(*b))
            .unwrap_or(std::cmp::Ordering::Equal)
    }) {
        binding[pid.index()] = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::{CoreType, CoreTypeId, Module, Partition, SchedulerKind, Task};

    fn two_partition_problem(cores: usize) -> DesignProblem {
        DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", cores, CoreTypeId::from_raw(0))],
            partitions: vec![
                Partition::new(
                    "control",
                    SchedulerKind::Fpps,
                    vec![
                        Task::new("law", 2, vec![10], 50),
                        Task::new("log", 1, vec![10], 100),
                    ],
                ),
                Partition::new(
                    "io",
                    SchedulerKind::Fpps,
                    vec![Task::new("poll", 1, vec![15], 100)],
                ),
            ],
            messages: vec![],
        }
    }

    #[test]
    fn finds_schedulable_configuration_on_one_core() {
        let problem = two_partition_problem(1);
        let outcome = search(&problem, &SearchOptions::default()).unwrap();
        assert!(outcome.found(), "iterations: {:#?}", outcome.iterations);
        let config = outcome.configuration.unwrap();
        config.validate().unwrap();
        // Verify the found configuration really is schedulable.
        let report = analyze_configuration(&config).unwrap();
        assert!(report.schedulable());
    }

    #[test]
    fn finds_schedulable_configuration_on_two_cores() {
        let problem = two_partition_problem(2);
        let outcome = search(&problem, &SearchOptions::default()).unwrap();
        assert!(outcome.found());
        // With two cores the bin packer separates the partitions.
        let config = outcome.configuration.unwrap();
        assert_ne!(config.binding[0], config.binding[1]);
    }

    #[test]
    fn reports_failure_on_impossible_problem() {
        // Utilization 1.5 on a single core can never be schedulable.
        let problem = DesignProblem {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![
                Partition::new(
                    "a",
                    SchedulerKind::Fpps,
                    vec![Task::new("t", 1, vec![80], 100)],
                ),
                Partition::new(
                    "b",
                    SchedulerKind::Fpps,
                    vec![Task::new("t", 1, vec![70], 100)],
                ),
            ],
            messages: vec![],
        };
        let outcome = search(
            &problem,
            &SearchOptions {
                max_iterations: 5,
                ..SearchOptions::default()
            },
        )
        .unwrap();
        assert!(!outcome.found());
        assert_eq!(outcome.iterations.len(), 5);
        assert!(outcome.iterations.iter().all(|i| !i.schedulable));
    }

    #[test]
    fn iteration_records_carry_diagnostics() {
        let problem = two_partition_problem(1);
        let outcome = search(&problem, &SearchOptions::default()).unwrap();
        let last = outcome.iterations.last().unwrap();
        assert!(last.schedulable);
        assert_eq!(last.missed_jobs, 0);
        assert!(outcome.total_check_time() > Duration::ZERO);
    }
}
