//! A tiny blocking HTTP client for the analysis server.
//!
//! Used by the `swa request` subcommand, the CI smoke gate, and the
//! end-to-end tests — the same hand-rolled HTTP/1.1 subset the server
//! speaks (one request per connection, `Content-Length` framing).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket-level timeout applied to client connections so a wedged server
/// cannot hang the CLI forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A response from the server.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON for this server).
    pub body: String,
}

/// Sends a `GET` request.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn get<A: ToSocketAddrs>(addr: A, path: &str) -> io::Result<HttpResponse> {
    exchange(addr, "GET", path, None)
}

/// Sends a `POST` request with a JSON body.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn post<A: ToSocketAddrs>(addr: A, path: &str, body: &str) -> io::Result<HttpResponse> {
    exchange(addr, "POST", path, Some(body))
}

fn exchange<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{} {} HTTP/1.1\r\nHost: swa-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        method,
        path,
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// A streamed (chunked) response, decoded into its constituent lines.
#[derive(Debug, Clone)]
pub struct StreamedResponse {
    /// HTTP status code.
    pub status: u16,
    /// The decoded NDJSON lines, in arrival order. For non-chunked error
    /// responses this is the whole body as a single line.
    pub lines: Vec<String>,
}

/// Sends a `POST` and decodes a `Transfer-Encoding: chunked` NDJSON
/// stream (the `/sweep` endpoint). Non-chunked responses (parse errors,
/// 429, …) come back as one line holding the whole body.
///
/// # Errors
///
/// Propagates connection and protocol failures, including malformed
/// chunked framing.
pub fn post_lines<A: ToSocketAddrs>(addr: A, path: &str, body: &str) -> io::Result<StreamedResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "POST {} HTTP/1.1\r\nHost: swa-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        path,
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_streamed(&raw)
}

fn parse_streamed(raw: &[u8]) -> io::Result<StreamedResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response missing header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("non-UTF-8 response head"))?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let chunked = head.lines().any(|l| {
        l.split_once(':').is_some_and(|(name, value)| {
            name.trim().eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
        })
    });
    let body_bytes = &raw[split + 4..];
    let payload = if chunked {
        dechunk(body_bytes).map_err(|m| bad(&m))?
    } else {
        body_bytes.to_vec()
    };
    let text = String::from_utf8(payload).map_err(|_| bad("non-UTF-8 response body"))?;
    let lines = text
        .lines()
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    Ok(StreamedResponse { status, lines })
}

/// Decodes `Transfer-Encoding: chunked` framing into the raw payload.
fn dechunk(mut bytes: &[u8]) -> Result<Vec<u8>, String> {
    let mut payload = Vec::new();
    loop {
        let line_end = bytes
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("chunk size line missing CRLF")?;
        let size_text = std::str::from_utf8(&bytes[..line_end])
            .map_err(|_| "non-UTF-8 chunk size".to_string())?;
        // Chunk extensions (";…") are permitted by HTTP; ignore them.
        let size_text = size_text.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_text, 16)
            .map_err(|_| format!("bad chunk size {size_text:?}"))?;
        bytes = &bytes[line_end + 2..];
        if size == 0 {
            return Ok(payload);
        }
        if bytes.len() < size + 2 {
            return Err("truncated chunk".to_string());
        }
        payload.extend_from_slice(&bytes[..size]);
        if &bytes[size..size + 2] != b"\r\n" {
            return Err("chunk data missing trailing CRLF".to_string());
        }
        bytes = &bytes[size + 2..];
    }
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response missing header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("non-UTF-8 response head"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    // `Connection: close` framing: everything after the blank line is the
    // body (Content-Length is advisory here; read_to_end saw EOF).
    let body = String::from_utf8(raw[split + 4..].to_vec())
        .map_err(|_| bad("non-UTF-8 response body"))?;
    Ok(HttpResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, "{}");
    }

    #[test]
    fn dechunks_a_streamed_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    8\r\n{\"a\":1}\n\r\n9\r\n{\"b\":22}\n\r\n0\r\n\r\n";
        let resp = parse_streamed(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.lines, vec!["{\"a\":1}", "{\"b\":22}"]);
    }

    #[test]
    fn streamed_parser_accepts_plain_bodies() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_streamed(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.lines, vec!["{}"]);
    }

    #[test]
    fn dechunk_rejects_bad_framing() {
        assert!(dechunk(b"nope").is_err());
        assert!(dechunk(b"zz\r\n").is_err());
        assert!(dechunk(b"5\r\nab").is_err());
        assert!(dechunk(b"2\r\nabXX0\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 ???\r\n\r\n").is_err());
    }
}
