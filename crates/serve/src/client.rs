//! A tiny blocking HTTP client for the analysis server.
//!
//! Used by the `swa request` subcommand, the CI smoke gate, and the
//! end-to-end tests — the same hand-rolled HTTP/1.1 subset the server
//! speaks (one request per connection, `Content-Length` framing).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Socket-level timeout applied to client connections so a wedged server
/// cannot hang the CLI forever.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A response from the server.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON for this server).
    pub body: String,
}

/// Sends a `GET` request.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn get<A: ToSocketAddrs>(addr: A, path: &str) -> io::Result<HttpResponse> {
    exchange(addr, "GET", path, None)
}

/// Sends a `POST` request with a JSON body.
///
/// # Errors
///
/// Propagates connection and protocol failures.
pub fn post<A: ToSocketAddrs>(addr: A, path: &str, body: &str) -> io::Result<HttpResponse> {
    exchange(addr, "POST", path, Some(body))
}

fn exchange<A: ToSocketAddrs>(
    addr: A,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{} {} HTTP/1.1\r\nHost: swa-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        method,
        path,
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response missing header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("non-UTF-8 response head"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    // `Connection: close` framing: everything after the blank line is the
    // body (Content-Length is advisory here; read_to_end saw EOF).
    let body = String::from_utf8(raw[split + 4..].to_vec())
        .map_err(|_| bad("non-UTF-8 response body"))?;
    Ok(HttpResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.body, "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 ???\r\n\r\n").is_err());
    }
}
