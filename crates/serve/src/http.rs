//! A hand-rolled HTTP/1.1 subset over [`std::net`].
//!
//! The server speaks exactly the slice of HTTP/1.1 its endpoints need —
//! request line + headers + `Content-Length` body in, status + JSON body
//! out, one request per connection (`Connection: close`) — so the whole
//! exchange stays std-only. Limits are enforced while reading: a 16 KiB
//! header section and an 8 MiB body, so a hostile peer cannot balloon
//! memory.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body size.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// Arms read/write timeouts on an accepted connection so a client that
/// opens a socket and stalls mid-request cannot pin a handler thread
/// forever. `Duration::ZERO` disables the timeouts (useful in tests that
/// deliberately pause).
///
/// # Errors
///
/// Propagates `setsockopt` failures.
pub fn apply_io_timeouts(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    if timeout == Duration::ZERO {
        return Ok(());
    }
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    Ok(())
}

/// Whether an I/O error is a socket timeout (the platform reports either
/// `WouldBlock` or `TimedOut` depending on the socket API used).
#[must_use]
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// The request target, query string included.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed; no response is possible.
    Io(io::Error),
    /// The peer sent something that is not acceptable HTTP; the message is
    /// suitable for a 400 response body.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY`]; respond 413.
    TooLarge,
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one HTTP request from the stream.
///
/// # Errors
///
/// [`HttpError::Io`] on socket failure, [`HttpError::Malformed`] on
/// unparseable input, [`HttpError::TooLarge`] when the declared body
/// exceeds the limit.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let split = loop {
        if let Some(i) = find_head_end(&head) {
            break i;
        }
        if head.len() > MAX_HEAD {
            return Err(HttpError::Malformed("header section too large".into()));
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-request".into()));
        }
        head.extend_from_slice(&buf[..n]);
    };
    // `split` points past the blank line; bytes after it are body prefix.
    let (head_bytes, rest) = head.split_at(split);
    let head_text = std::str::from_utf8(head_bytes)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header section".into()))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing target".into()))?
        .to_string();
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(HttpError::Malformed("not an HTTP/1.x request".into()));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header: {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad Content-Length".into()))?;
        }
    }
    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge);
    }

    let mut body = rest.to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

/// Index just past the `\r\n\r\n` terminating the header section.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Writes a complete JSON response and flushes it. The connection is
/// marked `Connection: close`; the caller drops the stream afterwards.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a `Transfer-Encoding: chunked` response: status line + headers,
/// no body yet. Follow with [`write_chunk`] per line and close the stream
/// with [`write_chunked_end`]. Used by the progressive `POST /sweep`
/// endpoint, where results exist before the response is complete.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunked_head<W: Write>(stream: &mut W, status: u16) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one line as a single HTTP chunk (the payload is `line` plus a
/// trailing newline, so each chunk is exactly one NDJSON record) and
/// flushes it so the client observes progress immediately.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunk<W: Write>(stream: &mut W, line: &str) -> io::Result<()> {
    let payload_len = line.len() + 1;
    stream.write_all(format!("{payload_len:x}\r\n").as_bytes())?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n\r\n")?;
    stream.flush()
}

/// Terminates a chunked response (the zero-length chunk).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_chunked_end<W: Write>(stream: &mut W) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// The reason phrase for the status codes this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let result = read_request(&mut conn);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(b"POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(roundtrip(b"\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(roundtrip(b"GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            roundtrip(b"GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(roundtrip(raw.as_bytes()), Err(HttpError::TooLarge)));
    }

    #[test]
    fn chunked_writers_frame_each_line() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200).unwrap();
        write_chunk(&mut out, "{\"a\":1}").unwrap();
        write_chunk(&mut out, "{\"b\":22}").unwrap();
        write_chunked_end(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        // 8 = len("{\"a\":1}") + newline; 9 for the second line.
        assert!(text.contains("\r\n\r\n8\r\n{\"a\":1}\n\r\n9\r\n{\"b\":22}\n\r\n0\r\n\r\n"),
            "unexpected framing: {text:?}");
    }

    #[test]
    fn status_lines_cover_the_emitted_codes() {
        for code in [200, 400, 404, 405, 408, 413, 422, 429, 500, 502, 503, 504] {
            assert_ne!(status_text(code), "Unknown");
        }
    }

    #[test]
    fn stalling_client_times_out_instead_of_pinning_the_reader() {
        use std::time::Instant;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // Half a request line, then silence — without a read timeout
            // read_request would block in read() forever.
            s.write_all(b"POST /ana").unwrap();
            std::thread::sleep(Duration::from_millis(500));
        });
        let (mut conn, _) = listener.accept().unwrap();
        apply_io_timeouts(&conn, Duration::from_millis(50)).unwrap();
        let started = Instant::now();
        let result = read_request(&mut conn);
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "read_request must give up at the socket timeout"
        );
        match result {
            Err(HttpError::Io(e)) => assert!(is_timeout(&e), "unexpected error: {e}"),
            other => panic!("expected a timeout Io error, got {other:?}"),
        }
        writer.join().unwrap();
    }
}
