//! A minimal JSON parser for analysis requests.
//!
//! The workspace builds with zero external dependencies, so the request
//! envelope is parsed by a small recursive-descent parser: the full JSON
//! grammar (RFC 8259), including `\uXXXX` escapes with surrogate pairs, a
//! nesting-depth limit against hostile inputs, and byte-offset error
//! positions for 400 responses clients can act on.
//!
//! Only *parsing* lives here; responses are rendered with the same
//! hand-rolled formatting the rest of the workspace uses
//! (`swa_core::obs::json_escape`).

use std::fmt;

/// Maximum nesting depth accepted before a request is rejected.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys keep the last.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (must be a single value with only
    /// whitespace around it).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first
    /// violation.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Looks up a key in an object (`None` for non-objects and missing
    /// keys; the *last* occurrence wins for duplicate keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a number
    /// with an exact `u64` value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the violation.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so bytes are
                    // valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (the backslash and `u` are
    /// already consumed), joining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected a digit"));
        }
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_envelope() {
        let doc = Json::parse(
            r#"{"config_xml": "<configuration/>", "hyperperiods": 2, "explain": false}"#,
        )
        .unwrap();
        assert_eq!(doc.get("config_xml").unwrap().as_str(), Some("<configuration/>"));
        assert_eq!(doc.get("hyperperiods").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("explain").unwrap().as_bool(), Some(false));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values_and_numbers() {
        let doc = Json::parse(r#"[null, true, -1.5e2, "a", {"k": []}]"#).unwrap();
        let Json::Arr(items) = doc else { panic!("array") };
        assert_eq!(items[0], Json::Null);
        assert_eq!(items[2].as_f64(), Some(-150.0));
        assert_eq!(items[4].get("k"), Some(&Json::Arr(vec![])));
    }

    #[test]
    fn decodes_escapes_and_surrogate_pairs() {
        let doc = Json::parse(r#""a\n\t\"\\ é 😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\n\t\"\\ \u{e9} \u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input_with_offsets() {
        for (text, what) in [
            ("{", "truncated object"),
            (r#"{"a": 1,}"#, "trailing comma"),
            ("[1 2]", "missing comma"),
            (r#""\ud800""#, "unpaired surrogate"),
            ("01", "trailing characters"),
            ("nul", "bad literal"),
            ("\"\u{1}\"", "control char"),
        ] {
            assert!(Json::parse(text).is_err(), "{what} should fail: {text:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    /// Pins the *exact* boundary: the top-level value parses at depth 0,
    /// so `MAX_DEPTH + 1` nesting levels are the deepest accepted
    /// document and one more is rejected. A refactor that shifts the
    /// check off-by-one in either direction fails this test.
    #[test]
    fn depth_limit_boundary_is_exact() {
        let deepest_ok = MAX_DEPTH + 1;
        let arrays = |n: usize| "[".repeat(n) + &"]".repeat(n);
        assert!(
            Json::parse(&arrays(deepest_ok)).is_ok(),
            "{deepest_ok} nested arrays must still parse"
        );
        let err = Json::parse(&arrays(deepest_ok + 1)).unwrap_err();
        assert!(
            err.to_string().contains("nesting too deep"),
            "one past the limit must be the depth error, got: {err}"
        );

        // Same boundary through the object production, which shares the
        // depth counter with arrays.
        let objects = |n: usize| {
            let mut text = String::new();
            for _ in 0..n {
                text.push_str("{\"k\":");
            }
            text.push_str("null");
            text.push_str(&"}".repeat(n));
            text
        };
        assert!(Json::parse(&objects(deepest_ok - 1)).is_ok());
        let err = Json::parse(&objects(deepest_ok)).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "got: {err}");
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let doc = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(2.0));
    }
}
