//! # swa-serve — a long-running schedulability-analysis service
//!
//! The paper's headline result is that *one deterministic simulated run*
//! decides schedulability (Sect. 3), and its Sect. 4 search tool issues
//! many analysis requests over near-identical configurations — exactly
//! the shape of a request-serving system. This crate turns the analyzer
//! into such a service:
//!
//! * **hand-rolled HTTP/1.1** over [`std::net::TcpListener`] ([`http`]) —
//!   the workspace builds with zero external dependencies, so both the
//!   protocol and the JSON request envelope ([`json`], [`request`]) are
//!   implemented here;
//! * a **content-addressed verdict cache** (`swa_core::{canon, cache}`):
//!   requests are canonicalized and hashed, so a repeated configuration
//!   returns in O(1) with `"cached": true` and *without re-simulating* —
//!   a per-key single-flight gate extends the guarantee to concurrent
//!   duplicates;
//! * a **bounded worker pool** ([`pool`]) with non-blocking admission
//!   (full queue ⇒ 429), cooperative per-request deadlines (⇒ 504), and
//!   drain-on-cancel shutdown: every accepted job is invoked, never
//!   silently dropped;
//! * **observability endpoints**: `/healthz`, and `/metrics` exporting
//!   the `swa_core` [`MetricsRecorder`](swa_core::MetricsRecorder) JSON
//!   (cache hit/miss/eviction counters included) plus live cache gauges.
//!
//! ## Endpoints
//!
//! | Endpoint         | Purpose                                        |
//! |------------------|------------------------------------------------|
//! | `POST /analyze`  | Analyze a configuration (JSON envelope)        |
//! | `POST /sweep`    | Sensitivity sweep, streamed as chunked NDJSON: |
//! |                  | one line per refinement step, final line = the |
//! |                  | canonical report (byte-equal to the CLI's)     |
//! | `GET /healthz`   | Liveness probe                                 |
//! | `GET /metrics`   | Cache gauges + full metrics JSON               |
//! | `POST /shutdown` | Graceful shutdown (drains in-flight work)      |
//!
//! ```no_run
//! use swa_serve::{client, Server, ServeOptions};
//!
//! let server = Server::start(&ServeOptions::default())?;
//! let body = r#"{"config_xml": "<configuration>…</configuration>"}"#;
//! let response = client::post(server.local_addr(), "/analyze", body)?;
//! println!("{}", response.body);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

pub mod client;
pub mod http;
pub mod json;
pub mod pool;
pub mod request;
pub mod resilience;
pub mod router;
pub mod server;

pub use client::{HttpResponse, StreamedResponse};
pub use json::{Json, JsonError};
pub use pool::{Job, JobContext, WorkerPool};
pub use request::{
    parse_analyze, parse_sweep, render_error, render_verdict, AnalyzeRequest, RequestError,
    SweepRequest,
};
pub use resilience::{Backoff, BreakerOptions, CircuitBreaker, LoadShedder, RetryPolicy};
pub use router::{forward_analyze, ForwardOutcome, HashRing, Router, RouterOptions};
pub use server::{ServeOptions, Server};
