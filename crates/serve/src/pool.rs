//! A bounded worker pool with backpressure and drain-on-cancel.
//!
//! The server dispatches every cache miss onto this pool. Three properties
//! matter for a long-running service and are guaranteed here:
//!
//! * **backpressure**: the queue is a bounded [`mpsc::sync_channel`];
//!   [`WorkerPool::try_submit`] never blocks — a full queue hands the job
//!   back so the caller can reject with 429 instead of letting latency
//!   grow without bound;
//! * **no orphaned jobs**: cancellation does not empty the queue by
//!   discarding — every job already accepted is still *invoked*, with
//!   [`JobContext::is_cancelled`] set, so whoever is waiting on its reply
//!   channel always hears back (this is the drain-on-cancel fix: a job
//!   enqueued concurrently with cancellation can never be silently
//!   dropped);
//! * **quiescence**: [`WorkerPool::shutdown`] closes the queue, runs every
//!   remaining job, and joins every worker thread — afterwards the queue
//!   is empty and no pool thread is left running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// What a job sees while running.
#[derive(Debug, Clone)]
pub struct JobContext {
    cancelled: Arc<AtomicBool>,
}

impl JobContext {
    /// True once the pool has been cancelled; a job observing this should
    /// reply "cancelled" to its requester instead of doing real work.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// A unit of work. Always invoked exactly once — possibly with the
/// context reporting cancellation.
pub type Job = Box<dyn FnOnce(&JobContext) + Send>;

/// The bounded worker pool.
pub struct WorkerPool {
    tx: Mutex<Option<SyncSender<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    cancelled: Arc<AtomicBool>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.lock().expect("unpoisoned").len())
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (≥ 1; 0 is clamped) sharing a queue that
    /// holds at most `queue_depth` waiting jobs (≥ 1; 0 is clamped — a
    /// rendezvous queue would reject whenever no worker is parked, which
    /// is needlessly racy for callers).
    #[must_use]
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let cancelled = Arc::new(AtomicBool::new(false));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let ctx = JobContext {
                    cancelled: Arc::clone(&cancelled),
                };
                std::thread::Builder::new()
                    .name(format!("swa-serve-worker-{i}"))
                    .spawn(move || {
                        swa_core::affinity::pin_worker(i);
                        worker_loop(&rx, &ctx)
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            cancelled,
        }
    }

    /// Enqueues a job without blocking.
    ///
    /// # Errors
    ///
    /// Hands the job back when the queue is full (backpressure: the caller
    /// rejects the request) or the pool is already shut down.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        let guard = self.tx.lock().expect("unpoisoned");
        match guard.as_ref() {
            None => {
                drop(guard);
                Err(job)
            }
            Some(tx) => match tx.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(job) | TrySendError::Disconnected(job)) => {
                    drop(guard);
                    Err(job)
                }
            },
        }
    }

    /// Flags cancellation. Queued and running jobs observe it through
    /// [`JobContext::is_cancelled`]; none are discarded.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Closes the queue, drains every remaining job (each is invoked, so
    /// cancellation never orphans an accepted job), and joins all worker
    /// threads. Idempotent; afterwards the pool is quiescent.
    pub fn shutdown(&self) {
        // Dropping the sender closes the channel; workers exit once the
        // queue runs dry.
        *self.tx.lock().expect("unpoisoned") = None;
        let handles = std::mem::take(&mut *self.handles.lock().expect("unpoisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Number of worker threads not yet joined (0 after shutdown).
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.handles.lock().expect("unpoisoned").len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, ctx: &JobContext) {
    loop {
        // Hold the lock only for the dequeue, not while running the job.
        let job = match rx.lock().expect("unpoisoned").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        // A panicking job must not take the worker thread with it — the
        // pool would silently shrink until no worker is left. Containing
        // the panic drops the job's reply channel, which the waiting
        // handler observes as a disconnect and maps to 500.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(ctx)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;

    /// A job that parks until released, so tests can fill the queue
    /// deterministically.
    fn blocking_job(release: Receiver<()>, ran: Arc<AtomicUsize>) -> Job {
        Box::new(move |_ctx| {
            release.recv().ok();
            ran.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn full_queue_hands_the_job_back() {
        let pool = WorkerPool::new(1, 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let (unblock, wait) = channel();
        // Occupy the single worker…
        pool.try_submit(blocking_job(wait, ran.clone())).map_err(|_| ()).unwrap();
        // …then fill the depth-1 queue. The worker may not have dequeued
        // the first job yet, so allow one slot to be taken either way.
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..3 {
            let r = ran.clone();
            let job: Job = Box::new(move |_| {
                r.fetch_add(1, Ordering::SeqCst);
            });
            match pool.try_submit(job) {
                Ok(()) => accepted += 1,
                Err(_returned) => rejected += 1,
            }
        }
        assert!(rejected >= 1, "a full queue must reject");
        unblock.send(()).unwrap();
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 1 + accepted);
    }

    #[test]
    fn cancel_drains_without_orphaning_queued_jobs() {
        let pool = WorkerPool::new(1, 4);
        let invoked = Arc::new(AtomicUsize::new(0));
        let saw_cancel = Arc::new(AtomicUsize::new(0));
        let (unblock, wait) = channel();
        pool.try_submit(blocking_job(wait, invoked.clone()))
            .map_err(|_| ())
            .unwrap();
        // Enqueue jobs that will still be queued when cancellation lands.
        let mut queued = 0;
        loop {
            let invoked = invoked.clone();
            let saw_cancel = saw_cancel.clone();
            let job: Job = Box::new(move |ctx| {
                invoked.fetch_add(1, Ordering::SeqCst);
                if ctx.is_cancelled() {
                    saw_cancel.fetch_add(1, Ordering::SeqCst);
                }
            });
            match pool.try_submit(job) {
                Ok(()) => queued += 1,
                Err(_) => break,
            }
        }
        assert!(queued >= 3, "queue should hold several jobs (got {queued})");

        pool.cancel();
        unblock.send(()).unwrap();
        pool.shutdown();

        // Quiescence: every accepted job was invoked (none orphaned in the
        // queue), the queued ones observed cancellation, and no worker
        // thread is left.
        assert_eq!(invoked.load(Ordering::SeqCst), 1 + queued);
        assert_eq!(saw_cancel.load(Ordering::SeqCst), queued);
        assert_eq!(pool.live_workers(), 0);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let pool = WorkerPool::new(2, 2);
        pool.shutdown();
        let job: Job = Box::new(|_| {});
        assert!(pool.try_submit(job).is_err());
        assert_eq!(pool.live_workers(), 0);
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn jobs_run_concurrently_across_workers() {
        let pool = WorkerPool::new(4, 8);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = done.clone();
            let job: Job = Box::new(move |_| {
                done.fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                pool.try_submit(job).is_ok(),
                "a depth-8 queue cannot overflow on 8 submissions"
            );
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1, 4);
        let job: Job = Box::new(|_| panic!("job blew up"));
        pool.try_submit(job).map_err(|_| ()).unwrap();
        // The single worker must survive the panic and run the next job.
        let (done_tx, done_rx) = channel();
        let follow_up: Job = Box::new(move |_| {
            done_tx.send(()).unwrap();
        });
        pool.try_submit(follow_up).map_err(|_| ()).unwrap();
        done_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("worker died with the panicking job");
        assert_eq!(pool.live_workers(), 1);
        pool.shutdown();
    }
}
