//! The analysis request envelope and response rendering.
//!
//! A request is a JSON object embedding the workspace's canonical XML
//! configuration format (so any file accepted by `swa analyze` can be
//! served verbatim):
//!
//! ```json
//! {
//!   "config_xml": "<configuration>…</configuration>",
//!   "hyperperiods": 1,
//!   "engine": "bytecode",
//!   "explain": false,
//!   "deadline_ms": 5000,
//!   "no_cache": false
//! }
//! ```
//!
//! Every field except `config_xml` is optional. Malformed JSON or unknown
//! field values map to 400; XML that parses but fails configuration
//! validation maps to 422 (the request is well-formed, the *model* is
//! not). Note that cache keys are computed from the **parsed**
//! configuration, never the XML text, so whitespace or attribute-order
//! differences between clients still hit the same cache entry.

use std::fmt;

use swa_core::obs::json_escape;
use swa_core::{CacheKey, CachedVerdict, EvalEngine};
use swa_ima::Configuration;
use swa_sweep::{Axis, SweepOptions};

use crate::json::Json;

/// A parsed, validated analysis request.
#[derive(Debug, Clone)]
pub struct AnalyzeRequest {
    /// The configuration to analyze.
    pub config: Configuration,
    /// Analysis horizon in hyperperiods (clamped to ≥ 1 downstream).
    pub hyperperiods: u32,
    /// Guard/update evaluation engine.
    pub engine: EvalEngine,
    /// Attach failure forensics to error responses.
    pub explain: bool,
    /// Per-request deadline in milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Bypass the verdict cache for this request.
    pub no_cache: bool,
}

/// Why a request was rejected before analysis.
#[derive(Debug)]
pub enum RequestError {
    /// The body is not acceptable JSON / is missing or mistyping fields
    /// (HTTP 400).
    Bad(String),
    /// The embedded configuration is syntactically fine but semantically
    /// invalid (HTTP 422).
    Unprocessable(String),
}

impl RequestError {
    /// The HTTP status this rejection maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            RequestError::Bad(_) => 400,
            RequestError::Unprocessable(_) => 422,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Bad(m) | RequestError::Unprocessable(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for RequestError {}

/// Parses and validates one `/analyze` request body.
///
/// # Errors
///
/// [`RequestError::Bad`] for malformed JSON / fields,
/// [`RequestError::Unprocessable`] for XML or configuration-validation
/// failures.
pub fn parse_analyze(body: &[u8]) -> Result<AnalyzeRequest, RequestError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| RequestError::Bad("request body is not UTF-8".into()))?;
    let doc = Json::parse(text).map_err(|e| RequestError::Bad(e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(RequestError::Bad("request body must be a JSON object".into()));
    }

    let xml = doc
        .get("config_xml")
        .ok_or_else(|| RequestError::Bad("missing required field \"config_xml\"".into()))?
        .as_str()
        .ok_or_else(|| RequestError::Bad("\"config_xml\" must be a string".into()))?;

    let hyperperiods = match doc.get("hyperperiods") {
        None => 1,
        Some(v) => u32::try_from(
            v.as_u64()
                .ok_or_else(|| RequestError::Bad("\"hyperperiods\" must be a non-negative integer".into()))?,
        )
        .map_err(|_| RequestError::Bad("\"hyperperiods\" out of range".into()))?,
    };

    let engine = match doc.get("engine") {
        None => EvalEngine::default(),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| RequestError::Bad("\"engine\" must be a string".into()))?;
            EvalEngine::parse(name).ok_or_else(|| {
                RequestError::Bad(format!("unknown engine {name:?} (expected \"ast\" or \"bytecode\")"))
            })?
        }
    };

    let explain = flag(&doc, "explain")?;
    let no_cache = flag(&doc, "no_cache")?;

    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            RequestError::Bad("\"deadline_ms\" must be a non-negative integer".into())
        })?),
    };

    let config = swa_xmlio::configuration_from_xml(xml)
        .map_err(|e| RequestError::Unprocessable(format!("config_xml: {e}")))?;
    config.validate().map_err(|errors| {
        let msgs: Vec<String> = errors.iter().map(ToString::to_string).collect();
        RequestError::Unprocessable(format!("invalid configuration: {}", msgs.join("; ")))
    })?;

    Ok(AnalyzeRequest {
        config,
        hyperperiods,
        engine,
        explain,
        deadline_ms,
        no_cache,
    })
}

/// A parsed, validated sensitivity-sweep request (`POST /sweep`).
///
/// The envelope mirrors `/analyze` plus the sweep controls; defaults are
/// identical to the `swa sweep` CLI defaults, which is what makes the
/// endpoint's final report line byte-equal to the CLI's `--json` output:
///
/// ```json
/// {
///   "config_xml": "<configuration>…</configuration>",
///   "axis": "wcet",
///   "tolerance": 0.01,
///   "max_probes": 64,
///   "samples": 0,
///   "chains": false,
///   "chain_bound": null,
///   "per_task": false,
///   "hyperperiods": 1,
///   "engine": "bytecode",
///   "deadline_ms": 5000
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The base configuration the sweep scales.
    pub config: Configuration,
    /// The parsed parameter axis.
    pub axis: Axis,
    /// Engine options (tolerance, probe budget, chain gating, …).
    pub options: SweepOptions,
    /// Also compute the per-task WCET sensitivity vector.
    pub per_task: bool,
    /// Per-request deadline in milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
}

/// Parses and validates one `/sweep` request body.
///
/// # Errors
///
/// [`RequestError::Bad`] for malformed JSON / fields / axis specs,
/// [`RequestError::Unprocessable`] for XML or configuration-validation
/// failures.
pub fn parse_sweep(body: &[u8]) -> Result<SweepRequest, RequestError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| RequestError::Bad("request body is not UTF-8".into()))?;
    let doc = Json::parse(text).map_err(|e| RequestError::Bad(e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(RequestError::Bad("request body must be a JSON object".into()));
    }

    let xml = doc
        .get("config_xml")
        .ok_or_else(|| RequestError::Bad("missing required field \"config_xml\"".into()))?
        .as_str()
        .ok_or_else(|| RequestError::Bad("\"config_xml\" must be a string".into()))?;

    let mut options = SweepOptions::default();

    if let Some(v) = doc.get("tolerance") {
        let tolerance = v
            .as_f64()
            .ok_or_else(|| RequestError::Bad("\"tolerance\" must be a number".into()))?;
        if !(tolerance.is_finite() && tolerance > 0.0) {
            return Err(RequestError::Bad("\"tolerance\" must be finite and positive".into()));
        }
        options.search.tolerance = tolerance;
    }
    if let Some(v) = doc.get("max_probes") {
        let max_probes = v
            .as_u64()
            .ok_or_else(|| RequestError::Bad("\"max_probes\" must be a non-negative integer".into()))?;
        options.search.max_probes = usize::try_from(max_probes)
            .map_err(|_| RequestError::Bad("\"max_probes\" out of range".into()))?;
    }
    if let Some(v) = doc.get("samples") {
        let samples = v
            .as_u64()
            .ok_or_else(|| RequestError::Bad("\"samples\" must be a non-negative integer".into()))?;
        options.search.presamples = usize::try_from(samples)
            .map_err(|_| RequestError::Bad("\"samples\" out of range".into()))?;
    }
    options.hyperperiods = match doc.get("hyperperiods") {
        None => 1,
        Some(v) => u32::try_from(
            v.as_u64()
                .ok_or_else(|| RequestError::Bad("\"hyperperiods\" must be a non-negative integer".into()))?,
        )
        .map_err(|_| RequestError::Bad("\"hyperperiods\" out of range".into()))?,
    };
    options.engine = match doc.get("engine") {
        None => EvalEngine::default(),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| RequestError::Bad("\"engine\" must be a string".into()))?;
            EvalEngine::parse(name).ok_or_else(|| {
                RequestError::Bad(format!("unknown engine {name:?} (expected \"ast\" or \"bytecode\")"))
            })?
        }
    };
    options.chains = flag(&doc, "chains")?;
    options.chain_bound = match doc.get("chain_bound") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let bound = v.as_u64().ok_or_else(|| {
                RequestError::Bad("\"chain_bound\" must be a non-negative integer".into())
            })?;
            Some(i64::try_from(bound).map_err(|_| RequestError::Bad("\"chain_bound\" out of range".into()))?)
        }
    };
    options.ladder = match doc.get("ladder") {
        None | Some(Json::Null) => swa_core::LadderMode::Off,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| RequestError::Bad("\"ladder\" must be a string".into()))?;
            name.parse().map_err(RequestError::Bad)?
        }
    };
    let per_task = flag(&doc, "per_task")?;

    let deadline_ms = match doc.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            RequestError::Bad("\"deadline_ms\" must be a non-negative integer".into())
        })?),
    };

    let config = swa_xmlio::configuration_from_xml(xml)
        .map_err(|e| RequestError::Unprocessable(format!("config_xml: {e}")))?;
    config.validate().map_err(|errors| {
        let msgs: Vec<String> = errors.iter().map(ToString::to_string).collect();
        RequestError::Unprocessable(format!("invalid configuration: {}", msgs.join("; ")))
    })?;

    let axis_spec = match doc.get("axis") {
        None => "wcet",
        Some(v) => v
            .as_str()
            .ok_or_else(|| RequestError::Bad("\"axis\" must be a string".into()))?,
    };
    let axis =
        Axis::parse(axis_spec, &config).map_err(|e| RequestError::Bad(e.to_string()))?;

    Ok(SweepRequest {
        config,
        axis,
        options,
        per_task,
        deadline_ms,
    })
}

fn flag(doc: &Json, name: &str) -> Result<bool, RequestError> {
    match doc.get(name) {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| RequestError::Bad(format!("\"{name}\" must be a boolean"))),
    }
}

/// Renders a successful verdict response body.
///
/// The typed `verdict` field is the primary one; the boolean
/// `schedulable` field is kept for one release for older clients. The
/// `decided_by` field names the provenance — `"simulation"` for the
/// exact analysis, or the ladder tier (`"t0-utilization"`,
/// `"t1-window-rta"`, `"t2-rtc"`) that pre-filtered the request.
#[must_use]
pub fn render_verdict(verdict: &CachedVerdict, cached: bool, key: CacheKey, check_ms: f64) -> String {
    format!(
        "{{\"status\":\"ok\",\"verdict\":\"{}\",\"schedulable\":{},\"decided_by\":\"{}\",\"cached\":{},\"key\":\"{}\",\"hyperperiod\":{},\"jobs\":{},\"missed_jobs\":{},\"check_ms\":{:.3}}}",
        verdict.verdict().label(), verdict.schedulable, verdict.decided_by.label(), cached, key, verdict.hyperperiod, verdict.jobs, verdict.missed_jobs, check_ms,
    )
}

/// Renders an error response body (`kind` is a stable machine-readable
/// label; `message` is free text).
#[must_use]
pub fn render_error(kind: &str, message: &str) -> String {
    format!(
        "{{\"status\":\"error\",\"error\":\"{}\",\"message\":\"{}\"}}",
        json_escape(kind),
        json_escape(message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::{
        Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, SchedulerKind,
        Task, Window,
    };

    fn config_xml() -> String {
        let config = Configuration {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new(
                "P",
                SchedulerKind::Fpps,
                vec![Task::new("t", 1, vec![10], 50)],
            )],
            binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
            windows: vec![vec![Window::new(0, 50)]],
            messages: vec![],
        };
        swa_xmlio::configuration_to_xml(&config)
    }

    fn envelope(extra: &str) -> String {
        format!(
            "{{\"config_xml\":\"{}\"{}}}",
            json_escape(&config_xml()),
            extra
        )
    }

    #[test]
    fn parses_a_minimal_request_with_defaults() {
        let req = parse_analyze(envelope("").as_bytes()).unwrap();
        assert_eq!(req.hyperperiods, 1);
        assert_eq!(req.engine, EvalEngine::default());
        assert!(!req.explain);
        assert!(!req.no_cache);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.config.partitions.len(), 1);
    }

    #[test]
    fn parses_all_options() {
        let req = parse_analyze(
            envelope(",\"hyperperiods\":3,\"engine\":\"ast\",\"explain\":true,\"deadline_ms\":250,\"no_cache\":true")
                .as_bytes(),
        )
        .unwrap();
        assert_eq!(req.hyperperiods, 3);
        assert_eq!(req.engine, EvalEngine::Ast);
        assert!(req.explain);
        assert!(req.no_cache);
        assert_eq!(req.deadline_ms, Some(250));
    }

    #[test]
    fn rejects_bad_envelopes_as_400() {
        for body in [
            "not json",
            "[1]",
            "{}",
            r#"{"config_xml": 7}"#,
            &envelope(",\"engine\":\"turbo\""),
            &envelope(",\"hyperperiods\":-1"),
            &envelope(",\"deadline_ms\":\"soon\""),
            &envelope(",\"explain\":\"yes\""),
        ] {
            let err = parse_analyze(body.as_bytes()).unwrap_err();
            assert_eq!(err.status(), 400, "{body:.60}");
        }
    }

    #[test]
    fn rejects_invalid_models_as_422() {
        let err = parse_analyze(br#"{"config_xml": "<not-a-configuration/>"}"#).unwrap_err();
        assert_eq!(err.status(), 422);
        // Well-formed XML, invalid semantics: binding refers to a missing
        // module core.
        let mut config = swa_xmlio::configuration_from_xml(&config_xml()).unwrap();
        config.binding = vec![CoreRef::new(ModuleId::from_raw(0), 9)];
        let body = format!(
            "{{\"config_xml\":\"{}\"}}",
            json_escape(&swa_xmlio::configuration_to_xml(&config))
        );
        let err = parse_analyze(body.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 422);
    }

    #[test]
    fn parses_a_minimal_sweep_request_with_cli_defaults() {
        let req = parse_sweep(envelope("").as_bytes()).unwrap();
        assert_eq!(req.axis, Axis::WcetScale);
        let defaults = SweepOptions::default();
        assert_eq!(req.options.search.tolerance, defaults.search.tolerance);
        assert_eq!(req.options.search.max_probes, defaults.search.max_probes);
        assert_eq!(req.options.search.presamples, defaults.search.presamples);
        assert_eq!(req.options.hyperperiods, 1);
        assert!(!req.options.chains);
        assert_eq!(req.options.chain_bound, None);
        assert!(!req.per_task);
        assert_eq!(req.deadline_ms, None);
        assert_eq!(req.options.ladder, swa_core::LadderMode::Off);
    }

    #[test]
    fn parses_all_sweep_options() {
        let req = parse_sweep(
            envelope(
                ",\"axis\":\"wcet:P/t\",\"tolerance\":0.05,\"max_probes\":32,\"samples\":8,\
                 \"chains\":true,\"chain_bound\":120,\"per_task\":true,\"hyperperiods\":2,\
                 \"engine\":\"ast\",\"deadline_ms\":250,\"ladder\":\"fast\"",
            )
            .as_bytes(),
        )
        .unwrap();
        assert!(matches!(req.axis, Axis::TaskWcetScale(_)));
        assert_eq!(req.options.search.tolerance, 0.05);
        assert_eq!(req.options.search.max_probes, 32);
        assert_eq!(req.options.search.presamples, 8);
        assert!(req.options.chains);
        assert_eq!(req.options.chain_bound, Some(120));
        assert_eq!(req.options.hyperperiods, 2);
        assert_eq!(req.options.engine, EvalEngine::Ast);
        assert!(req.per_task);
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.options.ladder, swa_core::LadderMode::Fast);
    }

    #[test]
    fn rejects_bad_sweep_envelopes() {
        for body in [
            "not json".to_string(),
            envelope(",\"axis\":\"voltage\""),
            envelope(",\"axis\":\"wcet:P/nope\""),
            envelope(",\"tolerance\":0"),
            envelope(",\"tolerance\":\"tight\""),
            envelope(",\"max_probes\":-1"),
            envelope(",\"chain_bound\":-5"),
            envelope(",\"ladder\":\"turbo\""),
            envelope(",\"ladder\":7"),
        ] {
            let err = parse_sweep(body.as_bytes()).unwrap_err();
            assert_eq!(err.status(), 400, "{body:.80}");
        }
        let err = parse_sweep(br#"{"config_xml": "<not-a-configuration/>"}"#).unwrap_err();
        assert_eq!(err.status(), 422);
    }

    #[test]
    fn responses_are_valid_json() {
        let verdict = CachedVerdict {
            schedulable: true,
            hyperperiod: 50,
            jobs: 1,
            missed_jobs: 0,
            missing_partitions: vec![],
            decided_by: swa_core::DecidedBy::Simulation,
        };
        let key = swa_core::canon::hash_bytes(b"x");
        let ok = render_verdict(&verdict, true, key, 0.25);
        let doc = Json::parse(&ok).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(doc.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("verdict").unwrap().as_str(), Some("schedulable"));
        assert_eq!(doc.get("schedulable").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("decided_by").unwrap().as_str(), Some("simulation"));
        assert_eq!(doc.get("key").unwrap().as_str(), Some(key.to_string().as_str()));

        let laddered = CachedVerdict {
            decided_by: swa_core::DecidedBy::Utilization,
            schedulable: false,
            ..verdict
        };
        let doc = Json::parse(&render_verdict(&laddered, false, key, 0.25)).unwrap();
        assert_eq!(doc.get("decided_by").unwrap().as_str(), Some("t0-utilization"));

        let err = render_error("deadline", "expired after 5ms \"grace\"");
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("error").unwrap().as_str(), Some("deadline"));
    }
}
