//! Resilience primitives for multi-instance serving: bounded retry with
//! jittered exponential backoff, a per-backend circuit breaker, and
//! inflight-bounded load shedding.
//!
//! These are the std-only building blocks the router ([`crate::router`])
//! and the sharding client use on every hop:
//!
//! * [`Backoff`] — exponential delays with multiplicative jitter
//!   (splitmix64-derived, seeded per request) so a fleet of retrying
//!   clients never synchronizes into waves.
//! * [`CircuitBreaker`] — Closed → Open → HalfOpen. A backend that keeps
//!   failing is skipped outright for a cooldown instead of burning a
//!   retry budget per request on it; one probe re-closes it.
//! * [`LoadShedder`] — an inflight ceiling checked *before* any work is
//!   done on a request (parsing included). Unlike the worker pool's
//!   bounded queue (429 after parse + cache probe), shedding is the
//!   cheap first line of defense when a burst exceeds what the box
//!   should even read.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Retry budget and delay shape for one logical operation.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub attempts: u32,
    /// Delay before the first retry; doubles each retry.
    pub base_delay: Duration,
    /// Cap on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

/// Iterator-style backoff: each call to [`next_delay`](Self::next_delay)
/// consumes one retry from the policy's budget.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    used: u32,
    rng: u64,
}

impl Backoff {
    /// Starts a backoff sequence; `seed` decorrelates concurrent callers
    /// (any value works — a cache key, an address hash).
    #[must_use]
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Self {
            policy,
            used: 0,
            rng: seed,
        }
    }

    /// splitmix64 step — the workspace's standard tiny PRNG.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The delay before the next retry, or `None` once the attempt budget
    /// is spent. Delays double per retry, capped at `max_delay`, then
    /// scaled by a jitter factor in `[0.5, 1.0)`.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.used + 1 >= self.policy.attempts {
            return None;
        }
        let exp = self.used.min(16);
        self.used += 1;
        let raw = self
            .policy
            .base_delay
            .saturating_mul(1u32 << exp)
            .min(self.policy.max_delay);
        #[allow(clippy::cast_precision_loss)]
        let jitter = 0.5 + (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        Some(raw.mul_f64(jitter))
    }

    /// Retries consumed so far.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.used
    }
}

/// Circuit breaker configuration.
#[derive(Debug, Clone)]
pub struct BreakerOptions {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing one probe.
    pub cooldown: Duration,
}

impl Default for BreakerOptions {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

#[derive(Debug)]
enum BreakerState {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { failures: u32 },
    /// Tripped; rejects until the cooldown expires.
    Open { until: Instant },
    /// Cooldown expired; one probe decides open vs closed.
    HalfOpen,
}

/// A per-backend circuit breaker (Closed → Open → HalfOpen).
///
/// Failure accounting is the caller's: I/O errors and 5xx responses are
/// failures; backpressure (429) is not — a full queue is the backend
/// working as designed, and tripping on it would amplify the overload.
#[derive(Debug)]
pub struct CircuitBreaker {
    options: BreakerOptions,
    state: Mutex<BreakerState>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    #[must_use]
    pub fn new(options: BreakerOptions) -> Self {
        Self {
            options,
            state: Mutex::new(BreakerState::Closed { failures: 0 }),
        }
    }

    /// Whether a request may proceed. An expired open breaker transitions
    /// to half-open and admits the caller as the probe.
    pub fn allow(&self) -> bool {
        let mut state = self.state.lock().expect("unpoisoned");
        match *state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if Instant::now() >= until {
                    *state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a success; returns true when this re-closed a tripped
    /// breaker (for `breaker.closed` accounting).
    pub fn record_success(&self) -> bool {
        let mut state = self.state.lock().expect("unpoisoned");
        let was_tripped = !matches!(*state, BreakerState::Closed { .. });
        *state = BreakerState::Closed { failures: 0 };
        was_tripped
    }

    /// Records a failure; returns true when this tripped the breaker open
    /// (for `breaker.opened` accounting).
    pub fn record_failure(&self) -> bool {
        let mut state = self.state.lock().expect("unpoisoned");
        match *state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.options.failure_threshold {
                    *state = BreakerState::Open {
                        until: Instant::now() + self.options.cooldown,
                    };
                    true
                } else {
                    *state = BreakerState::Closed { failures };
                    false
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed; re-open for another cooldown.
                *state = BreakerState::Open {
                    until: Instant::now() + self.options.cooldown,
                };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// True while the breaker rejects traffic.
    pub fn is_open(&self) -> bool {
        matches!(
            *self.state.lock().expect("unpoisoned"),
            BreakerState::Open { until } if Instant::now() < until
        )
    }
}

/// Inflight-request ceiling; acquire a permit before doing any work.
#[derive(Debug)]
pub struct LoadShedder {
    /// 0 = unlimited.
    limit: usize,
    inflight: AtomicUsize,
}

impl LoadShedder {
    /// A shedder admitting at most `limit` concurrent holders (`0` for
    /// unlimited).
    #[must_use]
    pub fn new(limit: usize) -> Self {
        Self {
            limit,
            inflight: AtomicUsize::new(0),
        }
    }

    /// Tries to admit one request; `None` means shed it immediately. The
    /// permit releases its slot on drop, so every early-return path in
    /// the handler gives the slot back.
    pub fn try_acquire(&self) -> Option<ShedPermit<'_>> {
        if self.limit == 0 {
            return Some(ShedPermit { shedder: None });
        }
        let mut current = self.inflight.load(Ordering::Relaxed);
        loop {
            if current >= self.limit {
                return None;
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(ShedPermit {
                    shedder: Some(self),
                }),
                Err(observed) => current = observed,
            }
        }
    }

    /// Requests currently admitted.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }
}

/// RAII inflight slot from [`LoadShedder::try_acquire`].
#[derive(Debug)]
pub struct ShedPermit<'a> {
    shedder: Option<&'a LoadShedder>,
}

impl Drop for ShedPermit<'_> {
    fn drop(&mut self) {
        if let Some(shedder) = self.shedder {
            shedder.inflight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_budget_and_bounds() {
        let policy = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(250),
        };
        let mut backoff = Backoff::new(policy, 42);
        let mut delays = Vec::new();
        while let Some(d) = backoff.next_delay() {
            delays.push(d);
        }
        assert_eq!(delays.len(), 3, "attempts=4 means 3 retries");
        assert_eq!(backoff.retries(), 3);
        // Jitter keeps each delay in [0.5, 1.0) of its nominal value, and
        // the nominal ladder is 100ms, 200ms, 250ms (capped).
        for (d, nominal) in delays.iter().zip([100u64, 200, 250]) {
            assert!(d.as_millis() as u64 >= nominal / 2, "{d:?} < {nominal}/2");
            assert!(d.as_millis() as u64 <= nominal, "{d:?} > {nominal}");
        }
    }

    #[test]
    fn backoff_jitter_decorrelates_seeds() {
        let policy = RetryPolicy::default();
        let a = Backoff::new(policy.clone(), 1).next_delay().unwrap();
        let b = Backoff::new(policy, 2).next_delay().unwrap();
        assert_ne!(a, b, "different seeds must jitter differently");
    }

    #[test]
    fn breaker_trips_cools_down_and_recloses() {
        let breaker = CircuitBreaker::new(BreakerOptions {
            failure_threshold: 2,
            cooldown: Duration::from_millis(30),
        });
        assert!(breaker.allow());
        assert!(!breaker.record_failure(), "below threshold");
        assert!(breaker.allow());
        assert!(breaker.record_failure(), "threshold trips it open");
        assert!(!breaker.allow());
        assert!(breaker.is_open());
        std::thread::sleep(Duration::from_millis(40));
        assert!(breaker.allow(), "cooldown expired admits a probe");
        assert!(breaker.record_success(), "probe success re-closes");
        assert!(breaker.allow());
        assert!(!breaker.is_open());
    }

    #[test]
    fn breaker_halfopen_probe_failure_reopens() {
        let breaker = CircuitBreaker::new(BreakerOptions {
            failure_threshold: 1,
            cooldown: Duration::from_millis(20),
        });
        assert!(breaker.record_failure());
        std::thread::sleep(Duration::from_millis(30));
        assert!(breaker.allow());
        assert!(breaker.record_failure(), "failed probe re-opens");
        assert!(!breaker.allow());
    }

    #[test]
    fn shedder_limits_and_releases_on_drop() {
        let shedder = LoadShedder::new(2);
        let a = shedder.try_acquire().expect("slot 1");
        let _b = shedder.try_acquire().expect("slot 2");
        assert!(shedder.try_acquire().is_none(), "limit reached");
        assert_eq!(shedder.inflight(), 2);
        drop(a);
        assert_eq!(shedder.inflight(), 1);
        assert!(shedder.try_acquire().is_some(), "slot freed by drop");
    }

    #[test]
    fn shedder_zero_means_unlimited() {
        let shedder = LoadShedder::new(0);
        let permits: Vec<_> = (0..100).map(|_| shedder.try_acquire().unwrap()).collect();
        assert_eq!(shedder.inflight(), 0, "unlimited permits are untracked");
        drop(permits);
    }
}
