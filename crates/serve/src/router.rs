//! Multi-instance serving: consistent-hash routing of canonical cache
//! keys across N backend servers.
//!
//! A [`HashRing`] places 64 virtual nodes per backend on a 64-bit ring;
//! a request's canonical key hashes to a point and walks clockwise to
//! the first backend. Two properties matter for a verdict-cache fleet:
//!
//! * **Affinity** — the same configuration always lands on the same
//!   backend, so each backend's memory/disk tiers see a stable shard of
//!   the keyspace instead of N copies of everything.
//! * **Minimal disruption** — adding or removing a backend remaps only
//!   the keys owned by the virtual nodes that moved (~1/N of the space),
//!   not the whole fleet's working set.
//!
//! [`forward_analyze`] is the shared forwarding loop (used by the
//! `swa serve --route` router process *and* by client-side sharding in
//! `swa request`): walk the ring order, skip open-breaker backends,
//! retry transient failures with jittered backoff, fail over to the next
//! backend, 502 only when every backend is exhausted.
//!
//! Failure taxonomy on a hop:
//! * connect/transport error → breaker failure; retry this backend with
//!   backoff, then fail over;
//! * `429` (backend queue full) → retry with backoff, **no** breaker
//!   penalty (backpressure is the backend working as designed), then
//!   spill over to the next backend;
//! * `503` (backend shutting down) → breaker failure; fail over at once;
//! * anything else (200, 4xx, 500, 504) → a real answer for *this*
//!   request; return it verbatim and record the backend healthy.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use swa_core::{canonicalize, MetricsRecorder, Recorder};

use crate::client::{self, HttpResponse};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::request::{parse_analyze, render_error};
use crate::resilience::{Backoff, BreakerOptions, CircuitBreaker, LoadShedder, RetryPolicy};

/// Virtual nodes per backend — enough that a 2–16 backend fleet splits
/// the keyspace within a few percent of even.
const REPLICAS: usize = 64;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over backend addresses.
#[derive(Debug, Clone)]
pub struct HashRing {
    backends: Vec<String>,
    /// Sorted (point, backend index) pairs.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring; backend order does not matter (placement depends
    /// only on each address string).
    #[must_use]
    pub fn new(backends: Vec<String>) -> Self {
        let mut points = Vec::with_capacity(backends.len() * REPLICAS);
        for (i, addr) in backends.iter().enumerate() {
            for replica in 0..REPLICAS {
                points.push((fnv1a64(format!("{addr}#{replica}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Self { backends, points }
    }

    /// The backend addresses, in construction order (the indices returned
    /// by [`order`](Self::order) refer to this slice).
    #[must_use]
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// Every backend index in ring order starting at `shard`'s position:
    /// the first entry is the key's owner, the rest are its failover
    /// sequence.
    #[must_use]
    pub fn order(&self, shard: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.backends.len());
        if self.points.is_empty() {
            return out;
        }
        let start = self.points.partition_point(|&(p, _)| p < shard);
        for k in 0..self.points.len() {
            let (_, backend) = self.points[(start + k) % self.points.len()];
            if !out.contains(&backend) {
                out.push(backend);
                if out.len() == self.backends.len() {
                    break;
                }
            }
        }
        out
    }

    /// The owning backend for `shard` (`None` on an empty ring).
    #[must_use]
    pub fn owner(&self, shard: u64) -> Option<usize> {
        self.order(shard).first().copied()
    }
}

/// What [`forward_analyze`] did, for the caller's accounting.
#[derive(Debug)]
pub struct ForwardOutcome {
    /// The response to relay to the client.
    pub response: HttpResponse,
    /// Index (into [`HashRing::backends`]) that answered.
    pub backend: usize,
    /// Same-backend retries spent across all hops.
    pub retries: u32,
    /// Backends given up on before the answering one.
    pub failovers: u32,
}

/// Forwards one `/analyze` body along `shard`'s ring order. See the
/// module docs for the retry/failover taxonomy. `breakers`, when given,
/// must be parallel to `ring.backends()`.
///
/// # Errors
///
/// Returns a description of the last failure once every backend is
/// exhausted (the caller maps it to 502).
pub fn forward_analyze(
    ring: &HashRing,
    breakers: Option<&[CircuitBreaker]>,
    retry: &RetryPolicy,
    shard: u64,
    body: &str,
    mut on_breaker_opened: impl FnMut(usize),
) -> Result<ForwardOutcome, String> {
    let mut last_error = "no backends configured".to_string();
    let mut retries = 0u32;
    let mut failovers = 0u32;
    for (hop, &backend) in ring.order(shard).iter().enumerate() {
        if hop > 0 {
            failovers += 1;
        }
        let breaker = breakers.map(|b| &b[backend]);
        if breaker.is_some_and(|b| !b.allow()) {
            last_error = format!("backend {} circuit open", ring.backends()[backend]);
            continue;
        }
        let addr = &ring.backends()[backend];
        let mut backoff = Backoff::new(retry.clone(), shard ^ fnv1a64(addr.as_bytes()));
        loop {
            match client::post(addr.as_str(), "/analyze", body) {
                Ok(resp) if resp.status == 429 => {
                    // Backpressure: the backend is healthy, just full.
                    last_error = format!("backend {addr} overloaded (429)");
                    match backoff.next_delay() {
                        Some(delay) => {
                            retries += 1;
                            std::thread::sleep(delay);
                        }
                        None => break, // spill over to the next backend
                    }
                }
                Ok(resp) if resp.status == 503 => {
                    last_error = format!("backend {addr} shutting down (503)");
                    if let Some(b) = breaker {
                        if b.record_failure() {
                            on_breaker_opened(backend);
                        }
                    }
                    break;
                }
                Ok(resp) => {
                    // 200, 4xx, 500, 504: a definitive answer for this
                    // request — relay it.
                    if let Some(b) = breaker {
                        b.record_success();
                    }
                    return Ok(ForwardOutcome {
                        response: resp,
                        backend,
                        retries,
                        failovers,
                    });
                }
                Err(e) => {
                    last_error = format!("backend {addr} unreachable: {e}");
                    let opened = breaker.is_some_and(CircuitBreaker::record_failure);
                    if opened {
                        on_breaker_opened(backend);
                    }
                    match backoff.next_delay() {
                        Some(delay) if !opened => {
                            retries += 1;
                            std::thread::sleep(delay);
                        }
                        _ => break,
                    }
                }
            }
        }
    }
    Err(last_error)
}

/// Router construction options.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend `swa serve` addresses to shard across.
    pub backends: Vec<String>,
    /// Per-hop retry budget and delay shape.
    pub retry: RetryPolicy,
    /// Per-backend circuit-breaker thresholds.
    pub breaker: BreakerOptions,
    /// Max concurrently forwarded requests before shedding (`0` =
    /// unlimited).
    pub shed_inflight: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            retry: RetryPolicy::default(),
            breaker: BreakerOptions::default(),
            shed_inflight: 256,
        }
    }
}

/// A running router (`swa serve --route`): a thin consistent-hash
/// forwarding tier in front of N backend servers. Speaks the same
/// `/analyze`, `/healthz`, `/metrics`, `/shutdown` surface; `/shutdown`
/// stops the router only — backends are owned by their own processes.
#[derive(Debug)]
pub struct Router {
    local_addr: SocketAddr,
    inner: Arc<RouterInner>,
    accept: Option<JoinHandle<()>>,
}

struct RouterInner {
    local_addr: SocketAddr,
    recorder: Arc<MetricsRecorder>,
    ring: HashRing,
    /// Parallel to `ring.backends()`.
    breakers: Vec<CircuitBreaker>,
    retry: RetryPolicy,
    shedder: LoadShedder,
    shutting_down: AtomicBool,
    active: Mutex<usize>,
    idle: Condvar,
}

impl std::fmt::Debug for RouterInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterInner")
            .field("local_addr", &self.local_addr)
            .field("backends", &self.ring.backends())
            .finish()
    }
}

impl Router {
    /// Binds, spawns the accept loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects an empty backend list.
    pub fn start(options: &RouterOptions) -> io::Result<Router> {
        if options.backends.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&options.addr)?;
        let local_addr = listener.local_addr()?;
        let breakers = options
            .backends
            .iter()
            .map(|_| CircuitBreaker::new(options.breaker.clone()))
            .collect();
        let inner = Arc::new(RouterInner {
            local_addr,
            recorder: Arc::new(MetricsRecorder::new()),
            ring: HashRing::new(options.backends.clone()),
            breakers,
            retry: options.retry.clone(),
            shedder: LoadShedder::new(options.shed_inflight),
            shutting_down: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("swa-route-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_inner))?;
        Ok(Router {
            local_addr,
            inner,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router's metrics sink (`route.*` and `breaker.*` counters).
    #[must_use]
    pub fn recorder(&self) -> Arc<MetricsRecorder> {
        Arc::clone(&self.inner.recorder)
    }

    /// Initiates shutdown without waiting.
    pub fn begin_shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Blocks until the router has fully shut down.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// [`begin_shutdown`](Self::begin_shutdown) + [`join`](Self::join).
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.inner.begin_shutdown();
            let _ = handle.join();
        }
    }
}

impl RouterInner {
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.local_addr);
    }

    fn connection_finished(&self) {
        let mut active = self.active.lock().expect("unpoisoned");
        *active -= 1;
        if *active == 0 {
            self.idle.notify_all();
        }
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<RouterInner>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => break,
        };
        if inner.shutting_down.load(Ordering::SeqCst) {
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                503,
                &render_error("shutting-down", "router is shutting down"),
            );
            break;
        }
        *inner.active.lock().expect("unpoisoned") += 1;
        let handler_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("swa-route-conn".to_string())
            .spawn(move || {
                handle_connection(&handler_inner, stream);
                handler_inner.connection_finished();
            });
        if spawned.is_err() {
            inner.connection_finished();
        }
    }
    let mut active = inner.active.lock().expect("unpoisoned");
    while *active != 0 {
        active = inner.idle.wait(active).expect("unpoisoned");
    }
}

fn handle_connection(inner: &Arc<RouterInner>, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(HttpError::Io(_)) => return,
        Err(HttpError::Malformed(message)) => {
            let _ = write_response(&mut stream, 400, &render_error("bad-request", &message));
            return;
        }
        Err(HttpError::TooLarge) => {
            let _ = write_response(
                &mut stream,
                413,
                &render_error("too-large", "request body exceeds the size limit"),
            );
            return;
        }
    };
    let (status, body) = route(inner, &request);
    let _ = write_response(&mut stream, status, &body);
}

fn route(inner: &Arc<RouterInner>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (
            200,
            format!(
                "{{\"status\":\"ok\",\"role\":\"router\",\"backends\":{},\"breakers_open\":{}}}",
                inner.ring.backends().len(),
                inner.breakers.iter().filter(|b| b.is_open()).count(),
            ),
        ),
        ("GET", "/metrics") => (
            200,
            format!("{{\"metrics\":{}}}", inner.recorder.to_json()),
        ),
        ("POST", "/shutdown") => {
            inner.begin_shutdown();
            (200, "{\"status\":\"shutting-down\"}".to_string())
        }
        ("POST", "/analyze") => forward(inner, &request.body),
        (_, "/healthz" | "/metrics" | "/shutdown" | "/analyze") => (
            405,
            render_error("method-not-allowed", "unsupported method for this endpoint"),
        ),
        _ => (404, render_error("not-found", "unknown endpoint")),
    }
}

fn forward(inner: &Arc<RouterInner>, body: &[u8]) -> (u16, String) {
    inner.recorder.counter("route.requests", 1);
    // Shed before parsing: when the router is saturated the cheapest
    // thing to do with a request is nothing at all.
    let Some(_permit) = inner.shedder.try_acquire() else {
        inner.recorder.counter("route.shed", 1);
        return (
            429,
            render_error("overloaded", "router at inflight capacity; retry later"),
        );
    };
    let parsed = match parse_analyze(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            let kind = if e.status() == 400 { "bad-request" } else { "invalid-model" };
            return (e.status(), render_error(kind, &e.to_string()));
        }
    };
    let canon = canonicalize(&parsed.config, parsed.hyperperiods);
    let shard = canon.key.hi ^ canon.key.lo;
    let body = match std::str::from_utf8(body) {
        Ok(body) => body,
        Err(_) => return (400, render_error("bad-request", "body is not UTF-8")),
    };
    let recorder = &inner.recorder;
    let result = forward_analyze(
        &inner.ring,
        Some(&inner.breakers),
        &inner.retry,
        shard,
        body,
        |_| recorder.counter("breaker.opened", 1),
    );
    match result {
        Ok(outcome) => {
            inner.recorder.counter("route.forwarded", 1);
            inner
                .recorder
                .counter("route.retries", u64::from(outcome.retries));
            inner
                .recorder
                .counter("route.failovers", u64::from(outcome.failovers));
            (outcome.response.status, outcome.response.body)
        }
        Err(message) => {
            inner.recorder.counter("route.exhausted", 1);
            (
                502,
                render_error("backends-unavailable", &message),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn ring3() -> HashRing {
        HashRing::new(vec![
            "127.0.0.1:7001".to_string(),
            "127.0.0.1:7002".to_string(),
            "127.0.0.1:7003".to_string(),
        ])
    }

    #[test]
    fn every_backend_owns_a_share_of_the_keyspace() {
        let ring = ring3();
        let mut owned: HashMap<usize, usize> = HashMap::new();
        for i in 0..10_000u64 {
            *owned
                .entry(ring.owner(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).unwrap())
                .or_default() += 1;
        }
        assert_eq!(owned.len(), 3, "every backend owns keys");
        for (&backend, &count) in &owned {
            assert!(
                count > 1_000,
                "backend {backend} owns only {count}/10000 keys — ring badly skewed"
            );
        }
    }

    #[test]
    fn order_lists_every_backend_once_owner_first() {
        let ring = ring3();
        for shard in [0u64, 1, u64::MAX, 0xdead_beef] {
            let order = ring.order(shard);
            assert_eq!(order.len(), 3);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "order must be distinct");
            assert_eq!(order[0], ring.owner(shard).unwrap());
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        let full = ring3();
        let without_last = HashRing::new(vec![
            "127.0.0.1:7001".to_string(),
            "127.0.0.1:7002".to_string(),
        ]);
        for i in 0..2_000u64 {
            let shard = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let before = full.owner(shard).unwrap();
            if before < 2 {
                assert_eq!(
                    without_last.owner(shard).unwrap(),
                    before,
                    "surviving backends must keep their keys"
                );
            }
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(vec![]);
        assert!(ring.owner(7).is_none());
        assert!(ring.order(7).is_empty());
    }

    #[test]
    fn forward_exhausts_unreachable_backends() {
        // Nothing listens on these ports; the forward must fail cleanly
        // (and quickly — retry budget of 1 means no sleeps at all).
        let ring = HashRing::new(vec![
            "127.0.0.1:1".to_string(),
            "127.0.0.1:2".to_string(),
        ]);
        let retry = RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        };
        let mut opened = 0;
        let result = forward_analyze(&ring, None, &retry, 42, "{}", |_| opened += 1);
        let err = result.expect_err("no backend can answer");
        assert!(err.contains("unreachable"), "got: {err}");
    }

    #[test]
    fn forward_skips_open_breakers() {
        let ring = HashRing::new(vec!["127.0.0.1:1".to_string()]);
        let breakers = vec![CircuitBreaker::new(BreakerOptions {
            failure_threshold: 1,
            cooldown: std::time::Duration::from_secs(60),
        })];
        breakers[0].record_failure();
        let retry = RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        };
        let err = forward_analyze(&ring, Some(&breakers), &retry, 42, "{}", |_| {})
            .expect_err("breaker is open");
        assert!(err.contains("circuit open"), "got: {err}");
    }
}
