//! The analysis server: accept loop, request lifecycle, and graceful
//! shutdown.
//!
//! # Request lifecycle
//!
//! ```text
//! accept → handler thread → parse (400/413/422)
//!        → canonicalize → cache lookup ──hit──────────────→ 200 cached:true
//!        → single-flight gate (followers wait for leader, then re-lookup)
//!        → deadline already expired? → 504
//!        → shutting down? → 503
//!        → bounded pool try_submit ──full──→ 429
//!        → worker runs the Analyzer, inserts verdict, replies
//!        → handler renders 200 cached:false (or 500/504)
//! ```
//!
//! **Single-flight**: when several clients submit the *same* canonical
//! request concurrently, only the first (the leader) simulates; the rest
//! park on a per-key gate and re-probe the cache once the leader
//! finishes. Combined with the content-addressed cache this gives the
//! "exactly one simulation per distinct configuration" guarantee the
//! end-to-end tests assert via `serve.analyses`.
//!
//! **Deadlines** are cooperative, like batch-analysis cancellation: they
//! are checked before enqueue and again when a worker picks the job up;
//! an in-flight simulation is never interrupted (its verdict still lands
//! in the cache for the next caller) but the waiting handler responds 504
//! as soon as the deadline passes.
//!
//! **Graceful shutdown** (`/shutdown` or [`Server::begin_shutdown`])
//! stops accepting, lets active connections finish, then drains the
//! worker pool — queued jobs are *invoked* with the cancelled flag so
//! every waiting client hears 503 rather than a dropped connection.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use swa_core::{
    canonicalize, compositional_lookup, open_state_dir, Analyzer, CacheStats, CachedVerdict,
    CanonicalRequest, CheckpointStats, CheckpointStore, LadderMode, MetricsRecorder, Recorder,
    ShardedCheckpointStore, ShardedVerdictCache, VerdictCache, VerdictLadder,
};

use swa_sweep::{render_step_json, run_sweep, SweepEngine, SweepError, SweepEvent};

use crate::http::{
    apply_io_timeouts, is_timeout, read_request, write_chunk, write_chunked_end,
    write_chunked_head, write_response, HttpError, Request,
};
use crate::pool::{Job, WorkerPool};
use crate::request::{parse_analyze, parse_sweep, render_error, render_verdict, AnalyzeRequest};
use crate::resilience::LoadShedder;

/// How often a follower parked on a single-flight gate re-checks its
/// deadline while waiting for the leader.
const GATE_WAIT_SLICE: Duration = Duration::from_millis(25);

/// How many times a follower may lose the re-probe race (leader failed or
/// bypassed the cache) before giving up with 503.
const MAX_FLIGHT_ATTEMPTS: usize = 4;

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Analysis worker threads.
    pub workers: usize,
    /// Bounded queue depth in front of the workers (backpressure beyond
    /// it: 429).
    pub queue_depth: usize,
    /// Verdict-cache byte budget.
    pub cache_bytes: usize,
    /// Checkpoint-store byte budget (`0` disables warm starts). Clients
    /// that re-analyze a configuration at a longer horizon resume the
    /// earlier request's simulation instead of replaying it.
    pub checkpoint_bytes: usize,
    /// Analyze decomposable configurations per module and cache each
    /// module's verdict under its own key, so a request that edits one
    /// module still hits warm entries for every unchanged sibling. The
    /// composed verdict is identical to the whole-configuration verdict;
    /// non-decomposable requests (cross-module messages, topologies)
    /// fall back transparently.
    pub compositional: bool,
    /// Durable state directory. When set, verdicts and checkpoints live
    /// in tiered stores (memory over append-only segment files), so a
    /// restarted server answers previously-seen configurations from disk
    /// instead of re-simulating them. `None` keeps the original
    /// memory-only stores.
    pub state_dir: Option<PathBuf>,
    /// Socket read/write timeout on accepted connections, so a stalling
    /// client cannot pin a handler thread; timed-out requests get 408.
    /// `Duration::ZERO` disables the timeouts.
    pub io_timeout: Duration,
    /// Max concurrently handled `/analyze` requests before shedding with
    /// an immediate 429 — checked *before* the body is parsed, in front
    /// of the worker queue's own backpressure. `0` picks a default
    /// scaled to the pool (`(workers + queue_depth) * 4`, leaving room
    /// for cache hits and single-flight followers).
    pub shed_inflight: usize,
    /// Analytic admission pre-filter: run the verdict ladder
    /// (`swa_core::ladder`, tiers T0–T2) on single-hyperperiod `/analyze`
    /// requests before the worker pool. Decided requests are answered —
    /// and cached — without occupying a worker; the response's
    /// `decided_by` field names the tier. Off by default; `no_cache` and
    /// `explain` requests always take the full simulation path.
    pub ladder: LadderMode,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
            queue_depth: 64,
            cache_bytes: 16 * 1024 * 1024,
            checkpoint_bytes: 16 * 1024 * 1024,
            compositional: false,
            state_dir: None,
            io_timeout: Duration::from_secs(5),
            shed_inflight: 0,
            ladder: LadderMode::Off,
        }
    }
}

/// A running analysis server.
///
/// Dropping the handle shuts the server down gracefully.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop, and returns immediately.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(options: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&options.addr)?;
        let local_addr = listener.local_addr()?;
        let recorder = Arc::new(MetricsRecorder::new());
        let (cache, checkpoints): (Arc<dyn VerdictCache>, Option<Arc<dyn CheckpointStore>>) =
            match &options.state_dir {
                Some(dir) => {
                    let (verdicts, checkpoints) = open_state_dir(
                        dir,
                        options.cache_bytes,
                        options.checkpoint_bytes,
                        Some(recorder.clone() as Arc<dyn Recorder>),
                    )?;
                    (
                        verdicts as Arc<dyn VerdictCache>,
                        checkpoints.map(|c| c as Arc<dyn CheckpointStore>),
                    )
                }
                None => {
                    let cache = Arc::new(
                        ShardedVerdictCache::new(options.cache_bytes)
                            .with_recorder(recorder.clone() as Arc<dyn Recorder>),
                    );
                    let checkpoints = (options.checkpoint_bytes > 0).then(|| {
                        Arc::new(
                            ShardedCheckpointStore::new(options.checkpoint_bytes)
                                .with_recorder(recorder.clone() as Arc<dyn Recorder>),
                        ) as Arc<dyn CheckpointStore>
                    });
                    (cache as Arc<dyn VerdictCache>, checkpoints)
                }
            };
        let shed_limit = if options.shed_inflight == 0 {
            (options.workers + options.queue_depth) * 4
        } else {
            options.shed_inflight
        };
        let inner = Arc::new(Inner {
            local_addr,
            recorder,
            cache,
            checkpoints,
            compositional: options.compositional,
            ladder: options.ladder,
            pool: WorkerPool::new(options.workers, options.queue_depth),
            gates: Mutex::new(HashMap::new()),
            shedder: LoadShedder::new(shed_limit),
            io_timeout: options.io_timeout,
            shutting_down: AtomicBool::new(false),
            active: Mutex::new(0),
            idle: Condvar::new(),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("swa-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_inner))?;
        Ok(Server {
            local_addr,
            inner,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics sink (`serve.*`, `cache.*`, and per-run
    /// simulation counters all land here).
    #[must_use]
    pub fn recorder(&self) -> Arc<MetricsRecorder> {
        Arc::clone(&self.inner.recorder)
    }

    /// Current checkpoint-store statistics (all zero when warm starts are
    /// disabled).
    #[must_use]
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.inner
            .checkpoints
            .as_ref()
            .map(|s| s.stats())
            .unwrap_or_default()
    }

    /// Current verdict-cache statistics.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Initiates shutdown without waiting: stop accepting, then (in the
    /// accept thread) drain active connections and the worker pool.
    pub fn begin_shutdown(&self) {
        self.inner.begin_shutdown();
    }

    /// Blocks until the server has fully shut down (all connections
    /// finished, worker pool drained and joined). Call after
    /// [`begin_shutdown`](Self::begin_shutdown), or let `/shutdown`
    /// trigger it remotely.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Convenience: [`begin_shutdown`](Self::begin_shutdown) +
    /// [`join`](Self::join).
    pub fn shutdown(self) {
        self.begin_shutdown();
        self.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.inner.begin_shutdown();
            let _ = handle.join();
        }
    }
}

/// State shared by the accept loop and every handler thread.
struct Inner {
    local_addr: SocketAddr,
    recorder: Arc<MetricsRecorder>,
    cache: Arc<dyn VerdictCache>,
    /// Warm-start store shared across requests; `None` when disabled.
    checkpoints: Option<Arc<dyn CheckpointStore>>,
    /// Per-module analysis and caching for decomposable requests.
    compositional: bool,
    /// Analytic admission pre-filter mode (see [`ServeOptions::ladder`]).
    ladder: LadderMode,
    pool: WorkerPool,
    /// Single-flight gates, keyed by canonical request key.
    gates: Mutex<HashMap<swa_core::CacheKey, Arc<Gate>>>,
    /// Inflight ceiling checked before any per-request work.
    shedder: LoadShedder,
    /// Socket timeout armed on every accepted connection.
    io_timeout: Duration,
    shutting_down: AtomicBool,
    /// Count of live handler threads; the accept loop waits for 0 during
    /// shutdown.
    active: Mutex<usize>,
    idle: Condvar,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("local_addr", &self.local_addr)
            .field("shutting_down", &self.shutting_down.load(Ordering::Relaxed))
            .finish()
    }
}

impl Inner {
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Flag queued analysis jobs so they reply quickly instead of
        // simulating; nothing is discarded.
        self.pool.cancel();
        // The accept loop is parked in accept(); a self-connection wakes
        // it so it can observe the flag. Failure is fine — the listener
        // may already be gone.
        let _ = TcpStream::connect(self.local_addr);
    }

    fn connection_started(&self) {
        *self.active.lock().expect("unpoisoned") += 1;
    }

    fn connection_finished(&self) {
        let mut active = self.active.lock().expect("unpoisoned");
        *active -= 1;
        if *active == 0 {
            self.idle.notify_all();
        }
    }

    fn wait_connections_drained(&self) {
        let mut active = self.active.lock().expect("unpoisoned");
        while *active != 0 {
            active = self.idle.wait(active).expect("unpoisoned");
        }
    }
}

/// A single-flight gate: followers wait here while the leader simulates.
struct Gate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn open(&self) {
        *self.done.lock().expect("unpoisoned") = true;
        self.cv.notify_all();
    }

    /// Waits until the gate opens or `deadline` passes; true = opened.
    fn wait(&self, deadline: Option<Instant>) -> bool {
        let mut done = self.done.lock().expect("unpoisoned");
        while !*done {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(done, GATE_WAIT_SLICE)
                .expect("unpoisoned");
            done = guard;
        }
        true
    }
}

/// RAII single-flight leadership: removes the gate entry and opens the
/// gate on drop, so *every* leader exit path — success, analysis error,
/// deadline 504, worker panic unwinding through the handler — releases
/// waiting followers. A leaked gate would make all future requests for
/// that key hang until their own deadlines.
struct GateGuard<'a> {
    inner: &'a Inner,
    key: swa_core::CacheKey,
    gate: Arc<Gate>,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.inner
            .gates
            .lock()
            .expect("unpoisoned")
            .remove(&self.key);
        self.gate.open();
    }
}

/// RAII active-connection accounting: decrements on drop so a panic in
/// the handler cannot strand the shutdown drain waiting on a count that
/// never reaches zero.
struct ConnGuard<'a>(&'a Inner);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.connection_finished();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => break,
        };
        // Arm socket timeouts before any byte is read — a stalling
        // client costs at most `io_timeout`, not a thread forever.
        let _ = apply_io_timeouts(&stream, inner.io_timeout);
        if inner.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client); refuse politely.
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                503,
                &render_error("shutting-down", "server is shutting down"),
            );
            break;
        }
        inner.connection_started();
        let handler_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("swa-serve-conn".to_string())
            .spawn(move || {
                let _guard = ConnGuard(&handler_inner);
                handle_connection(&handler_inner, stream);
            });
        if spawned.is_err() {
            inner.connection_finished();
        }
    }
    // Graceful drain: connections first (they may still enqueue replies),
    // then the pool (runs queued jobs with the cancelled flag set).
    inner.wait_connections_drained();
    inner.pool.shutdown();
}

fn handle_connection(inner: &Arc<Inner>, mut stream: TcpStream) {
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(HttpError::Io(e)) => {
            if is_timeout(&e) {
                inner.recorder.counter("serve.timeouts", 1);
                let _ = write_response(
                    &mut stream,
                    408,
                    &render_error("timeout", "client stalled mid-request"),
                );
            }
            return;
        }
        Err(HttpError::Malformed(message)) => {
            let _ = write_response(&mut stream, 400, &render_error("bad-request", &message));
            return;
        }
        Err(HttpError::TooLarge) => {
            let _ = write_response(
                &mut stream,
                413,
                &render_error("too-large", "request body exceeds the size limit"),
            );
            return;
        }
    };
    // `/sweep` streams a chunked response, so it owns the socket instead
    // of going through the buffered (status, body) route.
    if request.method == "POST" && request.path == "/sweep" {
        sweep_stream(inner, &mut stream, &request.body);
        return;
    }
    let (status, body) = route(inner, &request);
    let _ = write_response(&mut stream, status, &body);
}

/// Handles `POST /sweep`: shed/parse/admission errors are plain buffered
/// responses; once the sweep is admitted the response switches to
/// `Transfer-Encoding: chunked` and forwards one JSON line per refinement
/// step, ending with the canonical report line (byte-equal to the `swa
/// sweep --json` CLI output for the same request).
fn sweep_stream(inner: &Arc<Inner>, stream: &mut TcpStream, body: &[u8]) {
    let Some(_permit) = inner.shedder.try_acquire() else {
        inner.recorder.counter("serve.shed", 1);
        let _ = write_response(
            stream,
            429,
            &render_error("overloaded", "server at inflight capacity; retry later"),
        );
        return;
    };
    inner.recorder.counter("serve.requests", 1);
    let parsed = match parse_sweep(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            let kind = if e.status() == 400 { "bad-request" } else { "invalid-model" };
            let _ = write_response(stream, e.status(), &render_error(kind, &e.to_string()));
            return;
        }
    };
    if inner.shutting_down.load(Ordering::SeqCst) {
        let _ = write_response(
            stream,
            503,
            &render_error("shutting-down", "server is shutting down"),
        );
        return;
    }
    let deadline = parsed
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let (line_tx, line_rx) = mpsc::channel::<String>();
    let job_inner = Arc::clone(inner);
    let job: Job = Box::new(move |ctx| {
        if ctx.is_cancelled() {
            let _ = line_tx.send(render_error(
                "shutting-down",
                "server cancelled the sweep during shutdown",
            ));
            return;
        }
        job_inner.recorder.counter("serve.sweeps", 1);
        // The server's compositional mode widens per-module reuse for
        // every sweep probe; a request asking for it explicitly keeps it.
        let mut options = parsed.options;
        options.compositional = options.compositional || job_inner.compositional;
        let mut engine = match SweepEngine::new(parsed.config, options) {
            Ok(engine) => engine,
            Err(e) => {
                job_inner.recorder.counter("serve.errors", 1);
                let _ = line_tx.send(render_error("sweep-failed", &e.to_string()));
                return;
            }
        };
        engine = engine
            .cache(Arc::clone(&job_inner.cache))
            .recorder(job_inner.recorder.clone() as Arc<dyn Recorder>);
        if let Some(store) = &job_inner.checkpoints {
            engine = engine.checkpoints(Arc::clone(store));
        }
        let result = run_sweep(
            &mut engine,
            parsed.axis,
            parsed.per_task,
            |event| {
                if let SweepEvent::Step(step) = event {
                    let _ = line_tx.send(render_step_json(step));
                }
            },
            || ctx.is_cancelled() || deadline.is_some_and(|d| Instant::now() >= d),
        );
        let final_line = match result {
            Ok(report) => report.render_json(),
            Err(SweepError::Aborted) => {
                if ctx.is_cancelled() {
                    render_error("shutting-down", "server cancelled the sweep during shutdown")
                } else {
                    job_inner.recorder.counter("serve.deadline_expired", 1);
                    render_error("deadline", "request deadline expired")
                }
            }
            Err(e) => {
                job_inner.recorder.counter("serve.errors", 1);
                render_error("sweep-failed", &e.to_string())
            }
        };
        let _ = line_tx.send(final_line);
    });

    if inner.pool.try_submit(job).is_err() {
        inner.recorder.counter("serve.rejected", 1);
        let _ = write_response(
            stream,
            429,
            &render_error("overloaded", "analysis queue is full; retry later"),
        );
        return;
    }

    // Committed: from here on the response is chunked. Any error below is
    // delivered as an in-stream JSON line, never a status code.
    if write_chunked_head(stream, 200).is_err() {
        return;
    }
    loop {
        let received = match deadline {
            None => line_rx.recv().ok(),
            Some(d) => {
                // The deadline bounds *waiting* between lines; the worker
                // also polls it between probes and aborts cooperatively.
                let remaining = d.saturating_duration_since(Instant::now());
                match line_rx.recv_timeout(remaining.max(Duration::from_millis(1))) {
                    Ok(line) => Some(line),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        inner.recorder.counter("serve.deadline_expired", 1);
                        let _ =
                            write_chunk(stream, &render_error("deadline", "request deadline expired"));
                        break;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                }
            }
        };
        match received {
            Some(line) => {
                if write_chunk(stream, &line).is_err() {
                    return;
                }
            }
            // Sender dropped: the worker sent its final line and finished.
            None => break,
        }
    }
    let _ = write_chunked_end(stream);
}

fn route(inner: &Arc<Inner>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, render_health(inner)),
        ("GET", "/metrics") => (200, render_metrics(inner)),
        ("POST", "/shutdown") => {
            inner.begin_shutdown();
            (200, "{\"status\":\"shutting-down\"}".to_string())
        }
        ("POST", "/analyze") => analyze(inner, &request.body),
        (_, "/healthz" | "/metrics" | "/shutdown" | "/analyze" | "/sweep") => (
            405,
            render_error("method-not-allowed", "unsupported method for this endpoint"),
        ),
        _ => (404, render_error("not-found", "unknown endpoint")),
    }
}

fn render_health(inner: &Inner) -> String {
    format!(
        "{{\"status\":\"ok\",\"shutting_down\":{},\"active_connections\":{}}}",
        inner.shutting_down.load(Ordering::SeqCst),
        *inner.active.lock().expect("unpoisoned"),
    )
}

fn render_metrics(inner: &Inner) -> String {
    let stats = inner.cache.stats();
    let ckpt = inner
        .checkpoints
        .as_ref()
        .map(|s| s.stats())
        .unwrap_or_default();
    format!(
        "{{\"cache\":{{\"entries\":{},\"bytes\":{},\"hit_rate\":{:.4}}},\
         \"checkpoints\":{{\"entries\":{},\"bytes\":{},\"bytes_saved\":{},\"delta_chain_len\":{}}},\
         \"metrics\":{}}}",
        stats.entries,
        stats.bytes,
        stats.hit_rate(),
        ckpt.entries,
        ckpt.bytes,
        ckpt.bytes_saved,
        ckpt.delta_chain_len,
        inner.recorder.to_json(),
    )
}

/// What a worker reports back to the waiting handler.
enum JobReply {
    Done {
        verdict: Arc<CachedVerdict>,
        check: Duration,
    },
    Cancelled,
    DeadlineExpired,
    Failed(String),
}

fn analyze(inner: &Arc<Inner>, body: &[u8]) -> (u16, String) {
    // Shed before parsing: the queue-full 429 only fires after a parse,
    // canonicalize, and cache probe, which is already too much work to
    // spend per request when the box is saturated. The permit spans the
    // whole handler (cache hit, gate wait, or simulation alike).
    let Some(_permit) = inner.shedder.try_acquire() else {
        inner.recorder.counter("serve.shed", 1);
        return (
            429,
            render_error("overloaded", "server at inflight capacity; retry later"),
        );
    };
    inner.recorder.counter("serve.requests", 1);
    let parsed = match parse_analyze(body) {
        Ok(parsed) => parsed,
        Err(e) => {
            let kind = if e.status() == 400 { "bad-request" } else { "invalid-model" };
            return (e.status(), render_error(kind, &e.to_string()));
        }
    };
    let deadline = parsed
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let canon = canonicalize(&parsed.config, parsed.hyperperiods);

    if parsed.no_cache {
        // Cache bypass also skips single-flight: the client explicitly
        // asked for a fresh simulation.
        return run_leader(inner, parsed, &canon, deadline);
    }

    for _ in 0..MAX_FLIGHT_ATTEMPTS {
        // Under compositional mode a miss on the whole key still composes
        // a cached answer when every module's verdict is warm (the
        // composed verdict is inserted back under the whole key).
        let cached = if inner.compositional {
            compositional_lookup(&*inner.cache, &parsed.config, parsed.hyperperiods)
        } else {
            inner.cache.lookup(&canon)
        };
        if let Some(verdict) = cached {
            return (200, render_verdict(&verdict, true, canon.key, 0.0));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            inner.recorder.counter("serve.deadline_expired", 1);
            return (504, render_error("deadline", "request deadline expired"));
        }
        if inner.shutting_down.load(Ordering::SeqCst) {
            return (503, render_error("shutting-down", "server is shutting down"));
        }
        let gate = {
            let mut gates = inner.gates.lock().expect("unpoisoned");
            match gates.get(&canon.key) {
                Some(gate) => Err(Arc::clone(gate)),
                None => {
                    let gate = Arc::new(Gate::new());
                    gates.insert(canon.key, Arc::clone(&gate));
                    Ok(gate)
                }
            }
        };
        match gate {
            Ok(gate) => {
                // Leader: simulate. The guard removes the gate entry and
                // opens it on drop — every exit path from run_leader
                // (verdict, analysis error, 504, worker panic) releases
                // the followers.
                let _lead = GateGuard {
                    inner,
                    key: canon.key,
                    gate,
                };
                return run_leader(inner, parsed, &canon, deadline);
            }
            Err(gate) => {
                // Follower: wait for the leader, then re-probe the cache.
                if !gate.wait(deadline) {
                    inner.recorder.counter("serve.deadline_expired", 1);
                    return (504, render_error("deadline", "request deadline expired"));
                }
            }
        }
    }
    (
        503,
        render_error("retry", "request kept losing the cache race; retry"),
    )
}

/// Runs one analysis on the worker pool and renders the response.
fn run_leader(
    inner: &Arc<Inner>,
    parsed: AnalyzeRequest,
    canon: &CanonicalRequest,
    deadline: Option<Instant>,
) -> (u16, String) {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        inner.recorder.counter("serve.deadline_expired", 1);
        return (504, render_error("deadline", "request deadline expired"));
    }
    // Analytic admission: a ladder-decided request never touches the
    // worker pool. Gated to single-hyperperiod requests (the ladder's
    // tiers reason over one hyperperiod) and skipped for `no_cache`
    // (explicit fresh simulation) and `explain` (wants the full run's
    // forensics machinery).
    if inner.ladder != LadderMode::Off
        && parsed.hyperperiods == 1
        && !parsed.no_cache
        && !parsed.explain
    {
        let started = Instant::now();
        let ladder = VerdictLadder::new(inner.ladder);
        if let Some(decision) = ladder.evaluate(&parsed.config, inner.recorder.as_ref()) {
            let verdict = Arc::new(CachedVerdict::from_ladder(&decision, &parsed.config));
            inner.cache.insert(canon, Arc::clone(&verdict));
            inner.recorder.counter("serve.ladder_decided", 1);
            #[allow(clippy::cast_precision_loss)]
            let check_ms = started.elapsed().as_secs_f64() * 1e3;
            return (200, render_verdict(&verdict, false, canon.key, check_ms));
        }
    }
    let (reply_tx, reply_rx) = mpsc::channel::<JobReply>();
    let job_inner = Arc::clone(inner);
    let job_canon = canon.clone();
    let job: Job = Box::new(move |ctx| {
        if ctx.is_cancelled() {
            let _ = reply_tx.send(JobReply::Cancelled);
            return;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = reply_tx.send(JobReply::DeadlineExpired);
            return;
        }
        let started = Instant::now();
        let mut analyzer = Analyzer::new(&parsed.config)
            .engine(parsed.engine)
            .horizon(parsed.hyperperiods)
            .recorder(job_inner.recorder.clone() as Arc<dyn Recorder>)
            .explain(parsed.explain);
        // `no_cache` asks for a fresh simulation; honor it for warm
        // starts too, not just the verdict cache.
        if !parsed.no_cache {
            if let Some(store) = &job_inner.checkpoints {
                analyzer = analyzer.checkpoints(Arc::clone(store));
            }
            if job_inner.compositional {
                // The analyzer inserts per-module verdicts (and the whole
                // key) itself, so the manual insert below is skipped.
                analyzer = analyzer
                    .compositional(true)
                    .cache(Arc::clone(&job_inner.cache));
            }
        }
        let result = analyzer.run();
        job_inner.recorder.counter("serve.analyses", 1);
        let reply = match result {
            Ok(report) => {
                let verdict = Arc::new(CachedVerdict::from_report(&report));
                if !parsed.no_cache && !job_inner.compositional {
                    job_inner.cache.insert(&job_canon, Arc::clone(&verdict));
                }
                JobReply::Done {
                    verdict,
                    check: started.elapsed(),
                }
            }
            Err(e) => JobReply::Failed(e.to_string()),
        };
        let _ = reply_tx.send(reply);
    });

    if inner.pool.try_submit(job).is_err() {
        inner.recorder.counter("serve.rejected", 1);
        return (
            429,
            render_error("overloaded", "analysis queue is full; retry later"),
        );
    }

    let reply = match deadline {
        None => reply_rx.recv().ok(),
        Some(d) => {
            // The deadline bounds *waiting*; a simulation already running
            // is never interrupted, so give the reply a final grace poll.
            let remaining = d.saturating_duration_since(Instant::now());
            match reply_rx.recv_timeout(remaining.max(Duration::from_millis(1))) {
                Ok(reply) => Some(reply),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    inner.recorder.counter("serve.deadline_expired", 1);
                    return (504, render_error("deadline", "request deadline expired"));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => None,
            }
        }
    };

    match reply {
        Some(JobReply::Done { verdict, check }) => {
            #[allow(clippy::cast_precision_loss)]
            let check_ms = check.as_secs_f64() * 1e3;
            (200, render_verdict(&verdict, false, canon.key, check_ms))
        }
        Some(JobReply::Cancelled) => (
            503,
            render_error("shutting-down", "server cancelled the request during shutdown"),
        ),
        Some(JobReply::DeadlineExpired) => {
            inner.recorder.counter("serve.deadline_expired", 1);
            (504, render_error("deadline", "request deadline expired"))
        }
        Some(JobReply::Failed(message)) => {
            inner.recorder.counter("serve.errors", 1);
            (500, render_error("analysis-failed", &message))
        }
        None => {
            inner.recorder.counter("serve.errors", 1);
            (500, render_error("internal", "worker dropped the request"))
        }
    }
}
