//! End-to-end server tests over a loopback socket.
//!
//! These exercise the full stack — real TCP connections, the hand-rolled
//! HTTP layer, the JSON envelope, the single-flight verdict cache, and
//! the worker pool — and prove the PR's headline guarantee: concurrent
//! duplicate configurations trigger **exactly one** simulation (asserted
//! via the in-process `Recorder` counters, not response inspection
//! alone).

use std::sync::Arc;
use std::time::Duration;

use swa_core::obs::json_escape;
use swa_ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, SchedulerKind, Task,
    Window,
};
use swa_serve::{client, Json, ServeOptions, Server};

fn small_config(wcet: i64) -> Configuration {
    Configuration {
        core_types: vec![CoreType::new("ct")],
        modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
        partitions: vec![Partition::new(
            "P",
            SchedulerKind::Fpps,
            vec![Task::new("t", 1, vec![wcet], 50)],
        )],
        binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
        windows: vec![vec![Window::new(0, 50)]],
        messages: vec![],
    }
}

fn envelope(config: &Configuration, extra: &str) -> String {
    format!(
        "{{\"config_xml\":\"{}\"{}}}",
        json_escape(&swa_xmlio::configuration_to_xml(config)),
        extra
    )
}

fn start_server() -> Server {
    Server::start(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 32,
        cache_bytes: 4 * 1024 * 1024,
        checkpoint_bytes: 4 * 1024 * 1024,
        compositional: false,
    })
    .expect("bind loopback server")
}

fn two_module_config(wcet_b: i64) -> Configuration {
    Configuration {
        core_types: vec![CoreType::new("ct")],
        modules: vec![
            Module::homogeneous("MA", 1, CoreTypeId::from_raw(0)),
            Module::homogeneous("MB", 1, CoreTypeId::from_raw(0)),
        ],
        partitions: vec![
            Partition::new(
                "PA",
                SchedulerKind::Fpps,
                vec![Task::new("a", 1, vec![10], 50)],
            ),
            Partition::new(
                "PB",
                SchedulerKind::Fpps,
                vec![Task::new("b", 1, vec![wcet_b], 50)],
            ),
        ],
        binding: vec![
            CoreRef::new(ModuleId::from_raw(0), 0),
            CoreRef::new(ModuleId::from_raw(1), 0),
        ],
        windows: vec![vec![Window::new(0, 50)], vec![Window::new(0, 50)]],
        messages: vec![],
    }
}

#[test]
fn compositional_server_reuses_unchanged_modules_across_edits() {
    let server = Server::start(&ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 32,
        cache_bytes: 4 * 1024 * 1024,
        checkpoint_bytes: 4 * 1024 * 1024,
        compositional: true,
    })
    .expect("bind loopback server");
    let addr = server.local_addr();

    let first = client::post(addr, "/analyze", &envelope(&two_module_config(10), "")).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body);
    let doc = Json::parse(&first.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("serve.analyses"), 1);
    // One verdict per module plus the composed whole-configuration entry.
    assert_eq!(recorder.counter_value("cache.insertions"), 3);

    // An exact repeat is a whole-key cache hit.
    let repeat = client::post(addr, "/analyze", &envelope(&two_module_config(10), "")).unwrap();
    let doc = Json::parse(&repeat.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(recorder.counter_value("serve.analyses"), 1);

    // Editing one module simulates again, but the unchanged sibling
    // resumes from its checkpoint: a full hit, not a fresh simulation.
    let edited = client::post(addr, "/analyze", &envelope(&two_module_config(20), "")).unwrap();
    assert_eq!(edited.status, 200, "body: {}", edited.body);
    let doc = Json::parse(&edited.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));
    assert!(
        server.checkpoint_stats().full_hits >= 1,
        "unchanged module should warm-start from its checkpoint"
    );
    server.shutdown();
}

#[test]
fn concurrent_duplicate_requests_simulate_exactly_once() {
    let server = start_server();
    let addr = server.local_addr();
    let body = Arc::new(envelope(&small_config(10), ""));

    const CLIENTS: usize = 6;
    let responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let body = Arc::clone(&body);
                s.spawn(move || client::post(addr, "/analyze", &body).expect("post"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });

    let mut fresh = 0;
    let mut cached = 0;
    for resp in &responses {
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let doc = Json::parse(&resp.body).expect("valid JSON response");
        assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));
        match doc.get("cached").and_then(Json::as_bool) {
            Some(false) => fresh += 1,
            Some(true) => cached += 1,
            other => panic!("missing cached marker: {other:?}"),
        }
    }
    assert_eq!(fresh, 1, "exactly one request may simulate");
    assert_eq!(cached, CLIENTS - 1);

    // The authoritative proof: the Recorder counted one simulation.
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("serve.analyses"), 1);
    assert_eq!(recorder.counter_value("serve.requests"), CLIENTS as u64);
    assert_eq!(recorder.counter_value("cache.insertions"), 1);
    assert!(recorder.counter_value("cache.hits") >= (CLIENTS - 1) as u64);
    server.shutdown();
}

#[test]
fn distinct_configurations_each_simulate() {
    let server = start_server();
    let addr = server.local_addr();
    for wcet in [5, 10, 15] {
        let resp = client::post(addr, "/analyze", &envelope(&small_config(wcet), "")).unwrap();
        assert_eq!(resp.status, 200);
    }
    assert_eq!(server.recorder().counter_value("serve.analyses"), 3);
    server.shutdown();
}

#[test]
fn no_cache_bypasses_the_cache() {
    let server = start_server();
    let addr = server.local_addr();
    let body = envelope(&small_config(10), ",\"no_cache\":true");
    for _ in 0..2 {
        let resp = client::post(addr, "/analyze", &body).unwrap();
        assert_eq!(resp.status, 200);
        let doc = Json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    }
    assert_eq!(server.recorder().counter_value("serve.analyses"), 2);
    server.shutdown();
}

#[test]
fn longer_horizon_request_warm_starts_from_an_earlier_one() {
    let server = start_server();
    let addr = server.local_addr();
    let config = small_config(10);

    // First request checkpoints its end state…
    let first = client::post(addr, "/analyze", &envelope(&config, "")).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(server.checkpoint_stats().insertions, 1);

    // …and a longer-horizon re-analysis of the same configuration resumes
    // it (the verdict cache cannot serve this: the horizon differs).
    let longer = client::post(
        addr,
        "/analyze",
        &envelope(&config, ",\"hyperperiods\":3"),
    )
    .unwrap();
    assert_eq!(longer.status, 200);
    let doc = Json::parse(&longer.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));

    let stats = server.checkpoint_stats();
    assert_eq!(stats.hits, 1, "the longer run resumed the first one");
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("checkpoint.hits"), 1);
    assert_eq!(recorder.counter_value("serve.analyses"), 2);
    server.shutdown();
}

#[test]
fn no_cache_also_bypasses_warm_starts() {
    let server = start_server();
    let addr = server.local_addr();
    let config = small_config(10);
    client::post(addr, "/analyze", &envelope(&config, "")).unwrap();
    let resp = client::post(
        addr,
        "/analyze",
        &envelope(&config, ",\"hyperperiods\":2,\"no_cache\":true"),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    let stats = server.checkpoint_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.insertions, 1, "only the cache-honoring request checkpointed");
    server.shutdown();
}

#[test]
fn expired_deadline_returns_504_without_simulating() {
    let server = start_server();
    let addr = server.local_addr();
    let resp = client::post(
        addr,
        "/analyze",
        &envelope(&small_config(10), ",\"deadline_ms\":0"),
    )
    .unwrap();
    assert_eq!(resp.status, 504, "body: {}", resp.body);
    let doc = Json::parse(&resp.body).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("deadline"));
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("serve.analyses"), 0);
    assert!(recorder.counter_value("serve.deadline_expired") >= 1);
    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_in_flight_requests() {
    let server = start_server();
    let addr = server.local_addr();
    // A heavier request so shutdown genuinely overlaps the simulation.
    let heavy = envelope(&swa_workload::table1_config(2000), "");

    let in_flight = std::thread::spawn(move || client::post(addr, "/analyze", &heavy));
    std::thread::sleep(Duration::from_millis(30));
    server.begin_shutdown();
    server.join();

    // The in-flight request was answered, not dropped: either it finished
    // (200) or shutdown cancelled it cooperatively (503) — never a
    // connection error.
    let resp = in_flight.join().expect("client thread").expect("response");
    assert!(
        resp.status == 200 || resp.status == 503,
        "unexpected status {}: {}",
        resp.status,
        resp.body
    );

    // After shutdown the port no longer accepts work.
    let after = client::post(addr, "/analyze", &envelope(&small_config(10), ""));
    match after {
        Err(_) => {}
        Ok(resp) => assert_eq!(resp.status, 503),
    }
}

#[test]
fn health_metrics_and_error_paths() {
    let server = start_server();
    let addr = server.local_addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let doc = Json::parse(&health.body).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));

    // A miss + hit pair so the metrics have something to show.
    let body = envelope(&small_config(10), "");
    assert_eq!(client::post(addr, "/analyze", &body).unwrap().status, 200);
    assert_eq!(client::post(addr, "/analyze", &body).unwrap().status, 200);

    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = Json::parse(&metrics.body).unwrap();
    let cache = doc.get("cache").expect("cache gauges");
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    for counter in ["cache.hits", "cache.misses", "cache.insertions", "serve.analyses"] {
        assert!(
            metrics.body.contains(counter),
            "/metrics missing {counter}: {}",
            metrics.body
        );
    }

    // Error paths: unknown endpoint, wrong method, malformed JSON, bad
    // model.
    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(addr, "/analyze").unwrap().status, 405);
    assert_eq!(client::post(addr, "/analyze", "{oops").unwrap().status, 400);
    assert_eq!(
        client::post(addr, "/analyze", "{\"config_xml\":\"<x/>\"}").unwrap().status,
        422
    );
    server.shutdown();
}
