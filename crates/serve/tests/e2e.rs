//! End-to-end server tests over a loopback socket.
//!
//! These exercise the full stack — real TCP connections, the hand-rolled
//! HTTP layer, the JSON envelope, the single-flight verdict cache, and
//! the worker pool — and prove the PR's headline guarantee: concurrent
//! duplicate configurations trigger **exactly one** simulation (asserted
//! via the in-process `Recorder` counters, not response inspection
//! alone).

use std::sync::Arc;
use std::time::Duration;

use swa_core::obs::json_escape;
use swa_ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, SchedulerKind, Task,
    Window,
};
use swa_serve::{client, Json, ServeOptions, Server};

fn small_config(wcet: i64) -> Configuration {
    Configuration {
        core_types: vec![CoreType::new("ct")],
        modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
        partitions: vec![Partition::new(
            "P",
            SchedulerKind::Fpps,
            vec![Task::new("t", 1, vec![wcet], 50)],
        )],
        binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
        windows: vec![vec![Window::new(0, 50)]],
        messages: vec![],
    }
}

fn envelope(config: &Configuration, extra: &str) -> String {
    format!(
        "{{\"config_xml\":\"{}\"{}}}",
        json_escape(&swa_xmlio::configuration_to_xml(config)),
        extra
    )
}

fn test_options() -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 32,
        cache_bytes: 4 * 1024 * 1024,
        checkpoint_bytes: 4 * 1024 * 1024,
        ..ServeOptions::default()
    }
}

fn start_server() -> Server {
    Server::start(&test_options()).expect("bind loopback server")
}

/// A configuration that passes request validation but fails analysis:
/// the message's worst-case delay (60) does not fit within its sender's
/// period (50), which the model build rejects (`DelayExceedsPeriod`)
/// after the request layer has already accepted the envelope.
fn failing_config() -> Configuration {
    use swa_ima::{Message, TaskRef};
    Configuration {
        core_types: vec![CoreType::new("ct")],
        modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
        partitions: vec![
            Partition::new(
                "P0",
                SchedulerKind::Fpps,
                vec![Task::new("send", 1, vec![5], 50)],
            ),
            Partition::new(
                "P1",
                SchedulerKind::Fpps,
                vec![Task::new("recv", 1, vec![5], 50)],
            ),
        ],
        binding: vec![
            CoreRef::new(ModuleId::from_raw(0), 0),
            CoreRef::new(ModuleId::from_raw(0), 0),
        ],
        windows: vec![vec![Window::new(0, 25)], vec![Window::new(25, 50)]],
        messages: vec![Message::new(
            "too-slow",
            TaskRef::new(swa_ima::PartitionId::from_raw(0), 0),
            TaskRef::new(swa_ima::PartitionId::from_raw(1), 0),
            60,
            60,
        )],
    }
}

fn two_module_config(wcet_b: i64) -> Configuration {
    Configuration {
        core_types: vec![CoreType::new("ct")],
        modules: vec![
            Module::homogeneous("MA", 1, CoreTypeId::from_raw(0)),
            Module::homogeneous("MB", 1, CoreTypeId::from_raw(0)),
        ],
        partitions: vec![
            Partition::new(
                "PA",
                SchedulerKind::Fpps,
                vec![Task::new("a", 1, vec![10], 50)],
            ),
            Partition::new(
                "PB",
                SchedulerKind::Fpps,
                vec![Task::new("b", 1, vec![wcet_b], 50)],
            ),
        ],
        binding: vec![
            CoreRef::new(ModuleId::from_raw(0), 0),
            CoreRef::new(ModuleId::from_raw(1), 0),
        ],
        windows: vec![vec![Window::new(0, 50)], vec![Window::new(0, 50)]],
        messages: vec![],
    }
}

#[test]
fn compositional_server_reuses_unchanged_modules_across_edits() {
    let server = Server::start(&ServeOptions {
        compositional: true,
        ..test_options()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();

    let first = client::post(addr, "/analyze", &envelope(&two_module_config(10), "")).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body);
    let doc = Json::parse(&first.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("serve.analyses"), 1);
    // One verdict per module plus the composed whole-configuration entry.
    assert_eq!(recorder.counter_value("cache.insertions"), 3);

    // An exact repeat is a whole-key cache hit.
    let repeat = client::post(addr, "/analyze", &envelope(&two_module_config(10), "")).unwrap();
    let doc = Json::parse(&repeat.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(recorder.counter_value("serve.analyses"), 1);

    // Editing one module simulates again, but the unchanged sibling
    // resumes from its checkpoint: a full hit, not a fresh simulation.
    let edited = client::post(addr, "/analyze", &envelope(&two_module_config(20), "")).unwrap();
    assert_eq!(edited.status, 200, "body: {}", edited.body);
    let doc = Json::parse(&edited.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));
    assert!(
        server.checkpoint_stats().full_hits >= 1,
        "unchanged module should warm-start from its checkpoint"
    );
    server.shutdown();
}

#[test]
fn concurrent_duplicate_requests_simulate_exactly_once() {
    let server = start_server();
    let addr = server.local_addr();
    let body = Arc::new(envelope(&small_config(10), ""));

    const CLIENTS: usize = 6;
    let responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let body = Arc::clone(&body);
                s.spawn(move || client::post(addr, "/analyze", &body).expect("post"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });

    let mut fresh = 0;
    let mut cached = 0;
    for resp in &responses {
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let doc = Json::parse(&resp.body).expect("valid JSON response");
        assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));
        match doc.get("cached").and_then(Json::as_bool) {
            Some(false) => fresh += 1,
            Some(true) => cached += 1,
            other => panic!("missing cached marker: {other:?}"),
        }
    }
    assert_eq!(fresh, 1, "exactly one request may simulate");
    assert_eq!(cached, CLIENTS - 1);

    // The authoritative proof: the Recorder counted one simulation.
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("serve.analyses"), 1);
    assert_eq!(recorder.counter_value("serve.requests"), CLIENTS as u64);
    assert_eq!(recorder.counter_value("cache.insertions"), 1);
    assert!(recorder.counter_value("cache.hits") >= (CLIENTS - 1) as u64);
    server.shutdown();
}

#[test]
fn distinct_configurations_each_simulate() {
    let server = start_server();
    let addr = server.local_addr();
    for wcet in [5, 10, 15] {
        let resp = client::post(addr, "/analyze", &envelope(&small_config(wcet), "")).unwrap();
        assert_eq!(resp.status, 200);
    }
    assert_eq!(server.recorder().counter_value("serve.analyses"), 3);
    server.shutdown();
}

#[test]
fn no_cache_bypasses_the_cache() {
    let server = start_server();
    let addr = server.local_addr();
    let body = envelope(&small_config(10), ",\"no_cache\":true");
    for _ in 0..2 {
        let resp = client::post(addr, "/analyze", &body).unwrap();
        assert_eq!(resp.status, 200);
        let doc = Json::parse(&resp.body).unwrap();
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    }
    assert_eq!(server.recorder().counter_value("serve.analyses"), 2);
    server.shutdown();
}

#[test]
fn longer_horizon_request_warm_starts_from_an_earlier_one() {
    let server = start_server();
    let addr = server.local_addr();
    let config = small_config(10);

    // First request checkpoints its end state…
    let first = client::post(addr, "/analyze", &envelope(&config, "")).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(server.checkpoint_stats().insertions, 1);

    // …and a longer-horizon re-analysis of the same configuration resumes
    // it (the verdict cache cannot serve this: the horizon differs).
    let longer = client::post(
        addr,
        "/analyze",
        &envelope(&config, ",\"hyperperiods\":3"),
    )
    .unwrap();
    assert_eq!(longer.status, 200);
    let doc = Json::parse(&longer.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("schedulable").and_then(Json::as_bool), Some(true));

    let stats = server.checkpoint_stats();
    assert_eq!(stats.hits, 1, "the longer run resumed the first one");
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("checkpoint.hits"), 1);
    assert_eq!(recorder.counter_value("serve.analyses"), 2);
    server.shutdown();
}

#[test]
fn no_cache_also_bypasses_warm_starts() {
    let server = start_server();
    let addr = server.local_addr();
    let config = small_config(10);
    client::post(addr, "/analyze", &envelope(&config, "")).unwrap();
    let resp = client::post(
        addr,
        "/analyze",
        &envelope(&config, ",\"hyperperiods\":2,\"no_cache\":true"),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    let stats = server.checkpoint_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.insertions, 1, "only the cache-honoring request checkpointed");
    server.shutdown();
}

#[test]
fn expired_deadline_returns_504_without_simulating() {
    let server = start_server();
    let addr = server.local_addr();
    let resp = client::post(
        addr,
        "/analyze",
        &envelope(&small_config(10), ",\"deadline_ms\":0"),
    )
    .unwrap();
    assert_eq!(resp.status, 504, "body: {}", resp.body);
    let doc = Json::parse(&resp.body).unwrap();
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("deadline"));
    let recorder = server.recorder();
    assert_eq!(recorder.counter_value("serve.analyses"), 0);
    assert!(recorder.counter_value("serve.deadline_expired") >= 1);
    server.shutdown();
}

#[test]
fn graceful_shutdown_finishes_in_flight_requests() {
    let server = start_server();
    let addr = server.local_addr();
    // A heavier request so shutdown genuinely overlaps the simulation.
    let heavy = envelope(&swa_workload::table1_config(2000), "");

    let in_flight = std::thread::spawn(move || client::post(addr, "/analyze", &heavy));
    std::thread::sleep(Duration::from_millis(30));
    server.begin_shutdown();
    server.join();

    // The in-flight request was answered, not dropped: either it finished
    // (200) or shutdown cancelled it cooperatively (503) — never a
    // connection error.
    let resp = in_flight.join().expect("client thread").expect("response");
    assert!(
        resp.status == 200 || resp.status == 503,
        "unexpected status {}: {}",
        resp.status,
        resp.body
    );

    // After shutdown the port no longer accepts work.
    let after = client::post(addr, "/analyze", &envelope(&small_config(10), ""));
    match after {
        Err(_) => {}
        Ok(resp) => assert_eq!(resp.status, 503),
    }
}

#[test]
fn health_metrics_and_error_paths() {
    let server = start_server();
    let addr = server.local_addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let doc = Json::parse(&health.body).unwrap();
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));

    // A miss + hit pair so the metrics have something to show.
    let body = envelope(&small_config(10), "");
    assert_eq!(client::post(addr, "/analyze", &body).unwrap().status, 200);
    assert_eq!(client::post(addr, "/analyze", &body).unwrap().status, 200);

    let metrics = client::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = Json::parse(&metrics.body).unwrap();
    let cache = doc.get("cache").expect("cache gauges");
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    for counter in ["cache.hits", "cache.misses", "cache.insertions", "serve.analyses"] {
        assert!(
            metrics.body.contains(counter),
            "/metrics missing {counter}: {}",
            metrics.body
        );
    }

    // Error paths: unknown endpoint, wrong method, malformed JSON, bad
    // model.
    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(addr, "/analyze").unwrap().status, 405);
    assert_eq!(client::post(addr, "/analyze", "{oops").unwrap().status, 400);
    assert_eq!(
        client::post(addr, "/analyze", "{\"config_xml\":\"<x/>\"}").unwrap().status,
        422
    );
    server.shutdown();
}

/// Satellite regression: an analysis *error* must release the
/// single-flight gate. Before the RAII guard, the leader only removed
/// the gate entry on the success path — after a failure every subsequent
/// request for the same key parked on the dead gate until its deadline.
#[test]
fn failed_analysis_releases_the_single_flight_gate() {
    let server = start_server();
    let addr = server.local_addr();
    let body = envelope(&failing_config(), "");

    let first = client::post(addr, "/analyze", &body).unwrap();
    assert_eq!(first.status, 500, "body: {}", first.body);

    // With a leaked gate this second request would wait out its deadline
    // and answer 504; with the guard it becomes a fresh leader and fails
    // the same way the first one did.
    let second = client::post(addr, "/analyze", &envelope(&failing_config(), ",\"deadline_ms\":2000")).unwrap();
    assert_eq!(
        second.status, 500,
        "second request must re-run, not hang on the dead gate: {}",
        second.body
    );
    server.shutdown();
}

/// Satellite regression: a client that opens a connection and stalls
/// mid-request must be timed out with 408, not pin the handler thread.
#[test]
fn stalling_client_gets_408() {
    use std::io::{Read, Write};
    let server = Server::start(&ServeOptions {
        io_timeout: Duration::from_millis(100),
        ..test_options()
    })
    .expect("bind loopback server");
    let addr = server.local_addr();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream.write_all(b"POST /analyze HTTP/1.1\r\nContent-Le").unwrap();
    // …and stall. The server must give up at its io_timeout and close
    // with a 408 instead of waiting forever.
    let mut response = String::new();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "expected 408 for a stalled request, got: {response:?}"
    );
    assert_eq!(server.recorder().counter_value("serve.timeouts"), 1);
    server.shutdown();
}

fn temp_state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swa-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tentpole end-to-end: a server restarted against the same --state-dir
/// answers a previously-seen configuration from the disk tier — marked
/// cached, byte-equal verdict, zero new simulations.
#[test]
fn restart_answers_from_the_disk_tier_without_resimulating() {
    let state_dir = temp_state_dir("restart");
    let options = ServeOptions {
        state_dir: Some(state_dir.clone()),
        ..test_options()
    };
    let body = envelope(&small_config(10), "");

    let first_body;
    {
        let server = Server::start(&options).expect("bind first server");
        let first = client::post(server.local_addr(), "/analyze", &body).unwrap();
        assert_eq!(first.status, 200, "body: {}", first.body);
        let doc = Json::parse(&first.body).unwrap();
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
        assert_eq!(server.recorder().counter_value("serve.analyses"), 1);
        first_body = first.body;
        server.shutdown();
    }

    let server = Server::start(&options).expect("bind restarted server");
    let second = client::post(server.local_addr(), "/analyze", &body).unwrap();
    assert_eq!(second.status, 200, "body: {}", second.body);
    let first_doc = Json::parse(&first_body).unwrap();
    let doc = Json::parse(&second.body).unwrap();
    assert_eq!(
        doc.get("cached").and_then(Json::as_bool),
        Some(true),
        "restart must serve from the durable tier: {}",
        second.body
    );
    // The restarted process never simulated anything.
    assert_eq!(
        server.recorder().counter_value("serve.analyses"),
        0,
        "restart re-simulated instead of reading the disk tier"
    );
    // Verdict fields are identical pre/post restart.
    for field in ["schedulable", "verdict", "hyperperiod", "jobs", "missed_jobs", "key"] {
        assert_eq!(
            doc.get(field).map(|v| format!("{v:?}")),
            first_doc.get(field).map(|v| format!("{v:?}")),
            "verdict field {field} drifted across the restart"
        );
    }
    server.shutdown();
    std::fs::remove_dir_all(&state_dir).ok();
}

/// Tentpole end-to-end: `POST /sweep` streams progressive refinement
/// steps as chunked NDJSON, and the final line is the canonical report —
/// byte-equal to what an in-process [`swa_sweep::run_sweep`] over the
/// same request produces (the CLI `--json` path calls exactly that).
#[test]
fn sweep_endpoint_streams_steps_and_matches_the_library_report() {
    use swa_sweep::{run_sweep, Axis, SweepEngine, SweepOptions};
    let server = start_server();
    let addr = server.local_addr();
    let config = small_config(10);
    let body = envelope(&config, ",\"tolerance\":0.05,\"per_task\":true");

    let resp = client::post_lines(addr, "/sweep", &body).expect("streamed response");
    assert_eq!(resp.status, 200, "lines: {:?}", resp.lines);
    assert!(
        resp.lines.len() >= 2,
        "expected progressive step lines before the report: {:?}",
        resp.lines
    );
    for step in &resp.lines[..resp.lines.len() - 1] {
        let doc = Json::parse(step).expect("step lines are valid JSON");
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("step"));
        assert!(doc.get("factor").and_then(Json::as_f64).is_some());
    }

    let mut options = SweepOptions::default();
    options.search.tolerance = 0.05;
    let mut engine = SweepEngine::new(config, options).unwrap();
    let expected = run_sweep(&mut engine, Axis::WcetScale, true, |_| {}, || false)
        .unwrap()
        .render_json();
    assert_eq!(
        resp.lines.last().unwrap(),
        &expected,
        "final line must be byte-equal to the library/CLI report"
    );

    // The sweep ran through the shared Analyzer stack: probes simulated
    // and the `sweep.*` counter family landed in the server recorder.
    let recorder = server.recorder();
    assert!(recorder.counter_value("serve.sweeps") >= 1);
    assert!(recorder.counter_value("sweep.probes") > 0);
    assert!(recorder.counter_value("sweep.simulated") > 0);

    // A repeat of the same sweep is answered from the verdict cache and
    // the engine memo: zero new simulations, same final line.
    let simulated_before = recorder.counter_value("sweep.simulated");
    let repeat = client::post_lines(addr, "/sweep", &body).expect("repeat response");
    assert_eq!(repeat.lines.last().unwrap(), &expected);
    assert_eq!(
        recorder.counter_value("sweep.simulated"),
        simulated_before,
        "warm repeat must reuse cached verdicts, not simulate"
    );
    assert!(recorder.counter_value("sweep.cache_hits") > 0);
    server.shutdown();
}

/// `/sweep` error paths reuse the `/analyze` status-code contract before
/// the stream commits.
#[test]
fn sweep_endpoint_rejects_bad_requests_without_streaming() {
    let server = start_server();
    let addr = server.local_addr();
    // Wrong method.
    assert_eq!(client::get(addr, "/sweep").unwrap().status, 405);
    // Malformed JSON → 400, invalid model → 422, bad axis → 400.
    assert_eq!(client::post_lines(addr, "/sweep", "{oops").unwrap().status, 400);
    assert_eq!(
        client::post_lines(addr, "/sweep", "{\"config_xml\":\"<x/>\"}").unwrap().status,
        422
    );
    let bad_axis = envelope(&small_config(10), ",\"axis\":\"voltage\"");
    assert_eq!(client::post_lines(addr, "/sweep", &bad_axis).unwrap().status, 400);
    server.shutdown();
}

/// Router end-to-end: consistent-hash forwarding across two live
/// backends preserves the cached-verdict contract, and a dead backend in
/// the ring is failed over transparently.
#[test]
fn router_shards_and_fails_over() {
    use swa_serve::{Router, RouterOptions};
    let backend_a = start_server();
    let backend_b = start_server();
    let router = Router::start(&RouterOptions {
        backends: vec![
            backend_a.local_addr().to_string(),
            backend_b.local_addr().to_string(),
        ],
        ..RouterOptions::default()
    })
    .expect("bind router");
    let addr = router.local_addr();

    // Distinct configs spread over the ring; each is simulated exactly
    // once fleet-wide and cached on its owning backend.
    for wcet in [10, 20, 30, 40] {
        let body = envelope(&small_config(wcet), "");
        let first = client::post(addr, "/analyze", &body).unwrap();
        assert_eq!(first.status, 200, "body: {}", first.body);
        let doc = Json::parse(&first.body).unwrap();
        assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));
        let second = client::post(addr, "/analyze", &body).unwrap();
        let doc = Json::parse(&second.body).unwrap();
        assert_eq!(
            doc.get("cached").and_then(Json::as_bool),
            Some(true),
            "ring affinity must route the repeat to the same backend: {}",
            second.body
        );
    }
    let total_analyses = backend_a.recorder().counter_value("serve.analyses")
        + backend_b.recorder().counter_value("serve.analyses");
    assert_eq!(total_analyses, 4, "each config simulated exactly once fleet-wide");
    assert_eq!(router.recorder().counter_value("route.requests"), 8);
    assert_eq!(router.recorder().counter_value("route.forwarded"), 8);

    // Health endpoint speaks for the router itself.
    let health = client::get(addr, "/healthz").unwrap();
    assert!(health.body.contains("\"role\":\"router\""), "{}", health.body);
    router.shutdown();

    // Failover: a ring with one dead backend still answers through the
    // live one, for every key.
    let router = Router::start(&RouterOptions {
        backends: vec!["127.0.0.1:9".to_string(), backend_a.local_addr().to_string()],
        retry: swa_serve::RetryPolicy {
            attempts: 1,
            ..swa_serve::RetryPolicy::default()
        },
        ..RouterOptions::default()
    })
    .expect("bind failover router");
    for wcet in [10, 20, 30, 40] {
        let response =
            client::post(router.local_addr(), "/analyze", &envelope(&small_config(wcet), ""))
                .unwrap();
        assert_eq!(response.status, 200, "failover failed: {}", response.body);
    }
    router.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();
}

#[test]
fn ladder_admission_decides_without_simulating() {
    use swa_core::LadderMode;
    let server = Server::start(&ServeOptions {
        ladder: LadderMode::Full,
        ..test_options()
    })
    .expect("bind ladder server");
    let addr = server.local_addr();

    // A comfortably schedulable single task with the whole hyperperiod
    // granted: tier T1 (window-supply RTA) decides it at admission.
    let yes = client::post(addr, "/analyze", &envelope(&small_config(10), "")).unwrap();
    assert_eq!(yes.status, 200, "{}", yes.body);
    let doc = Json::parse(&yes.body).unwrap();
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("schedulable"));
    assert_eq!(doc.get("decided_by").and_then(Json::as_str), Some("t1-window-rta"));
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(false));

    // Demand 30 against a 25-tick window: tier T0 rejects analytically.
    let mut starved = small_config(30);
    starved.windows = vec![vec![Window::new(0, 25)]];
    let no = client::post(addr, "/analyze", &envelope(&starved, "")).unwrap();
    assert_eq!(no.status, 200, "{}", no.body);
    let doc = Json::parse(&no.body).unwrap();
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("unschedulable"));
    assert_eq!(doc.get("decided_by").and_then(Json::as_str), Some("t0-utilization"));

    // Neither request reached the worker pool.
    assert_eq!(server.recorder().counter_value("serve.analyses"), 0);
    assert_eq!(server.recorder().counter_value("serve.ladder_decided"), 2);

    // Ladder verdicts are cached: the repeat is a hit with the same
    // provenance.
    let repeat = client::post(addr, "/analyze", &envelope(&small_config(10), "")).unwrap();
    let doc = Json::parse(&repeat.body).unwrap();
    assert_eq!(doc.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("decided_by").and_then(Json::as_str), Some("t1-window-rta"));

    // `no_cache` opts out of the pre-filter: the same configuration now
    // takes the full simulation path and reports simulation provenance.
    let fresh =
        client::post(addr, "/analyze", &envelope(&small_config(10), ",\"no_cache\":true")).unwrap();
    let doc = Json::parse(&fresh.body).unwrap();
    assert_eq!(doc.get("decided_by").and_then(Json::as_str), Some("simulation"));
    assert_eq!(server.recorder().counter_value("serve.analyses"), 1);

    // The ladder and the simulation agree on both configurations.
    let fresh_no =
        client::post(addr, "/analyze", &envelope(&starved, ",\"no_cache\":true")).unwrap();
    let doc = Json::parse(&fresh_no.body).unwrap();
    assert_eq!(doc.get("verdict").and_then(Json::as_str), Some("unschedulable"));
    assert_eq!(doc.get("decided_by").and_then(Json::as_str), Some("simulation"));
    server.shutdown();
}
