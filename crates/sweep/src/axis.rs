//! Typed parameter axes.
//!
//! An [`Axis`] names one direction in configuration space along which a
//! sweep scales the base configuration by a single factor. Larger factors
//! always mean *more stress*: WCET axes multiply execution times by the
//! factor, the period axis *divides* periods by it (shorter periods =
//! higher rate), and the offset axis shifts release phases by a fraction
//! of each task's period (a perturbation axis, inherently non-monotone).
//!
//! [`Axis::apply`] produces a fully validated scaled [`Configuration`] or
//! a typed [`SweepError`] explaining which IMA boundary the factor ran
//! into — scaled parameters are never silently saturated.

use swa_ima::window::total_window_time;
use swa_ima::{Configuration, PartitionId, TaskRef};

use crate::error::SweepError;

/// One direction in parameter space, scaled by a single positive factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Scale every task's WCET (on every core type) by the factor.
    WcetScale,
    /// Scale one task's WCET by the factor, leaving the rest untouched.
    TaskWcetScale(TaskRef),
    /// Divide every period by the factor (harmonic-ratio preserving):
    /// deadlines, offsets and partition windows shrink proportionally.
    PeriodScale,
    /// Shift every task's release offset by `round(period · factor)`,
    /// wrapped modulo its period. Non-monotone by nature.
    OffsetShift,
}

impl Axis {
    /// Parses an axis specification: `"wcet"`, `"period"`, `"offset"`, or
    /// `"wcet:<partition>/<task>"` (names as in the configuration).
    ///
    /// # Errors
    ///
    /// [`SweepError::UnknownAxis`] for an unrecognized spec,
    /// [`SweepError::UnknownTask`] when the named task does not exist.
    pub fn parse(spec: &str, config: &Configuration) -> Result<Self, SweepError> {
        match spec {
            "wcet" => Ok(Axis::WcetScale),
            "period" => Ok(Axis::PeriodScale),
            "offset" => Ok(Axis::OffsetShift),
            _ => {
                if let Some(path) = spec.strip_prefix("wcet:") {
                    let Some((pname, tname)) = path.split_once('/') else {
                        return Err(SweepError::UnknownTask(path.to_string()));
                    };
                    for (pi, p) in config.partitions.iter().enumerate() {
                        if p.name != pname {
                            continue;
                        }
                        for (ti, t) in p.tasks.iter().enumerate() {
                            if t.name == tname {
                                return Ok(Axis::TaskWcetScale(TaskRef::new(
                                    PartitionId::from_raw(
                                        u32::try_from(pi).expect("partition count fits u32"),
                                    ),
                                    u32::try_from(ti).expect("task count fits u32"),
                                )));
                            }
                        }
                    }
                    Err(SweepError::UnknownTask(path.to_string()))
                } else {
                    Err(SweepError::UnknownAxis(spec.to_string()))
                }
            }
        }
    }

    /// A stable human/JSON label for the axis (`wcet`, `period`, `offset`,
    /// or `wcet:<partition>/<task>`).
    #[must_use]
    pub fn label(&self, config: &Configuration) -> String {
        match self {
            Axis::WcetScale => "wcet".to_string(),
            Axis::PeriodScale => "period".to_string(),
            Axis::OffsetShift => "offset".to_string(),
            Axis::TaskWcetScale(tr) => match config.task(*tr) {
                Some(t) => {
                    let pname = config
                        .partition(tr.partition)
                        .map_or_else(|| tr.partition.to_string(), |p| p.name.clone());
                    format!("wcet:{pname}/{}", t.name)
                }
                None => format!("wcet:{tr}"),
            },
        }
    }

    /// Whether feasibility along this axis is expected to be monotone in
    /// the factor (more stress can only break, never repair). Offset
    /// shifts are phase perturbations and carry no such guarantee.
    #[must_use]
    pub fn is_monotone(&self) -> bool {
        !matches!(self, Axis::OffsetShift)
    }

    /// Applies the axis at the given factor to `base`, returning a scaled
    /// configuration that passed IMA validation.
    ///
    /// # Errors
    ///
    /// [`SweepError::NonPositiveFactor`] for factors that are not finite
    /// and positive; otherwise a typed boundary error (see
    /// [`SweepError::is_domain_edge`]) when the scaled parameters leave
    /// the IMA domain.
    pub fn apply(&self, base: &Configuration, factor: f64) -> Result<Configuration, SweepError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(SweepError::NonPositiveFactor(factor));
        }
        let mut scaled = base.clone();
        match self {
            Axis::WcetScale => {
                for p in &mut scaled.partitions {
                    for t in &mut p.tasks {
                        scale_wcet_vec(&t.name, &mut t.wcet, factor)?;
                    }
                }
                check_window_capacity(&scaled)?;
            }
            Axis::TaskWcetScale(tr) => {
                let p = scaled
                    .partitions
                    .get_mut(tr.partition.index())
                    .ok_or_else(|| SweepError::UnknownTask(tr.to_string()))?;
                let t = p
                    .tasks
                    .get_mut(tr.task as usize)
                    .ok_or_else(|| SweepError::UnknownTask(tr.to_string()))?;
                scale_wcet_vec(&t.name, &mut t.wcet, factor)?;
                check_window_capacity(&scaled)?;
            }
            Axis::PeriodScale => scale_periods(&mut scaled, factor)?,
            Axis::OffsetShift => {
                for p in &mut scaled.partitions {
                    for t in &mut p.tasks {
                        #[allow(clippy::cast_precision_loss)]
                        let shift = round_scale(t.period, factor);
                        if t.period > 0 {
                            t.offset = (t.offset + shift).rem_euclid(t.period);
                        }
                    }
                }
            }
        }
        if let Err(errors) = scaled.validate() {
            let detail = errors
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            return Err(SweepError::InvalidScaledConfig(detail));
        }
        Ok(scaled)
    }
}

/// `round(v · factor)` with overflow reported as an out-of-domain value
/// (`i64::MAX`), computed in `f64` — exact for the magnitudes IMA ticks
/// use (WCETs and periods are far below 2^53).
fn round_scale(v: i64, factor: f64) -> i64 {
    #[allow(clippy::cast_precision_loss)]
    let x = (v as f64 * factor).round();
    if x >= 9.0e18 {
        i64::MAX
    } else {
        #[allow(clippy::cast_possible_truncation)]
        let r = x as i64;
        r
    }
}

/// Scales every core-type entry of one task's WCET vector.
fn scale_wcet_vec(task: &str, wcet: &mut [i64], factor: f64) -> Result<(), SweepError> {
    for w in wcet {
        let scaled = round_scale(*w, factor);
        if scaled < 1 {
            return Err(SweepError::WcetUnderflow {
                task: task.to_string(),
                factor,
            });
        }
        *w = scaled;
    }
    Ok(())
}

/// Rejects configurations whose per-hyperperiod WCET demand exceeds the
/// window time granted to a partition — a provably unschedulable point,
/// reported as a typed boundary instead of letting a long simulation
/// discover it.
fn check_window_capacity(config: &Configuration) -> Result<(), SweepError> {
    let l = config.hyperperiod().ok_or(SweepError::NoHyperperiod)?;
    for (pi, p) in config.partitions.iter().enumerate() {
        let pid = PartitionId::from_raw(u32::try_from(pi).expect("partition count fits u32"));
        let mut demand: i64 = 0;
        for (ti, t) in p.tasks.iter().enumerate() {
            if t.period <= 0 {
                continue;
            }
            let tr = TaskRef::new(pid, u32::try_from(ti).expect("task count fits u32"));
            let wcet = config
                .effective_wcet(tr)
                .or_else(|| t.wcet.iter().copied().max())
                .unwrap_or(0);
            demand = demand.saturating_add(wcet.saturating_mul(l / t.period));
        }
        let capacity = config.windows.get(pi).map_or(0, |ws| total_window_time(ws));
        if demand > capacity {
            return Err(SweepError::WcetExceedsWindows {
                partition: p.name.clone(),
                demand,
                capacity,
            });
        }
    }
    Ok(())
}

/// Divides all periods by `factor`, preserving harmonic ratios: the
/// smallest period is scaled first and every other time parameter follows
/// the exact rational ratio `p_min' / p_min`, so a harmonic period menu
/// stays harmonic and the hyperperiod scales without drift.
fn scale_periods(config: &mut Configuration, factor: f64) -> Result<(), SweepError> {
    let Some((min_name, p_min)) = config
        .tasks()
        .map(|(_, t)| (t.name.clone(), t.period))
        .filter(|&(_, p)| p > 0)
        .min_by_key(|&(_, p)| p)
    else {
        return Ok(()); // no tasks: nothing to scale, validation will flag it
    };
    let p_min_scaled = round_scale(p_min, 1.0 / factor);
    if p_min_scaled < 1 {
        return Err(SweepError::PeriodUnderflow {
            task: min_name,
            factor,
        });
    }
    // Exact rational rescale by p_min'/p_min, rounding half up.
    let ratio = |v: i64| -> i64 {
        let n = i128::from(v) * i128::from(p_min_scaled) + i128::from(p_min) / 2;
        i64::try_from(n / i128::from(p_min)).unwrap_or(i64::MAX)
    };
    for p in &mut config.partitions {
        for t in &mut p.tasks {
            let new_period = ratio(t.period);
            if new_period < 1 {
                return Err(SweepError::PeriodUnderflow {
                    task: t.name.clone(),
                    factor,
                });
            }
            t.deadline = ratio(t.deadline).clamp(1, new_period);
            t.offset = ratio(t.offset).rem_euclid(new_period);
            t.period = new_period;
        }
    }
    for (pi, ws) in config.windows.iter_mut().enumerate() {
        for w in ws {
            w.start = ratio(w.start);
            w.end = ratio(w.end);
            if w.end <= w.start {
                let name = config
                    .partitions
                    .get(pi)
                    .map_or_else(|| format!("part{pi}"), |p| p.name.clone());
                return Err(SweepError::WindowCollapsed { partition: name });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::{
        CoreRef, CoreType, Module, ModuleId, Partition, SchedulerKind, Task, Window,
    };

    /// One module, one core, one partition, two tasks (periods 50/100),
    /// windows covering the whole hyperperiod.
    fn config() -> Configuration {
        Configuration {
            core_types: vec![CoreType::new("generic")],
            modules: vec![Module::homogeneous("M1", 1, swa_ima::CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new(
                "P1",
                SchedulerKind::Fpps,
                vec![
                    Task::new("t1", 2, vec![10], 50).with_offset(5),
                    Task::new("t2", 1, vec![20], 100).with_deadline(80),
                ],
            )],
            binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
            windows: vec![vec![Window::new(0, 100)]],
            messages: vec![],
        }
    }

    #[test]
    fn parse_known_axes() {
        let c = config();
        assert_eq!(Axis::parse("wcet", &c).unwrap(), Axis::WcetScale);
        assert_eq!(Axis::parse("period", &c).unwrap(), Axis::PeriodScale);
        assert_eq!(Axis::parse("offset", &c).unwrap(), Axis::OffsetShift);
        let per_task = Axis::parse("wcet:P1/t2", &c).unwrap();
        assert_eq!(
            per_task,
            Axis::TaskWcetScale(TaskRef::new(PartitionId::from_raw(0), 1))
        );
        assert_eq!(per_task.label(&c), "wcet:P1/t2");
        assert!(matches!(
            Axis::parse("jitter", &c),
            Err(SweepError::UnknownAxis(_))
        ));
        assert!(matches!(
            Axis::parse("wcet:P1/ghost", &c),
            Err(SweepError::UnknownTask(_))
        ));
        assert!(matches!(
            Axis::parse("wcet:no-slash", &c),
            Err(SweepError::UnknownTask(_))
        ));
    }

    #[test]
    fn rejects_non_positive_factors() {
        let c = config();
        for f in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Axis::WcetScale.apply(&c, f),
                Err(SweepError::NonPositiveFactor(_))
            ));
        }
    }

    #[test]
    fn wcet_scale_rounds_and_validates() {
        let c = config();
        let scaled = Axis::WcetScale.apply(&c, 1.5).unwrap();
        assert_eq!(scaled.partitions[0].tasks[0].wcet, vec![15]);
        assert_eq!(scaled.partitions[0].tasks[1].wcet, vec![30]);
        // Periods and windows untouched.
        assert_eq!(scaled.partitions[0].tasks[0].period, 50);
        assert_eq!(scaled.windows, c.windows);
    }

    #[test]
    fn wcet_underflow_is_typed() {
        let c = config();
        let err = Axis::WcetScale.apply(&c, 0.01).unwrap_err();
        assert!(matches!(err, SweepError::WcetUnderflow { .. }));
        assert!(err.is_domain_edge());
    }

    #[test]
    fn wcet_beyond_window_capacity_is_typed() {
        let c = config();
        // Demand at factor 3: 30·2 + 60·1 = 120 > capacity 100.
        let err = Axis::WcetScale.apply(&c, 3.0).unwrap_err();
        match &err {
            SweepError::WcetExceedsWindows {
                partition,
                demand,
                capacity,
            } => {
                assert_eq!(partition, "P1");
                assert_eq!(*demand, 120);
                assert_eq!(*capacity, 100);
            }
            other => panic!("expected WcetExceedsWindows, got {other:?}"),
        }
        assert!(err.is_domain_edge());
    }

    #[test]
    fn per_task_scale_touches_only_one_task() {
        let c = config();
        let tr = TaskRef::new(PartitionId::from_raw(0), 0);
        let scaled = Axis::TaskWcetScale(tr).apply(&c, 2.0).unwrap();
        assert_eq!(scaled.partitions[0].tasks[0].wcet, vec![20]);
        assert_eq!(scaled.partitions[0].tasks[1].wcet, vec![20]);
    }

    #[test]
    fn period_scale_preserves_harmonic_ratio() {
        let c = config();
        // Factor 2 = twice the rate: periods 50/100 → 25/50.
        let scaled = Axis::PeriodScale.apply(&c, 2.0).unwrap();
        assert_eq!(scaled.partitions[0].tasks[0].period, 25);
        assert_eq!(scaled.partitions[0].tasks[1].period, 50);
        // Deadline, offset and windows follow the same ratio.
        assert_eq!(scaled.partitions[0].tasks[1].deadline, 40);
        assert_eq!(scaled.partitions[0].tasks[0].offset, 3); // round(5/2)
        assert_eq!(scaled.windows[0], vec![Window::new(0, 50)]);
        assert_eq!(scaled.hyperperiod(), Some(50));
        // Relaxing (factor < 1) stretches instead.
        let relaxed = Axis::PeriodScale.apply(&c, 0.5).unwrap();
        assert_eq!(relaxed.partitions[0].tasks[0].period, 100);
        assert_eq!(relaxed.hyperperiod(), Some(200));
    }

    #[test]
    fn period_underflow_and_window_collapse_are_typed() {
        let c = config();
        let err = Axis::PeriodScale.apply(&c, 1e9).unwrap_err();
        assert!(matches!(err, SweepError::PeriodUnderflow { .. }));
        assert!(err.is_domain_edge());

        let mut tiny = config();
        tiny.windows[0] = vec![Window::new(0, 1), Window::new(2, 100)];
        let err = Axis::PeriodScale.apply(&tiny, 10.0).unwrap_err();
        assert!(matches!(err, SweepError::WindowCollapsed { .. }));
        assert!(err.is_domain_edge());
    }

    #[test]
    fn offset_shift_wraps_modulo_period() {
        let c = config();
        // Shift by 0.5 of each period: t1 offset 5+25 = 30 (mod 50),
        // t2 offset 0+50 = 50 → 50 % 100 = 50... but deadline 80 keeps it
        // valid only if offset < period, which holds.
        let shifted = Axis::OffsetShift.apply(&c, 0.5).unwrap();
        assert_eq!(shifted.partitions[0].tasks[0].offset, 30);
        assert_eq!(shifted.partitions[0].tasks[1].offset, 50);
        // A full-period shift is the identity.
        let full = Axis::OffsetShift.apply(&c, 1.0).unwrap();
        assert_eq!(full.partitions[0].tasks[0].offset, 5);
        assert_eq!(full.partitions[0].tasks[1].offset, 0);
        assert!(!Axis::OffsetShift.is_monotone());
        assert!(Axis::WcetScale.is_monotone());
    }

    #[test]
    fn scaled_configs_always_validate() {
        let c = config();
        for f in [0.25, 0.5, 1.0, 1.3] {
            let scaled = Axis::WcetScale.apply(&c, f).unwrap();
            scaled.validate().unwrap();
        }
        for f in [0.5, 1.0, 2.0] {
            let scaled = Axis::PeriodScale.apply(&c, f).unwrap();
            scaled.validate().unwrap();
        }
    }
}
