//! Certified breakdown-factor search.
//!
//! Given a feasibility oracle over scale factors, [`breakdown_search`]
//! finds the *breakdown factor*: the largest factor that is still
//! feasible, bracketed by a certified interval `[lo, hi]` with
//! `oracle(lo) = feasible`, `oracle(hi) = infeasible` and `hi - lo ≤
//! tolerance`. The search is a geometric bracketing scan followed by
//! bisection, with a hard probe budget so it can never loop.
//!
//! Schedulability is monotone along WCET and period-rate axes in theory,
//! but a *measured* oracle can flip non-monotonically — quantized factors,
//! rounding at config boundaries, or chain-latency gating can all carve
//! feasible islands. The search therefore audits every probe it made: if
//! the record contains an inversion (an infeasible factor below a feasible
//! one), the result is reported as [`BreakdownOutcome::NonMonotone`] with
//! the *outer* bracketing interval and the list of flip points — never a
//! false ±tolerance certificate.

/// Options controlling a breakdown search.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Certified bracket width: the search refines until `hi - lo` is at
    /// most this (subject to the probe budget).
    pub tolerance: f64,
    /// Hard cap on oracle invocations; the search never exceeds it.
    pub max_probes: usize,
    /// First factor probed (almost always 1.0, the base configuration).
    pub start: f64,
    /// Lower edge of the searched factor range.
    pub min_factor: f64,
    /// Upper edge of the searched factor range.
    pub max_factor: f64,
    /// When ≥ 2, probe this many evenly spaced factors across
    /// `[min_factor, max_factor]` first (endpoints included). Presampling
    /// costs probes but exposes non-monotone islands that a pure
    /// bracketing scan would step over.
    pub presamples: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.01,
            max_probes: 64,
            start: 1.0,
            min_factor: 1.0 / 64.0,
            max_factor: 64.0,
            presamples: 0,
        }
    }
}

/// One refinement step, reported to the caller as it happens (drives the
/// progressive `POST /sweep` stream and `-v` CLI output).
#[derive(Debug, Clone, Copy)]
pub struct SearchStep {
    /// 1-based probe number.
    pub probe: usize,
    /// The factor probed.
    pub factor: f64,
    /// The oracle's verdict at this factor.
    pub feasible: bool,
    /// Best-known feasible lower bracket after this probe, if any.
    pub lo: Option<f64>,
    /// Best-known infeasible upper bracket after this probe, if any.
    pub hi: Option<f64>,
}

/// One oracle invocation, kept for the post-search monotonicity audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// The factor probed.
    pub factor: f64,
    /// The oracle's verdict.
    pub feasible: bool,
}

/// How a breakdown search ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownOutcome {
    /// A certified bracket was found: `lo` feasible, `hi` infeasible,
    /// `hi - lo ≤ tolerance`.
    Converged,
    /// The probe record contains verdict inversions; `lo`/`hi` give the
    /// *outer* bracket (largest feasible / largest infeasible above it)
    /// and [`BreakdownResult::flips`] lists the inversion points. No
    /// ±tolerance certificate is claimed.
    NonMonotone,
    /// Every probed factor up to `max_factor` was feasible.
    Unbounded,
    /// Every probed factor down to `min_factor` was infeasible.
    InfeasibleEverywhere,
    /// The probe budget ran out before the bracket reached the tolerance;
    /// `lo`/`hi` hold the best (uncertified) bracket so far.
    ProbeBudgetExhausted,
}

/// Result of a breakdown search.
#[derive(Debug, Clone)]
pub struct BreakdownResult {
    /// How the search ended.
    pub outcome: BreakdownOutcome,
    /// Largest factor observed feasible (the breakdown estimate).
    pub lo: Option<f64>,
    /// Smallest infeasible factor above `lo`, when one was observed.
    pub hi: Option<f64>,
    /// Every oracle invocation, sorted by factor.
    pub records: Vec<ProbeRecord>,
    /// Monotonicity violations: pairs `(f_bad, f_good)` with `f_bad <
    /// f_good`, `f_bad` infeasible and `f_good` feasible.
    pub flips: Vec<(f64, f64)>,
}

impl BreakdownResult {
    /// The breakdown-factor estimate (largest observed feasible factor).
    #[must_use]
    pub fn breakdown(&self) -> Option<f64> {
        self.lo
    }

    /// Whether the result carries a ±`tolerance` certificate: converged,
    /// no flips, and the bracket is tight.
    #[must_use]
    pub fn certified(&self, tolerance: f64) -> bool {
        self.outcome == BreakdownOutcome::Converged
            && match (self.lo, self.hi) {
                (Some(lo), Some(hi)) => hi - lo <= tolerance + 1e-12,
                _ => false,
            }
    }
}

/// Runs the search. `oracle(factor)` decides feasibility; `on_step` is
/// invoked after every probe with the running bracket.
///
/// # Errors
///
/// Forwards the first error the oracle returns, abandoning the search.
pub fn breakdown_search<E>(
    opts: &SearchOptions,
    mut oracle: impl FnMut(f64) -> Result<bool, E>,
    mut on_step: impl FnMut(&SearchStep),
) -> Result<BreakdownResult, E> {
    let mut records: Vec<ProbeRecord> = Vec::new();
    let budget = opts.max_probes.max(1);
    let tolerance = if opts.tolerance > 0.0 {
        opts.tolerance
    } else {
        1e-9
    };

    // Running bracket: largest feasible factor and smallest infeasible
    // factor above it seen so far.
    let mut lo: Option<f64> = None;
    let mut hi: Option<f64> = None;

    let mut probe = |f: f64,
                     records: &mut Vec<ProbeRecord>,
                     lo: &mut Option<f64>,
                     hi: &mut Option<f64>|
     -> Result<bool, E> {
        // Reuse an earlier verdict for the same factor instead of
        // spending budget (bisection can revisit scan endpoints).
        let feasible = match records
            .iter()
            .find(|r| (r.factor - f).abs() < f64::EPSILON * f.abs().max(1.0))
        {
            Some(r) => r.feasible,
            None => {
                let v = oracle(f)?;
                records.push(ProbeRecord {
                    factor: f,
                    feasible: v,
                });
                v
            }
        };
        // Bracket maintenance assumes monotonicity; a non-monotone oracle
        // can invert lo/hi here, which stalls the bisection early — the
        // post-search audit then reports the flips and the outer bracket.
        if feasible {
            if lo.is_none_or(|l| f > l) {
                *lo = Some(f);
            }
        } else if f >= lo.unwrap_or(f64::NEG_INFINITY) && hi.is_none_or(|h| f < h) {
            *hi = Some(f);
        }
        on_step(&SearchStep {
            probe: records.len(),
            factor: f,
            feasible,
            lo: *lo,
            hi: *hi,
        });
        Ok(feasible)
    };

    // Phase 1: establish a bracket, either by presampling the whole range
    // or by a geometric scan from `start`.
    if opts.presamples >= 2 {
        let n = opts.presamples.min(budget);
        for i in 0..n {
            #[allow(clippy::cast_precision_loss)]
            let t = i as f64 / (n - 1) as f64;
            let f = opts.min_factor + t * (opts.max_factor - opts.min_factor);
            probe(f, &mut records, &mut lo, &mut hi)?;
        }
    } else {
        let first = probe(
            opts.start.clamp(opts.min_factor, opts.max_factor),
            &mut records,
            &mut lo,
            &mut hi,
        )?;
        let mut f = opts.start.clamp(opts.min_factor, opts.max_factor);
        if first {
            // Scan up until infeasible or the range edge.
            while hi.is_none() && records.len() < budget {
                if f >= opts.max_factor {
                    break;
                }
                f = (f * 2.0).min(opts.max_factor);
                probe(f, &mut records, &mut lo, &mut hi)?;
            }
        } else {
            // Scan down until feasible or the range edge.
            while lo.is_none() && records.len() < budget {
                if f <= opts.min_factor {
                    break;
                }
                f = (f / 2.0).max(opts.min_factor);
                probe(f, &mut records, &mut lo, &mut hi)?;
            }
        }
    }

    // Phase 2: bisect the bracket down to the tolerance.
    while let (Some(l), Some(h)) = (lo, hi) {
        if h - l <= tolerance || records.len() >= budget {
            break;
        }
        let mid = l + (h - l) / 2.0;
        if mid <= l || mid >= h {
            break; // bracket is below f64 resolution
        }
        probe(mid, &mut records, &mut lo, &mut hi)?;
    }

    // Phase 3: monotonicity audit over everything we observed.
    records.sort_by(|a, b| a.factor.total_cmp(&b.factor));
    let mut flips: Vec<(f64, f64)> = Vec::new();
    for (i, bad) in records.iter().enumerate() {
        if bad.feasible {
            continue;
        }
        if let Some(good) = records[i + 1..].iter().find(|r| r.feasible) {
            flips.push((bad.factor, good.factor));
        }
    }

    let outcome = if !flips.is_empty() {
        // Report the OUTER bracket: the largest feasible factor and the
        // largest infeasible factor overall (everything between them is
        // suspect), with no tolerance certificate.
        lo = records
            .iter()
            .filter(|r| r.feasible)
            .map(|r| r.factor)
            .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.max(x))));
        hi = records
            .iter()
            .filter(|r| !r.feasible)
            .map(|r| r.factor)
            .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.max(x))));
        BreakdownOutcome::NonMonotone
    } else {
        match (lo, hi) {
            (Some(l), Some(h)) if h - l <= tolerance => BreakdownOutcome::Converged,
            (Some(_), Some(_)) => BreakdownOutcome::ProbeBudgetExhausted,
            (Some(_), None) => BreakdownOutcome::Unbounded,
            (None, Some(_)) | (None, None) => BreakdownOutcome::InfeasibleEverywhere,
        }
    };

    Ok(BreakdownResult {
        outcome,
        lo,
        hi,
        records,
        flips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn run(
        opts: &SearchOptions,
        mut oracle: impl FnMut(f64) -> bool,
    ) -> (BreakdownResult, usize) {
        let mut calls = 0;
        let result = breakdown_search::<Infallible>(
            opts,
            |f| {
                calls += 1;
                Ok(oracle(f))
            },
            |_| {},
        )
        .unwrap();
        (result, calls)
    }

    #[test]
    fn monotone_oracle_converges_certified() {
        let opts = SearchOptions::default();
        let (r, calls) = run(&opts, |f| f <= 2.37);
        assert_eq!(r.outcome, BreakdownOutcome::Converged);
        assert!(r.certified(opts.tolerance));
        let (lo, hi) = (r.lo.unwrap(), r.hi.unwrap());
        assert!(lo <= 2.37 && 2.37 <= hi, "bracket [{lo}, {hi}] misses 2.37");
        assert!(hi - lo <= opts.tolerance + 1e-12);
        assert!(calls <= opts.max_probes);
        assert!(r.flips.is_empty());
    }

    #[test]
    fn monotone_oracle_below_one_converges() {
        let opts = SearchOptions::default();
        let (r, _) = run(&opts, |f| f <= 0.4);
        assert_eq!(r.outcome, BreakdownOutcome::Converged);
        let (lo, hi) = (r.lo.unwrap(), r.hi.unwrap());
        assert!(lo <= 0.4 && 0.4 <= hi);
    }

    #[test]
    fn non_monotone_oracle_is_detected_not_certified() {
        // Feasible island: [min, 1.5) ∪ [2.0, 2.3). A naive bisection
        // could "converge" inside the hole; presampling exposes it.
        let opts = SearchOptions {
            presamples: 16,
            max_probes: 48,
            max_factor: 4.0,
            ..SearchOptions::default()
        };
        let (r, calls) = run(&opts, |f| f < 1.5 || (2.0..2.3).contains(&f));
        assert_eq!(r.outcome, BreakdownOutcome::NonMonotone);
        assert!(!r.flips.is_empty(), "flips must be reported");
        assert!(!r.certified(opts.tolerance), "no false certificate");
        assert!(calls <= opts.max_probes, "must terminate within budget");
        // Outer bracket: lo = largest feasible seen, hi = largest
        // infeasible seen, and lo < hi (the island ends before the edge).
        let (lo, hi) = (r.lo.unwrap(), r.hi.unwrap());
        assert!((2.0..2.3).contains(&lo), "lo {lo} should sit in the island");
        assert!(hi > lo, "outer bracket must contain the suspect region");
    }

    #[test]
    fn always_feasible_is_unbounded() {
        let (r, _) = run(&SearchOptions::default(), |_| true);
        assert_eq!(r.outcome, BreakdownOutcome::Unbounded);
        assert_eq!(r.lo, Some(64.0));
        assert_eq!(r.hi, None);
        assert!(!r.certified(0.01));
    }

    #[test]
    fn always_infeasible_is_infeasible_everywhere() {
        let (r, _) = run(&SearchOptions::default(), |_| false);
        assert_eq!(r.outcome, BreakdownOutcome::InfeasibleEverywhere);
        assert_eq!(r.lo, None);
        assert!(!r.certified(0.01));
    }

    #[test]
    fn probe_budget_is_a_hard_cap() {
        let opts = SearchOptions {
            max_probes: 3,
            ..SearchOptions::default()
        };
        let (r, calls) = run(&opts, |f| f <= 2.37);
        assert!(calls <= 3);
        assert_ne!(r.outcome, BreakdownOutcome::Converged);
        assert!(!r.certified(opts.tolerance), "no false certificate");
    }

    #[test]
    fn duplicate_factors_do_not_spend_budget() {
        let opts = SearchOptions {
            presamples: 5,
            max_probes: 64,
            ..SearchOptions::default()
        };
        let (r, calls) = run(&opts, |f| f <= 2.37);
        assert_eq!(calls, r.records.len(), "each factor probed exactly once");
    }

    #[test]
    fn oracle_errors_propagate() {
        let mut n = 0;
        let err = breakdown_search::<&'static str>(
            &SearchOptions::default(),
            |_| {
                n += 1;
                if n >= 2 {
                    Err("boom")
                } else {
                    Ok(true)
                }
            },
            |_| {},
        )
        .unwrap_err();
        assert_eq!(err, "boom");
    }

    #[test]
    fn steps_report_running_bracket() {
        let mut steps: Vec<SearchStep> = Vec::new();
        let r = breakdown_search::<Infallible>(
            &SearchOptions::default(),
            |f| Ok(f <= 2.37),
            |s| steps.push(*s),
        )
        .unwrap();
        assert_eq!(steps.len(), r.records.len());
        assert_eq!(steps.last().unwrap().probe, steps.len());
        // The final step's bracket matches the result.
        let last = steps.last().unwrap();
        assert_eq!(last.lo, r.lo);
        assert_eq!(last.hi, r.hi);
    }
}
