//! The probe engine: scaled-configuration feasibility with tiered reuse.
//!
//! [`SweepEngine`] turns "is factor `f` along axis `a` feasible?" into the
//! cheapest available answer, in order:
//!
//! 1. **Quantization** — factors snap to a fixed grid (default 1/1024),
//!    so bisection midpoints that round to the same integer configuration
//!    collapse to the same probe.
//! 2. **Memo** — an in-sweep table keyed by `(axis, quantized factor)`.
//! 3. **Verdict cache** — the scaled configuration's canonical key (plus
//!    the compositional per-module keys when enabled), shared with every
//!    other caller of the [`Analyzer`].
//! 4. **Simulation** — the full pipeline, warm-started from the
//!    checkpoint ladder: checkpoint keys are canonical configuration
//!    bytes, so the *nearest already-simulated parameter point* is the
//!    one whose scaled configuration rounds to identical bytes (always
//!    true for re-probed factors and, under compositional analysis, for
//!    every module a per-task probe does not touch — those modules resume
//!    from full checkpoints without simulating).
//!
//! Every tier increments a `sweep.*` [`Recorder`] counter, so the reuse
//! rate `(probes − simulated) / probes` is measurable, not assumed.

use std::collections::HashMap;
use std::sync::Arc;

use swa_core::{
    canonicalize, chain_latency, compositional_lookup, Analyzer, CheckpointStore, NoopRecorder,
    Recorder, VerdictCache,
};
use swa_core::EvalEngine;
use swa_ima::{Configuration, TaskRef};

use crate::axis::Axis;
use crate::breakdown::{breakdown_search, BreakdownResult, SearchOptions, SearchStep};
use crate::error::SweepError;

/// Options of a sweep run (shared by the CLI and the serve endpoint — the
/// defaults must agree so both produce identical reports).
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Breakdown-search options (tolerance, probe budget, factor range).
    pub search: SearchOptions,
    /// Analysis span in hyperperiods.
    pub hyperperiods: u32,
    /// Guard/update evaluation engine.
    pub engine: EvalEngine,
    /// Compositional per-module analysis (per-module cache/checkpoint
    /// reuse; per-task probes then re-simulate only the touched module).
    pub compositional: bool,
    /// Gate every probe on end-to-end chain latency as well as
    /// schedulability.
    pub chains: bool,
    /// Upper bound on the worst chain latency; `None` only requires every
    /// chain instance to complete.
    pub chain_bound: Option<i64>,
    /// Denominator of the factor grid (factors snap to multiples of
    /// `1/quantum_den`).
    pub quantum_den: u32,
    /// Cap on the number of tasks probed by a per-task sensitivity pass.
    pub max_sensitivity_tasks: usize,
    /// Analytic probe tiering: run the verdict ladder
    /// (`swa_core::ladder`, tiers T0–T2) on each scaled configuration
    /// after the cache probe and before simulating. Ladder-decided
    /// probes come back as [`ProbeSource::Ladder`] without a
    /// simulation; soundness keeps the certified breakdown interval
    /// identical. Off by default. Chain-gated probes always simulate
    /// (latency needs the per-job trace), as do multi-hyperperiod
    /// sweeps.
    pub ladder: swa_core::LadderMode,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            search: SearchOptions::default(),
            hyperperiods: 1,
            engine: EvalEngine::default(),
            compositional: false,
            chains: false,
            chain_bound: None,
            quantum_den: 1024,
            max_sensitivity_tasks: 256,
            ladder: swa_core::LadderMode::Off,
        }
    }
}

/// Where a probe's verdict came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeSource {
    /// A fresh simulation through the [`Analyzer`].
    Simulated,
    /// Served from the shared verdict cache.
    CacheHit,
    /// Served from this sweep's own memo table.
    Memo,
    /// Decided analytically by the verdict ladder
    /// ([`SweepOptions::ladder`]) without a simulation.
    Ladder,
    /// The factor lies outside the IMA parameter domain (typed boundary).
    DomainEdge,
}

/// One feasibility probe of the parameter space.
#[derive(Debug, Clone)]
pub struct Probe {
    /// The factor as requested by the search.
    pub requested: f64,
    /// The factor after grid quantization (what was actually evaluated).
    pub factor: f64,
    /// The gated verdict: schedulable *and* (when gating is on) chains ok.
    pub feasible: bool,
    /// The raw schedulability verdict.
    pub schedulable: bool,
    /// Chain-latency gate result, when chain gating ran.
    pub chains_ok: Option<bool>,
    /// Worst observed end-to-end latency across all gated chains.
    pub worst_chain_latency: Option<i64>,
    /// Which reuse tier answered.
    pub source: ProbeSource,
    /// The typed boundary that made the factor infeasible, if any.
    pub domain_edge: Option<String>,
}

/// Per-task sensitivity: the breakdown of scaling *one* task's WCET while
/// the rest of the system stays at the base point.
#[derive(Debug, Clone)]
pub struct TaskSensitivity {
    /// The probed task.
    pub task: TaskRef,
    /// Stable label (`<partition>/<task>`).
    pub label: String,
    /// The per-task breakdown search result.
    pub result: BreakdownResult,
}

impl TaskSensitivity {
    /// The task's WCET slack: how much further its WCET can scale before
    /// the system breaks (`breakdown − 1`), when a breakdown was found.
    #[must_use]
    pub fn slack(&self) -> Option<f64> {
        self.result.breakdown().map(|b| b - 1.0)
    }
}

/// The probe engine. Construct with [`SweepEngine::new`], attach shared
/// stores with the builder methods, then drive it through
/// [`breakdown`](Self::breakdown) / [`sensitivity`](Self::sensitivity) or
/// the [`run_sweep`] orchestrator.
pub struct SweepEngine {
    base: Configuration,
    options: SweepOptions,
    cache: Option<Arc<dyn VerdictCache>>,
    checkpoints: Option<Arc<dyn CheckpointStore>>,
    recorder: Arc<dyn Recorder>,
    memo: HashMap<(Axis, u64), Probe>,
    chains: Vec<Vec<TaskRef>>,
}

impl SweepEngine {
    /// Creates an engine over a base configuration.
    ///
    /// # Errors
    ///
    /// [`SweepError::InvalidScaledConfig`] when the base configuration
    /// itself fails IMA validation (a sweep needs a valid origin).
    pub fn new(base: Configuration, options: SweepOptions) -> Result<Self, SweepError> {
        if let Err(errors) = base.validate() {
            let detail = errors
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ");
            return Err(SweepError::InvalidScaledConfig(detail));
        }
        let chains = derive_chains(&base);
        Ok(Self {
            base,
            options,
            cache: None,
            checkpoints: None,
            recorder: Arc::new(NoopRecorder),
            memo: HashMap::new(),
            chains,
        })
    }

    /// Attaches a verdict cache shared with other analyses.
    #[must_use]
    pub fn cache(mut self, cache: Arc<dyn VerdictCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a checkpoint store for warm-started simulations.
    #[must_use]
    pub fn checkpoints(mut self, store: Arc<dyn CheckpointStore>) -> Self {
        self.checkpoints = Some(store);
        self
    }

    /// Attaches an observability sink for the `sweep.*` counter family.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// The base configuration the sweep scales.
    #[must_use]
    pub fn base(&self) -> &Configuration {
        &self.base
    }

    /// The sweep options.
    #[must_use]
    pub fn options(&self) -> &SweepOptions {
        &self.options
    }

    /// The task chains derived from the base configuration's data-flow
    /// graph (maximal sender→receiver paths), used by chain gating.
    #[must_use]
    pub fn chains(&self) -> &[Vec<TaskRef>] {
        &self.chains
    }

    /// Snaps a factor to the engine's quantization grid.
    #[must_use]
    pub fn quantize(&self, factor: f64) -> f64 {
        let den = f64::from(self.options.quantum_den.max(1));
        let q = (factor * den).round() / den;
        if q > 0.0 {
            q
        } else {
            1.0 / den
        }
    }

    /// Evaluates one probe along `axis` at `factor`, through the reuse
    /// tiers described on the module.
    ///
    /// # Errors
    ///
    /// [`SweepError::Analysis`] when the underlying pipeline fails (a
    /// modeling bug). Domain-edge boundaries are *not* errors here: they
    /// come back as infeasible probes with
    /// [`ProbeSource::DomainEdge`].
    pub fn probe(&mut self, axis: Axis, factor: f64) -> Result<Probe, SweepError> {
        let quantized = self.quantize(factor);
        self.recorder.counter("sweep.probes", 1);

        let memo_key = (axis, quantized.to_bits());
        if let Some(hit) = self.memo.get(&memo_key) {
            self.recorder.counter("sweep.memo_hits", 1);
            let mut probe = hit.clone();
            probe.requested = factor;
            probe.source = ProbeSource::Memo;
            return Ok(probe);
        }

        let scaled = match axis.apply(&self.base, quantized) {
            Ok(scaled) => scaled,
            Err(e) if e.is_domain_edge() => {
                self.recorder.counter("sweep.domain_edges", 1);
                let probe = Probe {
                    requested: factor,
                    factor: quantized,
                    feasible: false,
                    schedulable: false,
                    chains_ok: None,
                    worst_chain_latency: None,
                    source: ProbeSource::DomainEdge,
                    domain_edge: Some(e.to_string()),
                };
                self.memo.insert(memo_key, probe.clone());
                return Ok(probe);
            }
            Err(e) => return Err(e),
        };

        // Chain gating needs the per-job analysis, which a cached verdict
        // does not carry — the cache tier only serves ungated probes.
        let gate_chains = self.options.chains && !self.chains.is_empty();
        if !gate_chains {
            if let Some(cache) = &self.cache {
                let hit = if self.options.compositional {
                    compositional_lookup(cache.as_ref(), &scaled, self.options.hyperperiods)
                } else {
                    cache.lookup(&canonicalize(&scaled, self.options.hyperperiods))
                };
                if let Some(verdict) = hit {
                    self.recorder.counter("sweep.cache_hits", 1);
                    let probe = Probe {
                        requested: factor,
                        factor: quantized,
                        feasible: verdict.schedulable,
                        schedulable: verdict.schedulable,
                        chains_ok: None,
                        worst_chain_latency: None,
                        source: ProbeSource::CacheHit,
                        domain_edge: None,
                    };
                    self.memo.insert(memo_key, probe.clone());
                    return Ok(probe);
                }
            }
        }

        // Analytic tier: the ladder decides clear-cut scaled
        // configurations without a simulation. Single-hyperperiod,
        // ungated probes only; decisions are sound, so the breakdown
        // interval the search certifies is unchanged.
        if !gate_chains
            && self.options.ladder != swa_core::LadderMode::Off
            && self.options.hyperperiods == 1
        {
            let ladder = swa_core::VerdictLadder::new(self.options.ladder);
            if let Some(decision) = ladder.evaluate(&scaled, self.recorder.as_ref()) {
                self.recorder.counter("sweep.ladder_hits", 1);
                let schedulable = decision.verdict.is_schedulable();
                let probe = Probe {
                    requested: factor,
                    factor: quantized,
                    feasible: schedulable,
                    schedulable,
                    chains_ok: None,
                    worst_chain_latency: None,
                    source: ProbeSource::Ladder,
                    domain_edge: None,
                };
                self.memo.insert(memo_key, probe.clone());
                return Ok(probe);
            }
        }

        self.recorder.counter("sweep.simulated", 1);
        let mut analyzer = Analyzer::new(&scaled)
            .engine(self.options.engine)
            .horizon(self.options.hyperperiods)
            .compositional(self.options.compositional)
            .recorder(self.recorder.clone());
        if let Some(cache) = &self.cache {
            analyzer = analyzer.cache(cache.clone());
        }
        if let Some(store) = &self.checkpoints {
            analyzer = analyzer.checkpoints(store.clone());
        }
        let report = analyzer.run()?;
        let schedulable = report.schedulable();

        let (chains_ok, worst_latency) = if gate_chains {
            let mut ok = true;
            let mut worst: Option<i64> = None;
            for chain in &self.chains {
                match chain_latency(&scaled, &report.analysis, chain) {
                    Ok(latency) => {
                        if !latency.all_complete() {
                            ok = false;
                        }
                        if let Some(w) = latency.worst() {
                            worst = Some(worst.map_or(w, |x| x.max(w)));
                            if self.options.chain_bound.is_some_and(|b| w > b) {
                                ok = false;
                            }
                        }
                    }
                    // Chains are derived from the base structure, which
                    // scaling never changes; an error here would be a
                    // modeling bug worth counting, not worth aborting.
                    Err(_) => self.recorder.counter("sweep.chain_errors", 1),
                }
            }
            (Some(ok), worst)
        } else {
            (None, None)
        };

        let probe = Probe {
            requested: factor,
            factor: quantized,
            feasible: schedulable && chains_ok.unwrap_or(true),
            schedulable,
            chains_ok,
            worst_chain_latency: worst_latency,
            source: ProbeSource::Simulated,
            domain_edge: None,
        };
        self.memo.insert(memo_key, probe.clone());
        Ok(probe)
    }

    /// Runs a certified breakdown search along `axis`. `on_step` observes
    /// every refinement step (for progressive output); `should_abort` is
    /// polled before each probe and turns the run into
    /// [`SweepError::Aborted`].
    ///
    /// Non-monotone axes (offset shift) automatically presample the
    /// factor range so feasible islands are not stepped over.
    ///
    /// # Errors
    ///
    /// [`SweepError::Aborted`] from the abort guard, or any probe error.
    pub fn breakdown(
        &mut self,
        axis: Axis,
        mut on_step: impl FnMut(&SearchStep),
        should_abort: impl Fn() -> bool,
    ) -> Result<BreakdownResult, SweepError> {
        let mut opts = self.options.search.clone();
        if !axis.is_monotone() && opts.presamples < 2 {
            opts.presamples = 8.min(opts.max_probes);
        }
        breakdown_search(
            &opts,
            |f| {
                if should_abort() {
                    return Err(SweepError::Aborted);
                }
                self.probe(axis, f).map(|p| p.feasible)
            },
            |step| on_step(step),
        )
    }

    /// Computes the per-task WCET sensitivity vector: one breakdown
    /// search per task (capped by
    /// [`max_sensitivity_tasks`](SweepOptions::max_sensitivity_tasks)),
    /// sharing this engine's memo, cache and checkpoint ladder — under
    /// compositional analysis each probe re-simulates only the module the
    /// task lives in.
    ///
    /// # Errors
    ///
    /// As [`breakdown`](Self::breakdown).
    pub fn sensitivity(
        &mut self,
        mut on_task: impl FnMut(&TaskSensitivity),
        should_abort: impl Fn() -> bool,
    ) -> Result<Vec<TaskSensitivity>, SweepError> {
        let tasks: Vec<(TaskRef, String)> = self
            .base
            .tasks()
            .map(|(tr, t)| {
                let pname = self
                    .base
                    .partition(tr.partition)
                    .map_or_else(|| tr.partition.to_string(), |p| p.name.clone());
                (tr, format!("{pname}/{}", t.name))
            })
            .take(self.options.max_sensitivity_tasks)
            .collect();
        let mut out = Vec::with_capacity(tasks.len());
        for (tr, label) in tasks {
            let result =
                self.breakdown(Axis::TaskWcetScale(tr), |_| {}, &should_abort)?;
            let entry = TaskSensitivity {
                task: tr,
                label,
                result,
            };
            on_task(&entry);
            out.push(entry);
        }
        Ok(out)
    }
}

/// Maximal sender→receiver paths of the data-flow graph: every task that
/// sends but never receives starts a chain; paths follow messages to
/// tasks that receive and never send onward, capped at 64 chains (the
/// DAG is validated acyclic, so the walk terminates).
fn derive_chains(config: &Configuration) -> Vec<Vec<TaskRef>> {
    const MAX_CHAINS: usize = 64;
    let mut receives: Vec<TaskRef> = Vec::new();
    let mut adj: HashMap<TaskRef, Vec<TaskRef>> = HashMap::new();
    for m in &config.messages {
        adj.entry(m.sender).or_default().push(m.receiver);
        receives.push(m.receiver);
    }
    for next in adj.values_mut() {
        next.sort();
        next.dedup();
    }
    let mut roots: Vec<TaskRef> = adj
        .keys()
        .filter(|t| !receives.contains(t))
        .copied()
        .collect();
    roots.sort();

    let mut chains: Vec<Vec<TaskRef>> = Vec::new();
    let mut stack: Vec<Vec<TaskRef>> = roots.into_iter().map(|r| vec![r]).collect();
    stack.reverse();
    while let Some(path) = stack.pop() {
        if chains.len() >= MAX_CHAINS {
            break;
        }
        let tail = *path.last().expect("paths are non-empty");
        match adj.get(&tail) {
            Some(next) if !next.is_empty() => {
                for &succ in next.iter().rev() {
                    if path.contains(&succ) {
                        continue; // defensive: validation already rejects cycles
                    }
                    let mut extended = path.clone();
                    extended.push(succ);
                    stack.push(extended);
                }
            }
            _ => {
                if path.len() >= 2 {
                    chains.push(path);
                }
            }
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_core::obs::MetricsRecorder;
    use swa_core::{ShardedCheckpointStore, ShardedVerdictCache};
    use swa_ima::{
        CoreRef, CoreType, CoreTypeId, Message, Module, ModuleId, Partition, PartitionId,
        SchedulerKind, Task, Window,
    };

    /// One partition, one task at 20% utilization: breakdown near 5.0
    /// modulo windowing effects.
    fn light_config() -> Configuration {
        Configuration {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M1", 1, CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new(
                "P1",
                SchedulerKind::Fpps,
                vec![Task::new("t", 1, vec![10], 50)],
            )],
            binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
            windows: vec![vec![Window::new(0, 50)]],
            messages: vec![],
        }
    }

    /// Two same-period tasks connected by a message (the chain fixture).
    fn chain_config() -> Configuration {
        Configuration {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M1", 2, CoreTypeId::from_raw(0))],
            partitions: vec![
                Partition::new(
                    "sense",
                    SchedulerKind::Fpps,
                    vec![Task::new("s", 1, vec![5], 50)],
                ),
                Partition::new(
                    "act",
                    SchedulerKind::Fpps,
                    vec![Task::new("a", 1, vec![4], 50)],
                ),
            ],
            binding: vec![
                CoreRef::new(ModuleId::from_raw(0), 0),
                CoreRef::new(ModuleId::from_raw(0), 1),
            ],
            windows: vec![vec![Window::new(0, 50)], vec![Window::new(0, 50)]],
            messages: vec![Message::new(
                "vl",
                TaskRef::new(PartitionId::from_raw(0), 0),
                TaskRef::new(PartitionId::from_raw(1), 0),
                1,
                6,
            )],
        }
    }

    #[test]
    fn breakdown_on_light_config_converges_above_one() {
        let mut engine = SweepEngine::new(light_config(), SweepOptions::default()).unwrap();
        let result = engine
            .breakdown(Axis::WcetScale, |_| {}, || false)
            .unwrap();
        let lo = result.breakdown().expect("base config is schedulable");
        assert!(lo >= 1.0, "breakdown {lo} must be at least the base point");
        assert!(result.certified(engine.options().search.tolerance));
        // The capacity ceiling: round(10·f) ≤ 50 requires f < 5.05 (a
        // factor of 5.049 still rounds to a WCET of exactly 50, which
        // fills — but does not overflow — the window).
        assert!(lo < 5.05, "breakdown {lo} cannot exceed capacity");
    }

    #[test]
    fn memo_and_counters_prove_reuse() {
        let recorder = Arc::new(MetricsRecorder::new());
        let mut engine = SweepEngine::new(light_config(), SweepOptions::default())
            .unwrap()
            .recorder(recorder.clone());
        engine.breakdown(Axis::WcetScale, |_| {}, || false).unwrap();
        let simulated_after_first = recorder.counter_value("sweep.simulated");
        assert!(simulated_after_first > 0);

        // The same search again: every probe lands in the memo.
        engine.breakdown(Axis::WcetScale, |_| {}, || false).unwrap();
        assert_eq!(
            recorder.counter_value("sweep.simulated"),
            simulated_after_first,
            "second identical search must not simulate"
        );
        assert!(recorder.counter_value("sweep.memo_hits") > 0);
        let probes = recorder.counter_value("sweep.probes");
        assert!(probes > simulated_after_first, "reuse rate must be > 0");
    }

    #[test]
    fn verdict_cache_serves_a_fresh_engine() {
        let cache: Arc<dyn VerdictCache> = Arc::new(ShardedVerdictCache::new(1 << 22));
        let recorder = Arc::new(MetricsRecorder::new());
        let mut first = SweepEngine::new(light_config(), SweepOptions::default())
            .unwrap()
            .cache(cache.clone());
        first.breakdown(Axis::WcetScale, |_| {}, || false).unwrap();

        // A brand-new engine (empty memo) over the same base: the shared
        // verdict cache answers without simulating.
        let mut second = SweepEngine::new(light_config(), SweepOptions::default())
            .unwrap()
            .cache(cache)
            .recorder(recorder.clone());
        second.breakdown(Axis::WcetScale, |_| {}, || false).unwrap();
        assert_eq!(recorder.counter_value("sweep.simulated"), 0);
        assert!(recorder.counter_value("sweep.cache_hits") > 0);
    }

    #[test]
    fn ladder_tier_decides_probes_without_changing_the_breakdown() {
        let baseline = SweepEngine::new(light_config(), SweepOptions::default())
            .unwrap()
            .breakdown(Axis::WcetScale, |_| {}, || false)
            .unwrap();

        let recorder = Arc::new(MetricsRecorder::new());
        let mut laddered = SweepEngine::new(
            light_config(),
            SweepOptions {
                ladder: swa_core::LadderMode::Full,
                ..SweepOptions::default()
            },
        )
        .unwrap()
        .recorder(recorder.clone());
        let result = laddered.breakdown(Axis::WcetScale, |_| {}, || false).unwrap();

        assert_eq!(result.breakdown(), baseline.breakdown());
        assert_eq!(result.lo, baseline.lo);
        assert_eq!(result.hi, baseline.hi);
        assert!(
            recorder.counter_value("sweep.ladder_hits") > 0,
            "the analytic tier must decide some probes"
        );
        assert!(
            recorder.counter_value("sweep.simulated")
                < recorder.counter_value("sweep.probes"),
            "ladder hits count as reuse"
        );

        // A clear-cut single probe reports the ladder as its source.
        let probe = laddered.probe(Axis::WcetScale, 0.5).unwrap();
        assert!(probe.feasible);
        assert!(matches!(probe.source, ProbeSource::Ladder | ProbeSource::Memo));
    }

    #[test]
    fn domain_edges_count_as_infeasible_probes() {
        let recorder = Arc::new(MetricsRecorder::new());
        let mut engine = SweepEngine::new(light_config(), SweepOptions::default())
            .unwrap()
            .recorder(recorder.clone());
        // Factor 10 puts demand far beyond the window capacity.
        let probe = engine.probe(Axis::WcetScale, 10.0).unwrap();
        assert!(!probe.feasible);
        assert_eq!(probe.source, ProbeSource::DomainEdge);
        assert!(probe.domain_edge.is_some());
        assert_eq!(recorder.counter_value("sweep.domain_edges"), 1);
    }

    #[test]
    fn chain_gating_tightens_the_verdict() {
        let config = chain_config();
        // Ungated: comfortably schedulable at the base point.
        let mut plain = SweepEngine::new(config.clone(), SweepOptions::default()).unwrap();
        assert!(plain.probe(Axis::WcetScale, 1.0).unwrap().feasible);

        // Gated with an impossible latency bound: the same point fails.
        let mut gated = SweepEngine::new(
            config,
            SweepOptions {
                chains: true,
                chain_bound: Some(1),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(gated.chains().len(), 1);
        let probe = gated.probe(Axis::WcetScale, 1.0).unwrap();
        assert!(probe.schedulable, "still schedulable");
        assert_eq!(probe.chains_ok, Some(false), "latency gate fails");
        assert!(!probe.feasible, "gated verdict is infeasible");
        assert!(probe.worst_chain_latency.is_some());
    }

    #[test]
    fn sensitivity_covers_every_task() {
        let mut engine = SweepEngine::new(chain_config(), SweepOptions::default()).unwrap();
        let mut seen = Vec::new();
        let vector = engine
            .sensitivity(|t| seen.push(t.label.clone()), || false)
            .unwrap();
        assert_eq!(vector.len(), 2);
        assert_eq!(seen, vec!["sense/s".to_string(), "act/a".to_string()]);
        for entry in &vector {
            assert!(
                entry.slack().is_some_and(|s| s >= 0.0),
                "{}: base point must be feasible",
                entry.label
            );
        }
    }

    #[test]
    fn abort_guard_stops_the_sweep() {
        let mut engine = SweepEngine::new(light_config(), SweepOptions::default()).unwrap();
        let err = engine
            .breakdown(Axis::WcetScale, |_| {}, || true)
            .unwrap_err();
        assert!(matches!(err, SweepError::Aborted));
    }

    #[test]
    fn derive_chains_walks_maximal_paths() {
        let config = chain_config();
        let chains = derive_chains(&config);
        assert_eq!(
            chains,
            vec![vec![
                TaskRef::new(PartitionId::from_raw(0), 0),
                TaskRef::new(PartitionId::from_raw(1), 0),
            ]]
        );
        assert!(derive_chains(&light_config()).is_empty());
    }

    #[test]
    fn checkpoints_warm_start_probe_simulations() {
        let store: Arc<dyn CheckpointStore> = Arc::new(ShardedCheckpointStore::new(1 << 22));
        let mut engine = SweepEngine::new(light_config(), SweepOptions::default())
            .unwrap()
            .checkpoints(store.clone());
        engine.breakdown(Axis::WcetScale, |_| {}, || false).unwrap();
        // Every simulated probe checkpointed its end state.
        let stats = store.stats();
        assert!(stats.insertions > 0, "probes must fill the ladder");
    }
}
