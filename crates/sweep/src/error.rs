//! Typed errors of the sweep subsystem.
//!
//! Scaling a configuration can push parameters past the IMA boundaries
//! the domain model enforces (periods must stay positive, offsets must
//! stay inside their period, a partition's demand cannot exceed its
//! window capacity). Those conditions are reported as *typed* errors
//! instead of silently saturating the scaled values — a silently clamped
//! probe would answer a question nobody asked. Errors that mark the edge
//! of the parameter domain ([`SweepError::is_domain_edge`]) are treated
//! by the probe engine as "not feasible at this factor" so a breakdown
//! search can still bracket against them.

use std::fmt;

use swa_core::PipelineError;

/// Why a sweep operation failed (or why a scaled configuration cannot
/// exist).
#[derive(Debug)]
#[non_exhaustive]
pub enum SweepError {
    /// The axis specification is not one of the known axis names.
    UnknownAxis(String),
    /// A per-task axis names a task that is not in the configuration.
    UnknownTask(String),
    /// Scale factors must be finite and strictly positive.
    NonPositiveFactor(f64),
    /// A task's scaled WCET rounded below one tick.
    WcetUnderflow {
        /// The task whose WCET vanished.
        task: String,
        /// The factor that caused it.
        factor: f64,
    },
    /// A partition's per-hyperperiod WCET demand exceeds the total
    /// window time it is granted — no schedule can fit the scaled work,
    /// however the windows are arranged within the hyperperiod.
    WcetExceedsWindows {
        /// The overflowing partition.
        partition: String,
        /// Demand per hyperperiod (Σ wcet·jobs) at the scaled factor.
        demand: i64,
        /// Window capacity per hyperperiod.
        capacity: i64,
    },
    /// A task's scaled period rounded below one tick.
    PeriodUnderflow {
        /// The task whose period vanished.
        task: String,
        /// The factor that caused it.
        factor: f64,
    },
    /// A partition window collapsed to zero length under period scaling.
    WindowCollapsed {
        /// The partition whose window vanished.
        partition: String,
    },
    /// The scaled configuration fails IMA structural validation (for
    /// example rounded windows started overlapping).
    InvalidScaledConfig(String),
    /// The configuration has no defined hyperperiod, so window-capacity
    /// boundaries cannot be checked.
    NoHyperperiod,
    /// The underlying analysis pipeline failed — a modeling bug, not an
    /// unschedulable probe.
    Analysis(PipelineError),
    /// The caller's abort guard (deadline, shutdown) stopped the sweep.
    Aborted,
}

impl SweepError {
    /// Whether the error marks the *edge of the parameter domain*: the
    /// scaled configuration cannot physically exist (demand beyond
    /// window capacity, vanished periods/windows, rounding-induced
    /// structural invalidity). The probe engine records such factors as
    /// infeasible — they bound the breakdown search from above — rather
    /// than failing the whole sweep.
    #[must_use]
    pub fn is_domain_edge(&self) -> bool {
        matches!(
            self,
            SweepError::WcetUnderflow { .. }
                | SweepError::WcetExceedsWindows { .. }
                | SweepError::PeriodUnderflow { .. }
                | SweepError::WindowCollapsed { .. }
                | SweepError::InvalidScaledConfig(_)
        )
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::UnknownAxis(spec) => write!(
                f,
                "unknown axis {spec:?} (expected \"wcet\", \"period\", \"offset\", or \"wcet:<partition>/<task>\")"
            ),
            SweepError::UnknownTask(spec) => {
                write!(f, "no task named {spec:?} (expected \"<partition>/<task>\")")
            }
            SweepError::NonPositiveFactor(factor) => {
                write!(f, "scale factor must be finite and > 0, got {factor}")
            }
            SweepError::WcetUnderflow { task, factor } => {
                write!(f, "task {task}: WCET rounds below one tick at factor {factor}")
            }
            SweepError::WcetExceedsWindows {
                partition,
                demand,
                capacity,
            } => write!(
                f,
                "partition {partition}: scaled demand {demand} exceeds window capacity {capacity} per hyperperiod"
            ),
            SweepError::PeriodUnderflow { task, factor } => {
                write!(f, "task {task}: period rounds below one tick at factor {factor}")
            }
            SweepError::WindowCollapsed { partition } => {
                write!(f, "partition {partition}: a window collapsed to zero length under period scaling")
            }
            SweepError::InvalidScaledConfig(detail) => {
                write!(f, "scaled configuration is invalid: {detail}")
            }
            SweepError::NoHyperperiod => write!(f, "configuration has no defined hyperperiod"),
            SweepError::Analysis(e) => write!(f, "analysis failed: {e}"),
            SweepError::Aborted => write!(f, "sweep aborted"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PipelineError> for SweepError {
    fn from(e: PipelineError) -> Self {
        SweepError::Analysis(e)
    }
}
