//! # swa-sweep — parametric sensitivity and breakdown analysis
//!
//! The paper's stopwatch-automata model answers one boolean question per
//! configuration. This crate asks the *parametric* question real
//! integrators care about: **how far can this configuration stretch
//! before it breaks?**
//!
//! * [`Axis`] — typed parameter axes: global/per-task WCET scale, period
//!   scale (rate), offset shift. Scaled configurations are validated at
//!   the IMA boundaries with typed errors ([`SweepError`]), never
//!   silently saturated.
//! * [`breakdown_search`] — the certified breakdown-factor search:
//!   geometric bracketing plus bisection under a hard probe budget, with
//!   a post-search monotonicity audit that reports verdict flips as a
//!   bracketing interval instead of a false ±tolerance certificate.
//! * [`SweepEngine`] — the probe engine: every probe runs through the
//!   [`swa_core::Analyzer`], reusing the verdict cache, compositional
//!   per-module keys and the checkpoint ladder, with a `sweep.*`
//!   [`swa_core::Recorder`] counter family measuring the reuse rate.
//! * [`run_sweep`] — the one-call orchestrator shared by the `swa sweep`
//!   CLI and the `POST /sweep` serve endpoint, so both produce
//!   byte-identical canonical reports ([`SweepReport::render_json`]).
//!
//! ```
//! use swa_ima::{
//!     Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition,
//!     SchedulerKind, Task, Window,
//! };
//! use swa_sweep::{run_sweep, Axis, SweepEngine, SweepOptions};
//!
//! let config = Configuration {
//!     core_types: vec![CoreType::new("generic")],
//!     modules: vec![Module::homogeneous("M1", 1, CoreTypeId::from_raw(0))],
//!     partitions: vec![Partition::new(
//!         "P1",
//!         SchedulerKind::Fpps,
//!         vec![Task::new("t", 1, vec![10], 50)],
//!     )],
//!     binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
//!     windows: vec![vec![Window::new(0, 50)]],
//!     messages: vec![],
//! };
//! let mut engine = SweepEngine::new(config, SweepOptions::default())?;
//! let report = run_sweep(&mut engine, Axis::WcetScale, false, |_| {}, || false)?;
//! assert!(report.breakdown.breakdown().is_some());
//! # Ok::<(), swa_sweep::SweepError>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

pub mod axis;
pub mod breakdown;
pub mod engine;
pub mod error;
pub mod report;

pub use axis::Axis;
pub use breakdown::{
    breakdown_search, BreakdownOutcome, BreakdownResult, ProbeRecord, SearchOptions, SearchStep,
};
pub use engine::{Probe, ProbeSource, SweepEngine, SweepOptions, TaskSensitivity};
pub use error::SweepError;
pub use report::{outcome_label, render_step_json, SweepReport};

/// Progressive events emitted while a sweep runs, in order.
#[derive(Debug, Clone, Copy)]
pub enum SweepEvent<'a> {
    /// One refinement step of the primary breakdown search.
    Step(&'a SearchStep),
    /// One completed per-task sensitivity search.
    Task(&'a TaskSensitivity),
}

/// Runs a complete sweep: the base probe at factor 1.0, the breakdown
/// search along `axis`, and (when `per_task` is set) the per-task WCET
/// sensitivity vector — emitting [`SweepEvent`]s as results arrive.
///
/// The CLI and the serve endpoint both call exactly this function, which
/// is what makes their canonical reports byte-identical.
///
/// # Errors
///
/// [`SweepError::Aborted`] when `should_abort` fires, or any probe error.
pub fn run_sweep(
    engine: &mut SweepEngine,
    axis: Axis,
    per_task: bool,
    mut on_event: impl FnMut(&SweepEvent<'_>),
    should_abort: impl Fn() -> bool,
) -> Result<SweepReport, SweepError> {
    let axis_label = axis.label(engine.base());
    let tolerance = engine.options().search.tolerance;
    let chains = engine.options().chains;
    let base = engine.probe(axis, 1.0)?;
    let breakdown = engine.breakdown(
        axis,
        |step| on_event(&SweepEvent::Step(step)),
        &should_abort,
    )?;
    let per_task = if per_task {
        engine.sensitivity(|t| on_event(&SweepEvent::Task(t)), &should_abort)?
    } else {
        Vec::new()
    };
    Ok(SweepReport {
        axis: axis_label,
        tolerance,
        chains,
        base,
        breakdown,
        per_task,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swa_ima::{
        Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, SchedulerKind,
        Task, Window,
    };

    fn config() -> Configuration {
        Configuration {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M1", 1, CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new(
                "P1",
                SchedulerKind::Fpps,
                vec![Task::new("t", 1, vec![10], 50)],
            )],
            binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
            windows: vec![vec![Window::new(0, 50)]],
            messages: vec![],
        }
    }

    #[test]
    fn run_sweep_emits_steps_and_renders_deterministically() {
        let mut engine = SweepEngine::new(config(), SweepOptions::default()).unwrap();
        let mut steps = 0usize;
        let report = run_sweep(
            &mut engine,
            Axis::WcetScale,
            true,
            |e| {
                if matches!(e, SweepEvent::Step(_)) {
                    steps += 1;
                }
            },
            || false,
        )
        .unwrap();
        assert_eq!(steps, report.breakdown.records.len());
        assert_eq!(report.per_task.len(), 1);
        assert!(report.base.schedulable);

        // A second engine (cold memo, cold everything) produces the very
        // same canonical JSON — the serve/CLI byte-for-byte contract.
        let mut fresh = SweepEngine::new(config(), SweepOptions::default()).unwrap();
        let again = run_sweep(&mut fresh, Axis::WcetScale, true, |_| {}, || false).unwrap();
        assert_eq!(report.render_json(), again.render_json());
    }
}
