//! Sweep reports: the canonical JSON line, the progressive step lines,
//! and the human table.
//!
//! The canonical report JSON is **deterministic**: it contains only facts
//! of the parameter space (factors, verdicts, brackets), never timings or
//! reuse counters — so the `swa sweep` CLI and the `POST /sweep` endpoint
//! produce byte-identical final lines for the same request, whatever the
//! cache temperature. Timings and the `sweep.*` counters belong to
//! `--metrics-out` and the bench artifact.

use swa_core::obs::json_escape;

use crate::breakdown::{BreakdownOutcome, BreakdownResult, SearchStep};
use crate::engine::{Probe, TaskSensitivity};

/// The complete result of one sweep run (base probe, breakdown search,
/// optional per-task sensitivity vector).
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Stable axis label (`wcet`, `period`, `offset`, `wcet:<p>/<t>`).
    pub axis: String,
    /// The requested certificate tolerance.
    pub tolerance: f64,
    /// Whether probes were gated on chain latency.
    pub chains: bool,
    /// The probe at factor 1.0 (the unscaled configuration).
    pub base: Probe,
    /// The breakdown search along the primary axis.
    pub breakdown: BreakdownResult,
    /// Per-task WCET sensitivity, when requested.
    pub per_task: Vec<TaskSensitivity>,
}

/// Stable string form of a search outcome.
#[must_use]
pub fn outcome_label(outcome: BreakdownOutcome) -> &'static str {
    match outcome {
        BreakdownOutcome::Converged => "converged",
        BreakdownOutcome::NonMonotone => "non-monotone",
        BreakdownOutcome::Unbounded => "unbounded",
        BreakdownOutcome::InfeasibleEverywhere => "infeasible-everywhere",
        BreakdownOutcome::ProbeBudgetExhausted => "probe-budget-exhausted",
    }
}

fn json_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x}"))
}

fn json_i64(v: Option<i64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x}"))
}

fn json_bool_opt(v: Option<bool>) -> String {
    v.map_or_else(|| "null".to_string(), |b| b.to_string())
}

fn json_breakdown(result: &BreakdownResult) -> String {
    let flips = result
        .flips
        .iter()
        .map(|(a, b)| format!("[{a},{b}]"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"outcome\":\"{}\",\"breakdown\":{},\"lo\":{},\"hi\":{},\"probes\":{},\"flips\":[{}]}}",
        outcome_label(result.outcome),
        json_f64(result.breakdown()),
        json_f64(result.lo),
        json_f64(result.hi),
        result.records.len(),
        flips
    )
}

/// Renders one progressive refinement step as a single JSON line (no
/// trailing newline).
#[must_use]
pub fn render_step_json(step: &SearchStep) -> String {
    format!(
        "{{\"status\":\"step\",\"probe\":{},\"factor\":{},\"feasible\":{},\"lo\":{},\"hi\":{}}}",
        step.probe,
        step.factor,
        step.feasible,
        json_f64(step.lo),
        json_f64(step.hi)
    )
}

impl SweepReport {
    /// Whether the primary search produced a ±tolerance certificate.
    #[must_use]
    pub fn certified(&self) -> bool {
        self.breakdown.certified(self.tolerance)
    }

    /// Renders the canonical single-line JSON report (no trailing
    /// newline). Deterministic — see the module docs.
    #[must_use]
    pub fn render_json(&self) -> String {
        let per_task = self
            .per_task
            .iter()
            .map(|t| {
                format!(
                    "{{\"task\":\"{}\",\"slack\":{},\"search\":{}}}",
                    json_escape(&t.label),
                    json_f64(t.slack()),
                    json_breakdown(&t.result)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"status\":\"done\",\"axis\":\"{}\",\"tolerance\":{},\"chains\":{},\
             \"base\":{{\"schedulable\":{},\"chains_ok\":{},\"worst_chain_latency\":{}}},\
             \"certified\":{},\"search\":{},\"per_task\":[{}]}}",
            json_escape(&self.axis),
            self.tolerance,
            self.chains,
            self.base.schedulable,
            json_bool_opt(self.base.chains_ok),
            json_i64(self.base.worst_chain_latency),
            self.certified(),
            json_breakdown(&self.breakdown),
            per_task
        )
    }

    /// Renders the human-readable table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("axis:       {}\n", self.axis));
        out.push_str(&format!(
            "base point: {}{}\n",
            if self.base.schedulable {
                "schedulable"
            } else {
                "NOT schedulable"
            },
            match (self.base.chains_ok, self.base.worst_chain_latency) {
                (Some(ok), worst) => format!(
                    ", chains {} (worst latency {})",
                    if ok { "ok" } else { "VIOLATED" },
                    worst.map_or_else(|| "-".to_string(), |w| w.to_string())
                ),
                (None, _) => String::new(),
            }
        ));
        out.push_str(&format!(
            "outcome:    {}\n",
            outcome_label(self.breakdown.outcome)
        ));
        match (self.breakdown.lo, self.breakdown.hi) {
            (Some(lo), Some(hi)) => {
                out.push_str(&format!(
                    "breakdown:  {lo} (bracket [{lo}, {hi}], width {}{})\n",
                    hi - lo,
                    if self.certified() {
                        format!(", certified ±{}", self.tolerance)
                    } else {
                        ", NOT certified".to_string()
                    }
                ));
            }
            (Some(lo), None) => {
                out.push_str(&format!("breakdown:  > {lo} (feasible up to the range edge)\n"));
            }
            _ => out.push_str("breakdown:  none (infeasible everywhere probed)\n"),
        }
        if !self.breakdown.flips.is_empty() {
            out.push_str(&format!(
                "flips:      {} monotonicity violation(s) — bracketing interval only\n",
                self.breakdown.flips.len()
            ));
        }
        out.push_str(&format!("probes:     {}\n", self.breakdown.records.len()));
        if !self.per_task.is_empty() {
            out.push_str("\nper-task WCET sensitivity (ascending slack):\n");
            let mut rows: Vec<&TaskSensitivity> = self.per_task.iter().collect();
            rows.sort_by(|a, b| {
                let ka = a.slack().unwrap_or(f64::INFINITY);
                let kb = b.slack().unwrap_or(f64::INFINITY);
                ka.total_cmp(&kb).then_with(|| a.label.cmp(&b.label))
            });
            out.push_str(&format!(
                "  {:<28} {:>10} {:>10} {:>22}\n",
                "task", "breakdown", "slack", "outcome"
            ));
            for row in rows {
                out.push_str(&format!(
                    "  {:<28} {:>10} {:>10} {:>22}\n",
                    row.label,
                    row.result
                        .breakdown()
                        .map_or_else(|| "-".to_string(), |b| format!("{b:.4}")),
                    row.slack()
                        .map_or_else(|| "-".to_string(), |s| format!("{s:.4}")),
                    outcome_label(row.result.outcome)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::ProbeRecord;
    use crate::engine::ProbeSource;
    use swa_ima::{PartitionId, TaskRef};

    fn sample_report() -> SweepReport {
        SweepReport {
            axis: "wcet".to_string(),
            tolerance: 0.01,
            chains: false,
            base: Probe {
                requested: 1.0,
                factor: 1.0,
                feasible: true,
                schedulable: true,
                chains_ok: None,
                worst_chain_latency: None,
                source: ProbeSource::Simulated,
                domain_edge: None,
            },
            breakdown: BreakdownResult {
                outcome: BreakdownOutcome::Converged,
                lo: Some(2.375),
                hi: Some(2.3828125),
                records: vec![
                    ProbeRecord {
                        factor: 1.0,
                        feasible: true,
                    },
                    ProbeRecord {
                        factor: 2.375,
                        feasible: true,
                    },
                    ProbeRecord {
                        factor: 2.3828125,
                        feasible: false,
                    },
                ],
                flips: vec![],
            },
            per_task: vec![TaskSensitivity {
                task: TaskRef::new(PartitionId::from_raw(0), 0),
                label: "P1/t1".to_string(),
                result: BreakdownResult {
                    outcome: BreakdownOutcome::Converged,
                    lo: Some(3.0),
                    hi: Some(3.0078125),
                    records: vec![],
                    flips: vec![],
                },
            }],
        }
    }

    #[test]
    fn json_is_single_line_and_stable() {
        let report = sample_report();
        let json = report.render_json();
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"status\":\"done\",\"axis\":\"wcet\""));
        assert!(json.contains("\"certified\":true"));
        assert!(json.contains("\"breakdown\":2.375"));
        assert!(json.contains("\"per_task\":[{\"task\":\"P1/t1\",\"slack\":2,"));
        // Rendering twice is byte-identical (the serve/CLI agreement gate).
        assert_eq!(json, report.render_json());
    }

    #[test]
    fn step_json_shape() {
        let step = SearchStep {
            probe: 3,
            factor: 1.5,
            feasible: true,
            lo: Some(1.5),
            hi: None,
        };
        assert_eq!(
            render_step_json(&step),
            "{\"status\":\"step\",\"probe\":3,\"factor\":1.5,\"feasible\":true,\"lo\":1.5,\"hi\":null}"
        );
    }

    #[test]
    fn table_mentions_the_bracket_and_sorts_by_slack() {
        let mut report = sample_report();
        report.per_task.push(TaskSensitivity {
            task: TaskRef::new(PartitionId::from_raw(0), 1),
            label: "P1/t0".to_string(),
            result: BreakdownResult {
                outcome: BreakdownOutcome::Converged,
                lo: Some(1.5),
                hi: Some(1.5078125),
                records: vec![],
                flips: vec![],
            },
        });
        let table = report.render_table();
        assert!(table.contains("breakdown:  2.375"));
        assert!(table.contains("certified ±0.01"));
        // Tighter slack (P1/t0, 0.5) sorts before P1/t1 (2.0).
        let pos0 = table.find("P1/t0").unwrap();
        let pos1 = table.find("P1/t1").unwrap();
        assert!(pos0 < pos1, "ascending slack order:\n{table}");
    }

    #[test]
    fn non_monotone_table_flags_flips() {
        let mut report = sample_report();
        report.breakdown.outcome = BreakdownOutcome::NonMonotone;
        report.breakdown.flips = vec![(1.5, 2.0)];
        let table = report.render_table();
        assert!(table.contains("non-monotone"));
        assert!(table.contains("1 monotonicity violation"));
        assert!(table.contains("NOT certified"));
        let json = report.render_json();
        assert!(json.contains("\"flips\":[[1.5,2]]"));
        assert!(json.contains("\"certified\":false"));
    }
}
