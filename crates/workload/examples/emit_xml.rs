//! Prints a generated configuration as Sect.-4 XML on stdout.
//!
//! Used by `ci.sh` to produce a fixture for the serve smoke gate:
//!
//! ```console
//! cargo run -p swa-workload --example emit_xml -- 100 > config.xml
//! ```
//!
//! The optional argument is the approximate job count per hyperperiod of
//! the Table-1-style configuration (default 100).

fn main() {
    let jobs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let config = swa_workload::table1_config(jobs);
    print!("{}", swa_xmlio::configuration_to_xml(&config));
}
