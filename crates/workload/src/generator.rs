//! Configuration generators for the experiments.
//!
//! The paper evaluates on proprietary avionics configurations; these
//! generators produce synthetic configurations with the same structural
//! parameters (see `DESIGN.md`, *Substitutions*): harmonic period menus,
//! UUniFast utilizations, per-frame window schedules, and same-period data
//! dependencies over virtual links.

use swa_ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Message, Module, ModuleId, Partition,
    PartitionId, SchedulerKind, Task, TaskRef,
};

use crate::rng::Rng64;
use crate::uunifast::uunifast;
use crate::windows::{synthesize_windows, PartitionDemand};

/// Parameters of an industrial-scale synthetic configuration.
#[derive(Debug, Clone)]
pub struct IndustrialSpec {
    /// Number of hardware modules.
    pub modules: usize,
    /// Cores per module.
    pub cores_per_module: usize,
    /// Partitions bound to each core.
    pub partitions_per_core: usize,
    /// Tasks per partition.
    pub tasks_per_partition: usize,
    /// Total task utilization per core (split over its partitions).
    pub core_utilization: f64,
    /// Harmonic period menu (each must divide the largest).
    pub periods: Vec<i64>,
    /// Fraction of tasks (excluding the first partition) that receive one
    /// message from an earlier same-period task.
    pub message_fraction: f64,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for IndustrialSpec {
    fn default() -> Self {
        Self {
            modules: 2,
            cores_per_module: 2,
            partitions_per_core: 2,
            tasks_per_partition: 8,
            core_utilization: 0.5,
            periods: vec![50, 100, 200, 400],
            message_fraction: 0.2,
            seed: 1,
        }
    }
}

/// Generates an industrial-scale configuration from a spec.
///
/// The result is structurally valid by construction (validated in tests);
/// schedulability depends on the utilization and window expansion and is
/// what the analysis decides.
///
/// # Panics
///
/// Panics if the spec is degenerate (no periods, zero sizes).
#[must_use]
pub fn industrial_config(spec: &IndustrialSpec) -> Configuration {
    assert!(!spec.periods.is_empty(), "period menu must be nonempty");
    assert!(
        spec.modules > 0
            && spec.cores_per_module > 0
            && spec.partitions_per_core > 0
            && spec.tasks_per_partition > 0,
        "spec sizes must be positive"
    );
    let mut rng = Rng64::seed_from_u64(spec.seed);
    let menu_max = *spec.periods.iter().max().expect("nonempty menu");

    let core_types = vec![CoreType::new("generic")];
    let ct = CoreTypeId::from_raw(0);
    let modules: Vec<Module> = (0..spec.modules)
        .map(|m| Module::homogeneous(format!("M{m}"), spec.cores_per_module, ct))
        .collect();

    // First pass: draw every partition's task set (the windows depend on
    // the *actual* hyperperiod of the drawn periods, which may be smaller
    // than the menu maximum).
    let mut partitions = Vec::new();
    let mut binding = Vec::new();
    let mut core_members: Vec<(CoreRef, Vec<usize>)> = Vec::new();
    for m in 0..spec.modules {
        for c in 0..spec.cores_per_module {
            let core = CoreRef::new(
                ModuleId::from_raw(u32::try_from(m).expect("module count fits u32")),
                u32::try_from(c).expect("core count fits u32"),
            );
            let per_partition_util = spec.core_utilization / spec.partitions_per_core as f64;
            let mut members = Vec::new();
            for p in 0..spec.partitions_per_core {
                let utils = uunifast(&mut rng, spec.tasks_per_partition, per_partition_util);
                let mut tasks = Vec::new();
                let n_tasks = i64::try_from(utils.len()).expect("task count fits i64");
                for (t, &u) in utils.iter().enumerate() {
                    let period = spec.periods[rng.gen_range(spec.periods.len())];
                    #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
                    let wcet = ((u * period as f64).round() as i64).clamp(1, period);
                    // Rate-monotonic priorities, made unique within the
                    // partition by the task index so dispatch is tie-free
                    // (see Configuration::dispatch_tie_warnings).
                    let t_i = i64::try_from(t).expect("task index fits i64");
                    let priority = (menu_max / period) * n_tasks + (n_tasks - t_i);
                    tasks.push(Task::new(
                        format!("t{m}_{c}_{p}_{t}"),
                        priority,
                        vec![wcet],
                        period,
                    ));
                }
                members.push(partitions.len());
                partitions.push(Partition::new(
                    format!("P{m}_{c}_{p}"),
                    SchedulerKind::Fpps,
                    tasks,
                ));
                binding.push(core);
            }
            core_members.push((core, members));
        }
    }

    // Second pass: window synthesis against the actual hyperperiod and the
    // smallest drawn period as frame (both divide evenly: the menu is
    // harmonic).
    let hyperperiod = swa_ima::util::lcm_all(
        partitions
            .iter()
            .flat_map(|p| p.tasks.iter().map(|t| t.period)),
    )
    .expect("positive periods");
    let frame = partitions
        .iter()
        .flat_map(|p| p.tasks.iter().map(|t| t.period))
        .min()
        .expect("nonempty task set");
    let mut windows = vec![Vec::new(); partitions.len()];
    for (_, members) in &core_members {
        let demands: Vec<PartitionDemand> = members
            .iter()
            .map(|&i| PartitionDemand {
                utilization: partitions[i].utilization_on(ct),
            })
            .collect();
        let sets = synthesize_windows(hyperperiod, frame, &demands, 1.6);
        for (&i, set) in members.iter().zip(sets) {
            windows[i] = set;
        }
    }

    // Same-period messages from earlier to later tasks (acyclic by
    // construction: sender's (partition, task) precedes the receiver's).
    let mut messages = Vec::new();
    let flat: Vec<(PartitionId, u32, i64)> = partitions
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            let pid = PartitionId::from_raw(u32::try_from(pi).expect("partition count fits u32"));
            p.tasks.iter().enumerate().map(move |(ti, t)| {
                (
                    pid,
                    u32::try_from(ti).expect("task count fits u32"),
                    t.period,
                )
            })
        })
        .collect();
    for (idx, &(pid, ti, period)) in flat.iter().enumerate() {
        if pid.index() == 0 || rng.gen_f64() >= spec.message_fraction {
            continue;
        }
        // Find an earlier task with the same period in a different
        // partition.
        let candidates: Vec<&(PartitionId, u32, i64)> = flat[..idx]
            .iter()
            .filter(|(sp, _, sper)| *sper == period && *sp != pid)
            .collect();
        if let Some(&&(sp, st, _)) = candidates.last() {
            let name = format!("vl{}", messages.len());
            messages.push(Message::new(
                name,
                TaskRef::new(sp, st),
                TaskRef::new(pid, ti),
                1,
                (period / 10).clamp(1, period - 1),
            ));
        }
    }

    Configuration {
        core_types,
        modules,
        partitions,
        binding,
        windows,
        messages,
    }
}

/// Picks spec sizes so the configuration has roughly `target_jobs` jobs
/// over its hyperperiod, and generates it.
///
/// With the default menu `{50, 100, 200, 400}`, a task averages 3.75 jobs.
#[must_use]
pub fn config_with_jobs(target_jobs: u64, seed: u64) -> Configuration {
    let spec = spec_with_jobs(target_jobs, seed);
    industrial_config(&spec)
}

/// The spec used by [`config_with_jobs`].
#[must_use]
pub fn spec_with_jobs(target_jobs: u64, seed: u64) -> IndustrialSpec {
    // Expected jobs per task with the default uniform menu.
    let jobs_per_task = 3.75;
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    let tasks_needed = ((target_jobs as f64 / jobs_per_task).ceil() as usize).max(1);
    // Keep 4 cores (2 modules × 2) and 2 partitions per core; scale tasks
    // per partition.
    let partitions = 8;
    let tasks_per_partition = tasks_needed.div_ceil(partitions).max(1);
    IndustrialSpec {
        tasks_per_partition,
        seed,
        ..IndustrialSpec::default()
    }
}

/// The deterministic Table 1 configuration family: `jobs` single-job tasks
/// split across two partitions on two cores.
///
/// Every task has period 100 (= the hyperperiod), a short WCET and a
/// distinct priority, so all jobs release simultaneously at `t = 0` — the
/// worst case for the model checker (every interleaving of the independent
/// per-core event chains is explored) and a trivial case for the
/// simulator. This reproduces the *shape* of the paper's Table 1.
#[must_use]
pub fn table1_config(jobs: usize) -> Configuration {
    assert!(jobs >= 2, "need at least one job per partition");
    let ct = CoreTypeId::from_raw(0);
    let core_types = vec![CoreType::new("generic")];
    let modules = vec![
        Module::homogeneous("M0", 1, ct),
        Module::homogeneous("M1", 1, ct),
    ];
    let half = jobs.div_ceil(2);
    let mut partitions = Vec::new();
    let mut binding = Vec::new();
    let mut windows = Vec::new();
    for (p, count) in [(0, half), (1, jobs - half)] {
        let tasks: Vec<Task> = (0..count)
            .map(|i| {
                Task::new(
                    format!("t{p}_{i}"),
                    i64::try_from(count - i).expect("count fits i64"),
                    vec![2],
                    100,
                )
            })
            .collect();
        partitions.push(Partition::new(format!("P{p}"), SchedulerKind::Fpps, tasks));
        binding.push(CoreRef::new(
            ModuleId::from_raw(u32::try_from(p).expect("two modules")),
            0,
        ));
        windows.push(vec![swa_ima::Window::new(0, 100)]);
    }
    Configuration {
        core_types,
        modules,
        partitions,
        binding,
        windows,
        messages: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn industrial_config_is_valid() {
        let c = industrial_config(&IndustrialSpec::default());
        c.validate().unwrap_or_else(|e| panic!("{e:?}"));
        assert_eq!(c.partitions.len(), 8);
        assert_eq!(c.hyperperiod(), Some(400));
        assert!(c.job_count().unwrap() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = industrial_config(&IndustrialSpec::default());
        let b = industrial_config(&IndustrialSpec::default());
        assert_eq!(a, b);
        let c = industrial_config(&IndustrialSpec {
            seed: 2,
            ..IndustrialSpec::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn config_with_jobs_hits_target_roughly() {
        for target in [100, 500, 2000] {
            let c = config_with_jobs(target, 3);
            c.validate().unwrap_or_else(|e| panic!("{e:?}"));
            let jobs = c.job_count().unwrap();
            #[allow(clippy::cast_precision_loss)]
            let ratio = jobs as f64 / target as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "target {target}, got {jobs} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn messages_are_same_period_and_acyclic() {
        let spec = IndustrialSpec {
            message_fraction: 0.5,
            ..IndustrialSpec::default()
        };
        let c = industrial_config(&spec);
        c.validate().unwrap_or_else(|e| panic!("{e:?}"));
        assert!(!c.messages.is_empty());
        for m in &c.messages {
            let s = c.task(m.sender).unwrap();
            let r = c.task(m.receiver).unwrap();
            assert_eq!(s.period, r.period);
        }
    }

    #[test]
    fn table1_config_has_exact_job_count() {
        for jobs in [2, 10, 15, 18] {
            let c = table1_config(jobs);
            c.validate().unwrap_or_else(|e| panic!("{e:?}"));
            assert_eq!(c.job_count(), Some(jobs as u64));
        }
    }
}
