//! # swa-workload — synthetic IMA configuration generators
//!
//! The paper evaluates on industrial avionics configurations that are not
//! public; this crate generates structurally comparable synthetic ones
//! (see `DESIGN.md`, *Substitutions*):
//!
//! * [`uunifast()`] — task utilizations with a controlled total (Bini &
//!   Buttazzo's UUniFast, the field-standard sampler);
//! * [`windows`] — per-frame window-schedule synthesis;
//! * [`generator`] — whole configurations: the deterministic
//!   [`generator::table1_config`] family (Table 1), and
//!   [`generator::industrial_config`] /
//!   [`generator::config_with_jobs`] for the scalability experiment
//!   (12 500-job configurations).
//!
//! Generation is deterministic given a seed, so every experiment is
//! reproducible.

#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

pub mod generator;
pub mod rng;
pub mod uunifast;
pub mod windows;

pub use generator::{
    config_with_jobs, industrial_config, spec_with_jobs, table1_config, IndustrialSpec,
};
pub use rng::Rng64;
pub use uunifast::uunifast;
pub use windows::{synthesize_windows, PartitionDemand};
