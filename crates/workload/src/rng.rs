//! A small, self-contained, seeded pseudo-random number generator.
//!
//! The experiments only need *reproducible* draws, not cryptographic ones,
//! so instead of an external crate the workspace carries ~40 lines of
//! xoshiro256** (Blackman & Vigna) seeded through splitmix64 — the exact
//! construction the reference implementation recommends. Generation is
//! fully deterministic given the seed, which is the property every
//! experiment in `DESIGN.md` relies on.

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

/// One step of splitmix64, used to expand the seed into the initial state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift (Lemire); the bias for experiment-sized ranges is
        // far below anything the generators can observe.
        let n64 = n as u64;
        usize::try_from(((u128::from(self.next_u64()) * u128::from(n64)) >> 64) as u64)
            .expect("result below n which fits usize")
    }

    /// A Bernoulli draw: `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_respected_and_covered() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is not the identity");
    }

    #[test]
    fn reference_vector_matches_xoshiro256starstar() {
        // First outputs for the all-splitmix64(0) state, checked against
        // the published reference implementation.
        let mut rng = Rng64::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        let mut again = Rng64::seed_from_u64(0);
        assert_eq!(first, (0..3).map(|_| again.next_u64()).collect::<Vec<_>>());
    }
}
