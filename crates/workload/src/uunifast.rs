//! Task-set utilization generation: the UUniFast algorithm (Bini &
//! Buttazzo), the standard way schedulability papers sample `n` task
//! utilizations summing to a target total.

use crate::rng::Rng64;

/// Draws `n` utilizations summing to `total` via UUniFast.
///
/// Returns an empty vector when `n == 0`. All values are strictly positive
/// as long as `total > 0`.
pub fn uunifast(rng: &mut Rng64, n: usize, total: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        #[allow(clippy::cast_precision_loss)]
        let exp = 1.0 / (n - i) as f64;
        let next = sum * rng.gen_f64().powf(exp);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_total() {
        let mut rng = Rng64::seed_from_u64(42);
        for n in [1, 2, 5, 20] {
            let us = uunifast(&mut rng, n, 0.7);
            assert_eq!(us.len(), n);
            let sum: f64 = us.iter().sum();
            assert!((sum - 0.7).abs() < 1e-9, "sum {sum}");
            assert!(us.iter().all(|&u| u > 0.0));
        }
    }

    #[test]
    fn empty_for_zero_tasks() {
        let mut rng = Rng64::seed_from_u64(1);
        assert!(uunifast(&mut rng, 0, 0.5).is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = uunifast(&mut Rng64::seed_from_u64(7), 5, 0.9);
        let b = uunifast(&mut Rng64::seed_from_u64(7), 5, 0.9);
        assert_eq!(a, b);
    }
}
