//! Window-schedule synthesis: divides a core's hyperperiod among its
//! partitions.
//!
//! The synthesis follows common IMA practice: the hyperperiod is cut into
//! *frames* (one per smallest period), and inside every frame each
//! partition receives a contiguous slot whose share is proportional to its
//! utilization, scaled by an over-provisioning factor. Windows therefore
//! recur once per frame, which keeps partition latencies bounded by the
//! frame length.

use swa_ima::Window;

/// A partition's demand on a core, used to size its windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionDemand {
    /// Task utilization of the partition on this core's type (`Σ C/P`).
    pub utilization: f64,
}

/// Synthesizes per-partition window sets on one core.
///
/// * `hyperperiod` — the schedule length `L`;
/// * `frame` — the frame length (typically the smallest task period on the
///   core); must divide `hyperperiod`;
/// * `demands` — one entry per partition bound to the core;
/// * `expansion` — over-provisioning factor (≥ 1.0); shares are scaled by
///   it before rounding, then clamped to fit the frame.
///
/// Returns one window list per partition (same order as `demands`). Every
/// partition receives at least one time unit per frame if any capacity is
/// left; partitions are laid out back-to-back from the frame start.
#[must_use]
pub fn synthesize_windows(
    hyperperiod: i64,
    frame: i64,
    demands: &[PartitionDemand],
    expansion: f64,
) -> Vec<Vec<Window>> {
    assert!(
        frame > 0 && hyperperiod > 0,
        "positive frame and hyperperiod"
    );
    assert!(
        hyperperiod % frame == 0,
        "frame {frame} must divide hyperperiod {hyperperiod}"
    );
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }

    // Per-frame share for each partition.
    #[allow(clippy::cast_precision_loss)]
    let frame_f = frame as f64;
    let mut shares: Vec<i64> = demands
        .iter()
        .map(|d| {
            #[allow(clippy::cast_possible_truncation)]
            let share = (d.utilization * expansion * frame_f).ceil() as i64;
            share.max(1)
        })
        .collect();
    // Clamp to the frame if over-subscribed: shrink the largest shares
    // first until it fits.
    let mut total: i64 = shares.iter().sum();
    while total > frame {
        let (idx, _) = shares
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| **s)
            .expect("nonempty");
        if shares[idx] <= 1 {
            break; // every partition is at the 1-unit floor; give up
        }
        shares[idx] -= 1;
        total -= 1;
    }

    let frames = hyperperiod / frame;
    let mut out = vec![Vec::new(); n];
    for f in 0..frames {
        let mut cursor = f * frame;
        for (i, &share) in shares.iter().enumerate() {
            let end = (cursor + share).min((f + 1) * frame);
            if cursor < end {
                out[i].push(Window::new(cursor, end));
            }
            cursor = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_tile_each_frame_without_overlap() {
        let demands = vec![
            PartitionDemand { utilization: 0.3 },
            PartitionDemand { utilization: 0.2 },
        ];
        let ws = synthesize_windows(100, 25, &demands, 1.5);
        assert_eq!(ws.len(), 2);
        // 4 frames, one window per partition per frame.
        assert_eq!(ws[0].len(), 4);
        assert_eq!(ws[1].len(), 4);
        // No overlap and correct ordering inside each frame.
        for (f, (&a, &b)) in ws[0].iter().zip(&ws[1]).enumerate() {
            let a: Window = a;
            let b: Window = b;
            assert_eq!(a.start, i64::try_from(f).unwrap() * 25);
            assert_eq!(b.start, a.end);
            assert!(b.end <= (i64::try_from(f).unwrap() + 1) * 25);
            assert!(!a.overlaps(b));
        }
    }

    #[test]
    fn oversubscription_is_clamped_to_frame() {
        let demands = vec![
            PartitionDemand { utilization: 0.9 },
            PartitionDemand { utilization: 0.9 },
        ];
        let ws = synthesize_windows(40, 20, &demands, 1.0);
        for f in 0..2 {
            let total: i64 = ws.iter().map(|w| w[f].duration()).sum();
            assert!(total <= 20);
        }
        // Both partitions still get something.
        assert!(ws.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn tiny_utilization_still_gets_a_unit() {
        let demands = vec![PartitionDemand { utilization: 0.001 }];
        let ws = synthesize_windows(50, 10, &demands, 1.0);
        assert!(ws[0].iter().all(|w| w.duration() >= 1));
        assert_eq!(ws[0].len(), 5);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_dividing_frame_panics() {
        let _ = synthesize_windows(100, 30, &[PartitionDemand { utilization: 0.5 }], 1.0);
    }
}
