//! Configuration serialization: the XML interface of the paper's Sect. 4
//! ("an XML file with the configuration description is generated and passed
//! to the parametric model").
//!
//! All cross-references (core types, modules, tasks) are by name, so the
//! files are diff-friendly and hand-editable; loading resolves names and
//! reports dangling references precisely.

use std::collections::HashMap;

use swa_ima::{
    Configuration, Core, CoreRef, CoreType, CoreTypeId, Message, MessageId, Module, ModuleId,
    Partition, PartitionId, SchedulerKind, Switch, Task, TaskRef, Topology, Window,
};

use crate::error::XmlError;
use crate::xml::{parse, Element};

/// Serializes a configuration to XML.
#[must_use]
pub fn configuration_to_xml(config: &Configuration) -> String {
    configuration_with_topology_to_xml(config, None)
}

/// Serializes a configuration together with a switched-network topology.
#[must_use]
pub fn configuration_with_topology_to_xml(
    config: &Configuration,
    topology: Option<&Topology>,
) -> String {
    let core_types = Element::new("coreTypes").children(
        config
            .core_types
            .iter()
            .map(|ct| Element::new("coreType").attr("name", &ct.name)),
    );

    let modules = Element::new("modules").children(config.modules.iter().map(|m| {
        Element::new("module")
            .attr("name", &m.name)
            .children(m.cores.iter().map(|c| {
                Element::new("core")
                    .attr("name", &c.name)
                    .attr("type", &config.core_types[c.core_type.index()].name)
            }))
    }));

    let partitions =
        Element::new("partitions").children(config.partitions.iter().enumerate().map(|(pi, p)| {
            let core = config.binding[pi];
            let module_name = &config.modules[core.module.index()].name;
            let mut e = Element::new("partition")
                .attr("name", &p.name)
                .attr("scheduler", p.scheduler)
                .attr("module", module_name)
                .attr("core", core.core);
            if let SchedulerKind::RoundRobin { quantum } = p.scheduler {
                e = e.attr("quantum", quantum);
            }
            for t in &p.tasks {
                let mut te = Element::new("task")
                    .attr("name", &t.name)
                    .attr("priority", t.priority)
                    .attr("period", t.period)
                    .attr("deadline", t.deadline);
                if t.offset != 0 {
                    te = te.attr("offset", t.offset);
                }
                for (cti, w) in t.wcet.iter().enumerate() {
                    te = te.child(
                        Element::new("wcet")
                            .attr("coreType", &config.core_types[cti].name)
                            .attr("value", w),
                    );
                }
                e = e.child(te);
            }
            for w in &config.windows[pi] {
                e = e.child(
                    Element::new("window")
                        .attr("start", w.start)
                        .attr("end", w.end),
                );
            }
            e
        }));

    let messages = Element::new("messages").children(config.messages.iter().map(|m| {
        let s = task_path(config, m.sender);
        let r = task_path(config, m.receiver);
        Element::new("message")
            .attr("name", &m.name)
            .attr("from", s)
            .attr("to", r)
            .attr("memDelay", m.mem_delay)
            .attr("netDelay", m.net_delay)
    }));

    let mut root = Element::new("configuration")
        .child(core_types)
        .child(modules)
        .child(partitions)
        .child(messages);
    if let Some(t) = topology {
        let mut te = Element::new("topology").children(t.switches.iter().map(|s| {
            Element::new("switch")
                .attr("name", &s.name)
                .attr("latency", s.latency)
        }));
        for (mi, route) in t.routes.iter().enumerate() {
            if route.is_empty() {
                continue;
            }
            let mut re = Element::new("route").attr("message", &config.messages[mi].name);
            for &hop in route {
                re = re.child(Element::new("hop").attr("switch", &t.switches[hop].name));
            }
            te = te.child(re);
        }
        root = root.child(te);
    }
    root.to_xml()
}

fn task_path(config: &Configuration, t: TaskRef) -> String {
    let p = &config.partitions[t.partition.index()];
    format!("{}.{}", p.name, p.tasks[t.task as usize].name)
}

/// Parses a configuration from XML.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed XML, schema mismatches or dangling
/// references. (Domain-level validity is checked separately with
/// [`Configuration::validate`].)
pub fn configuration_from_xml(xml: &str) -> Result<Configuration, XmlError> {
    configuration_with_topology_from_xml(xml).map(|(c, _)| c)
}

/// Parses a configuration and its optional `<topology>` section.
///
/// # Errors
///
/// As [`configuration_from_xml`].
pub fn configuration_with_topology_from_xml(
    xml: &str,
) -> Result<(Configuration, Option<Topology>), XmlError> {
    let root = parse(xml)?;
    if root.name != "configuration" {
        return Err(XmlError::schema(
            &root.name,
            "expected root element <configuration>",
        ));
    }

    // Core types.
    let mut core_types = Vec::new();
    let mut core_type_ids = HashMap::new();
    if let Some(cts) = root.find("coreTypes") {
        for ct in cts.find_all("coreType") {
            let name = ct.require_attribute("name")?.to_string();
            core_type_ids.insert(
                name.clone(),
                CoreTypeId::from_raw(
                    u32::try_from(core_types.len()).expect("core type count fits u32"),
                ),
            );
            core_types.push(CoreType::new(name));
        }
    }

    // Modules.
    let mut modules = Vec::new();
    let mut module_ids = HashMap::new();
    if let Some(ms) = root.find("modules") {
        for m in ms.find_all("module") {
            let name = m.require_attribute("name")?.to_string();
            let mut cores = Vec::new();
            for c in m.find_all("core") {
                let cname = c.require_attribute("name")?.to_string();
                let tname = c.require_attribute("type")?;
                let &ct = core_type_ids.get(tname).ok_or(XmlError::UnknownReference {
                    kind: "core type",
                    name: tname.to_string(),
                })?;
                cores.push(Core::new(cname, ct));
            }
            module_ids.insert(
                name.clone(),
                ModuleId::from_raw(u32::try_from(modules.len()).expect("module count fits u32")),
            );
            modules.push(Module::new(name, cores));
        }
    }

    // Partitions (with tasks, windows, binding).
    let mut partitions = Vec::new();
    let mut binding = Vec::new();
    let mut windows = Vec::new();
    if let Some(ps) = root.find("partitions") {
        for p in ps.find_all("partition") {
            let name = p.require_attribute("name")?.to_string();
            let mut sched: SchedulerKind = p
                .require_attribute("scheduler")?
                .parse()
                .map_err(|e| XmlError::schema("partition", format!("{e}")))?;
            if matches!(sched, SchedulerKind::RoundRobin { .. }) {
                sched = SchedulerKind::RoundRobin {
                    quantum: p.require_i64("quantum")?,
                };
            }
            let module_name = p.require_attribute("module")?;
            let &module = module_ids
                .get(module_name)
                .ok_or(XmlError::UnknownReference {
                    kind: "module",
                    name: module_name.to_string(),
                })?;
            let core = u32::try_from(p.require_i64("core")?)
                .map_err(|_| XmlError::schema("partition", "core index out of range"))?;

            let mut tasks = Vec::new();
            for t in p.find_all("task") {
                let tname = t.require_attribute("name")?.to_string();
                let priority = t.require_i64("priority")?;
                let period = t.require_i64("period")?;
                let deadline = t
                    .attribute("deadline")
                    .map_or(Ok(period), |_| t.require_i64("deadline"))?;
                let offset = t
                    .attribute("offset")
                    .map_or(Ok(0), |_| t.require_i64("offset"))?;
                let mut wcet = vec![0; core_types.len()];
                for w in t.find_all("wcet") {
                    let ctname = w.require_attribute("coreType")?;
                    let &ct = core_type_ids
                        .get(ctname)
                        .ok_or(XmlError::UnknownReference {
                            kind: "core type",
                            name: ctname.to_string(),
                        })?;
                    wcet[ct.index()] = w.require_i64("value")?;
                }
                tasks.push(Task {
                    name: tname,
                    priority,
                    wcet,
                    period,
                    deadline,
                    offset,
                });
            }

            let mut ws = Vec::new();
            for w in p.find_all("window") {
                ws.push(Window::new(w.require_i64("start")?, w.require_i64("end")?));
            }

            partitions.push(Partition::new(name, sched, tasks));
            binding.push(CoreRef::new(module, core));
            windows.push(ws);
        }
    }

    // Task path index for messages.
    let mut task_index: HashMap<String, TaskRef> = HashMap::new();
    for (pi, p) in partitions.iter().enumerate() {
        for (ti, t) in p.tasks.iter().enumerate() {
            task_index.insert(
                format!("{}.{}", p.name, t.name),
                TaskRef::new(
                    PartitionId::from_raw(u32::try_from(pi).expect("partition count fits u32")),
                    u32::try_from(ti).expect("task count fits u32"),
                ),
            );
        }
    }

    let mut messages = Vec::new();
    if let Some(ms) = root.find("messages") {
        for m in ms.find_all("message") {
            let name = m.require_attribute("name")?.to_string();
            let from = m.require_attribute("from")?;
            let to = m.require_attribute("to")?;
            let &sender = task_index.get(from).ok_or(XmlError::UnknownReference {
                kind: "task",
                name: from.to_string(),
            })?;
            let &receiver = task_index.get(to).ok_or(XmlError::UnknownReference {
                kind: "task",
                name: to.to_string(),
            })?;
            messages.push(Message::new(
                name,
                sender,
                receiver,
                m.require_i64("memDelay")?,
                m.require_i64("netDelay")?,
            ));
        }
    }

    let config = Configuration {
        core_types,
        modules,
        partitions,
        binding,
        windows,
        messages,
    };

    // Optional switched-network topology.
    let topology = match root.find("topology") {
        None => None,
        Some(te) => {
            let mut switches = Vec::new();
            let mut switch_ids = HashMap::new();
            for sw in te.find_all("switch") {
                let name = sw.require_attribute("name")?.to_string();
                switch_ids.insert(name.clone(), switches.len());
                switches.push(Switch::new(name, sw.require_i64("latency")?));
            }
            let mut topology = Topology::new(switches);
            for route in te.find_all("route") {
                let mname = route.require_attribute("message")?;
                let mid = config.messages.iter().position(|m| m.name == mname).ok_or(
                    XmlError::UnknownReference {
                        kind: "message",
                        name: mname.to_string(),
                    },
                )?;
                let mut hops = Vec::new();
                for hop in route.find_all("hop") {
                    let sname = hop.require_attribute("switch")?;
                    let &idx = switch_ids.get(sname).ok_or(XmlError::UnknownReference {
                        kind: "switch",
                        name: sname.to_string(),
                    })?;
                    hops.push(idx);
                }
                topology = topology.with_route(
                    MessageId::from_raw(u32::try_from(mid).expect("message count fits u32")),
                    hops,
                );
            }
            Some(topology)
        }
    };

    Ok((config, topology))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Configuration {
        Configuration {
            core_types: vec![CoreType::new("slow"), CoreType::new("fast")],
            modules: vec![
                Module::new(
                    "M1",
                    vec![
                        Core::new("M1.cpu0", CoreTypeId::from_raw(0)),
                        Core::new("M1.cpu1", CoreTypeId::from_raw(1)),
                    ],
                ),
                Module::homogeneous("M2", 1, CoreTypeId::from_raw(1)),
            ],
            partitions: vec![
                Partition::new(
                    "nav",
                    SchedulerKind::Fpps,
                    vec![
                        Task::new("filter", 3, vec![10, 5], 50).with_deadline(40),
                        Task::new("fuse", 1, vec![20, 12], 100),
                    ],
                ),
                Partition::new(
                    "display",
                    SchedulerKind::Edf,
                    vec![Task::new("render", 1, vec![8, 4], 50)],
                ),
            ],
            binding: vec![
                CoreRef::new(ModuleId::from_raw(0), 1),
                CoreRef::new(ModuleId::from_raw(1), 0),
            ],
            windows: vec![
                vec![Window::new(0, 60), Window::new(80, 100)],
                vec![Window::new(0, 100)],
            ],
            messages: vec![Message::new(
                "nav_to_display",
                TaskRef::new(PartitionId::from_raw(0), 0),
                TaskRef::new(PartitionId::from_raw(1), 0),
                2,
                9,
            )],
        }
    }

    #[test]
    fn roundtrip_preserves_configuration() {
        let original = sample();
        original.validate().unwrap();
        let xml = configuration_to_xml(&original);
        let parsed = configuration_from_xml(&xml).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn xml_is_human_readable() {
        let xml = configuration_to_xml(&sample());
        assert!(xml.contains("<partition name=\"nav\" scheduler=\"FPPS\""));
        assert!(xml.contains("from=\"nav.filter\""));
        assert!(xml.contains("<wcet coreType=\"fast\""));
    }

    #[test]
    fn missing_reference_is_reported() {
        let xml = r#"<configuration>
            <coreTypes><coreType name="ct"/></coreTypes>
            <modules><module name="M"><core name="c" type="nonexistent"/></module></modules>
        </configuration>"#;
        let err = configuration_from_xml(xml).unwrap_err();
        assert!(matches!(
            err,
            XmlError::UnknownReference {
                kind: "core type",
                ..
            }
        ));
    }

    #[test]
    fn missing_attribute_is_reported() {
        let xml = r"<configuration><coreTypes><coreType/></coreTypes></configuration>";
        let err = configuration_from_xml(xml).unwrap_err();
        assert!(err.to_string().contains("missing attribute"));
    }

    #[test]
    fn wrong_root_is_reported() {
        let err = configuration_from_xml("<notconfig/>").unwrap_err();
        assert!(err.to_string().contains("configuration"));
    }

    #[test]
    fn topology_roundtrips() {
        let config = sample();
        let topology = Topology::new(vec![Switch::new("SW1", 3), Switch::new("SW2", 5)])
            .with_route(MessageId::from_raw(0), vec![0, 1]);
        let xml = configuration_with_topology_to_xml(&config, Some(&topology));
        assert!(xml.contains("<topology>"));
        assert!(xml.contains("switch name=\"SW1\""));
        assert!(xml.contains("route message=\"nav_to_display\""));
        let (back_config, back_topology) = configuration_with_topology_from_xml(&xml).unwrap();
        assert_eq!(back_config, config);
        assert_eq!(back_topology, Some(topology));
    }

    #[test]
    fn missing_topology_yields_none() {
        let xml = configuration_to_xml(&sample());
        let (_, topology) = configuration_with_topology_from_xml(&xml).unwrap();
        assert_eq!(topology, None);
    }

    #[test]
    fn dangling_route_references_are_reported() {
        let config = sample();
        let mut xml = configuration_with_topology_to_xml(
            &config,
            Some(&Topology::new(vec![Switch::new("SW1", 3)])),
        );
        xml = xml.replace(
            "</configuration>",
            "<topology><switch name=\"S\" latency=\"1\"/>\
             <route message=\"nope\"><hop switch=\"S\"/></route></topology></configuration>",
        );
        // (The original empty topology plus an injected one; the parser
        // reads the first <topology> element, which is the empty one, so
        // inject into a topology-free document instead.)
        let base = configuration_to_xml(&config).replace(
            "</configuration>",
            "<topology><switch name=\"S\" latency=\"1\"/>\
             <route message=\"nope\"><hop switch=\"S\"/></route></topology></configuration>",
        );
        let err = configuration_with_topology_from_xml(&base).unwrap_err();
        assert!(matches!(
            err,
            XmlError::UnknownReference {
                kind: "message",
                ..
            }
        ));
        let _ = xml;
    }

    #[test]
    fn deadline_defaults_to_period() {
        let xml = r#"<configuration>
            <coreTypes><coreType name="ct"/></coreTypes>
            <modules><module name="M"><core name="c" type="ct"/></module></modules>
            <partitions>
              <partition name="P" scheduler="FPPS" module="M" core="0">
                <task name="t" priority="1" period="50"><wcet coreType="ct" value="10"/></task>
                <window start="0" end="50"/>
              </partition>
            </partitions>
        </configuration>"#;
        let c = configuration_from_xml(xml).unwrap();
        assert_eq!(c.partitions[0].tasks[0].deadline, 50);
        c.validate().unwrap();
    }
}
