//! Errors for XML parsing and configuration (de)serialization.

use std::fmt;

/// Errors raised while reading XML or mapping it to domain objects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// Lexical/syntactic error in the XML text.
    Parse {
        /// 1-based line of the error.
        line: usize,
        /// 1-based column of the error.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// The XML is well-formed but does not match the expected schema.
    Schema {
        /// Path to the offending element (e.g. `configuration/partitions`).
        path: String,
        /// What went wrong.
        message: String,
    },
    /// A reference (partition, task, core type, module) did not resolve.
    UnknownReference {
        /// The reference kind (e.g. `"core type"`).
        kind: &'static str,
        /// The dangling name.
        name: String,
    },
}

impl XmlError {
    /// Convenience constructor for schema errors.
    #[must_use]
    pub fn schema(path: &str, message: impl Into<String>) -> Self {
        Self::Schema {
            path: path.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse {
                line,
                column,
                message,
            } => write!(f, "xml parse error at {line}:{column}: {message}"),
            Self::Schema { path, message } => {
                write!(f, "schema error at {path}: {message}")
            }
            Self::UnknownReference { kind, name } => {
                write!(f, "unknown {kind} {name:?}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = XmlError::Parse {
            line: 3,
            column: 14,
            message: "expected '>'".into(),
        };
        assert_eq!(e.to_string(), "xml parse error at 3:14: expected '>'");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XmlError>();
    }
}
