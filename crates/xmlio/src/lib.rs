//! # swa-xmlio — XML interface for configurations and traces
//!
//! The paper's toolchain exchanges system configurations and operation
//! traces as XML files (Sect. 4: the scheduling tool generates an XML
//! configuration description, the model returns the trace). This crate
//! provides that interface:
//!
//! * [`xml`] — a small self-contained XML subset (elements, attributes,
//!   text, comments, the five predefined entities) with a
//!   recursive-descent parser that reports line/column positions, and an
//!   indenting writer;
//! * [`config_io`] — [`swa_ima::Configuration`] ⇄ XML, with by-name
//!   cross-references;
//! * [`trace_io`] — [`swa_core::SystemTrace`] ⇄ XML.
//!
//! # Examples
//!
//! ```
//! use swa_xmlio::{configuration_from_xml, configuration_to_xml};
//! # use swa_ima::*;
//! # let config = Configuration {
//! #     core_types: vec![CoreType::new("ct")],
//! #     modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
//! #     partitions: vec![Partition::new("P", SchedulerKind::Fpps,
//! #         vec![Task::new("t", 1, vec![10], 50)])],
//! #     binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
//! #     windows: vec![vec![Window::new(0, 50)]],
//! #     messages: vec![],
//! # };
//! let xml = configuration_to_xml(&config);
//! let back = configuration_from_xml(&xml)?;
//! assert_eq!(back, config);
//! # Ok::<(), swa_xmlio::XmlError>(())
//! ```

#![warn(missing_docs)]
#![allow(clippy::module_name_repetitions)]

pub mod config_io;
pub mod error;
pub mod trace_io;
pub mod xml;

pub use config_io::{
    configuration_from_xml, configuration_to_xml, configuration_with_topology_from_xml,
    configuration_with_topology_to_xml,
};
pub use error::XmlError;
pub use trace_io::{trace_from_xml, trace_to_xml};
pub use xml::{parse, Element};
