//! System-trace serialization: the trace handed back to the scheduling
//! tool in the paper's Sect. 4 integration loop.

use swa_core::{SysEvent, SysEventKind, SystemTrace};
use swa_ima::{PartitionId, TaskRef};

use crate::error::XmlError;
use crate::xml::{parse, Element};

/// Serializes a system trace to XML.
#[must_use]
pub fn trace_to_xml(trace: &SystemTrace) -> String {
    Element::new("trace")
        .children(trace.events.iter().map(|e| {
            Element::new("event")
                .attr("type", e.kind)
                .attr("partition", e.task.partition.raw())
                .attr("task", e.task.task)
                .attr("job", e.job)
                .attr("time", e.time)
        }))
        .to_xml()
}

/// Parses a system trace from XML.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed XML or schema mismatches.
pub fn trace_from_xml(xml: &str) -> Result<SystemTrace, XmlError> {
    let root = parse(xml)?;
    if root.name != "trace" {
        return Err(XmlError::schema(
            &root.name,
            "expected root element <trace>",
        ));
    }
    let mut events = Vec::new();
    for e in root.find_all("event") {
        let kind = match e.require_attribute("type")? {
            "EX" => SysEventKind::Ex,
            "PR" => SysEventKind::Pr,
            "FIN" => SysEventKind::Fin,
            other => {
                return Err(XmlError::schema(
                    "event",
                    format!("unknown event type {other:?}"),
                ))
            }
        };
        let partition = u32::try_from(e.require_i64("partition")?)
            .map_err(|_| XmlError::schema("event", "partition out of range"))?;
        let task = u32::try_from(e.require_i64("task")?)
            .map_err(|_| XmlError::schema("event", "task out of range"))?;
        let job = u32::try_from(e.require_i64("job")?)
            .map_err(|_| XmlError::schema("event", "job out of range"))?;
        events.push(SysEvent {
            kind,
            task: TaskRef::new(PartitionId::from_raw(partition), task),
            job,
            time: e.require_i64("time")?,
        });
    }
    Ok(SystemTrace { events })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SystemTrace {
        let t = TaskRef::new(PartitionId::from_raw(1), 2);
        SystemTrace {
            events: vec![
                SysEvent {
                    kind: SysEventKind::Ex,
                    task: t,
                    job: 0,
                    time: 5,
                },
                SysEvent {
                    kind: SysEventKind::Pr,
                    task: t,
                    job: 0,
                    time: 8,
                },
                SysEvent {
                    kind: SysEventKind::Ex,
                    task: t,
                    job: 0,
                    time: 12,
                },
                SysEvent {
                    kind: SysEventKind::Fin,
                    task: t,
                    job: 0,
                    time: 15,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let original = sample();
        let xml = trace_to_xml(&original);
        let parsed = trace_from_xml(&xml).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn unknown_event_type_is_reported() {
        let xml = r#"<trace><event type="NOPE" partition="0" task="0" job="0" time="0"/></trace>"#;
        let err = trace_from_xml(xml).unwrap_err();
        assert!(err.to_string().contains("unknown event type"));
    }

    #[test]
    fn wrong_root_is_reported() {
        assert!(trace_from_xml("<nottrace/>").is_err());
    }
}
