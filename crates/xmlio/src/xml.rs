//! A small XML subset: document tree, recursive-descent parser and writer.
//!
//! Supported: the XML prolog, elements, attributes, text content, comments
//! and the five predefined entities. Not supported (and not needed for
//! configuration files): namespaces, DOCTYPE, CDATA, processing
//! instructions other than the prolog.

use std::fmt::Write as _;

use crate::error::XmlError;

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated text content directly inside this element (trimmed).
    pub text: String,
}

impl Element {
    /// Creates an element with a tag name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds an attribute (builder style).
    #[must_use]
    pub fn attr(mut self, name: impl Into<String>, value: impl ToString) -> Self {
        self.attributes.push((name.into(), value.to_string()));
        self
    }

    /// Adds a child element (builder style).
    #[must_use]
    pub fn child(mut self, child: Element) -> Self {
        self.children.push(child);
        self
    }

    /// Adds several children (builder style).
    #[must_use]
    pub fn children(mut self, children: impl IntoIterator<Item = Element>) -> Self {
        self.children.extend(children);
        self
    }

    /// Looks up an attribute value.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks up a required attribute.
    ///
    /// # Errors
    ///
    /// Returns a schema error naming the element when absent.
    pub fn require_attribute(&self, name: &str) -> Result<&str, XmlError> {
        self.attribute(name)
            .ok_or_else(|| XmlError::schema(&self.name, format!("missing attribute {name:?}")))
    }

    /// Parses a required integer attribute.
    ///
    /// # Errors
    ///
    /// Returns a schema error when absent or non-numeric.
    pub fn require_i64(&self, name: &str) -> Result<i64, XmlError> {
        let raw = self.require_attribute(name)?;
        raw.parse().map_err(|_| {
            XmlError::schema(
                &self.name,
                format!("attribute {name:?} is not an integer: {raw:?}"),
            )
        })
    }

    /// Child elements with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The first child element with the given tag name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// The first child with the given tag name, as a schema requirement.
    ///
    /// # Errors
    ///
    /// Returns a schema error when absent.
    pub fn require(&self, name: &str) -> Result<&Element, XmlError> {
        self.find(name)
            .ok_or_else(|| XmlError::schema(&self.name, format!("missing child <{name}>")))
    }

    /// Serializes the element (with an XML prolog) to a string.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.write_into(&mut out, 0);
        out
    }

    fn write_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "<{}", self.name);
        for (n, v) in &self.attributes {
            let _ = write!(out, " {n}=\"{}\"", escape(v));
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str("/>\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for c in &self.children {
                c.write_into(out, depth + 1);
            }
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
        let _ = writeln!(out, "</{}>", self.name);
    }
}

/// Escapes the five predefined XML entities.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Parses an XML document into its root element.
///
/// # Errors
///
/// Returns [`XmlError::Parse`] with a line/column position on malformed
/// input.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog_and_misc()?;
    let root = p.parse_element()?;
    p.skip_ws_and_comments()?;
    if !p.at_end() {
        return Err(p.error("trailing content after the root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> XmlError {
        XmlError::Parse {
            line: self.line,
            column: self.pos - self.line_start + 1,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.expect("<!--")?;
        while !self.at_end() {
            if self.eat("-->") {
                return Ok(());
            }
            self.bump();
        }
        Err(self.error("unterminated comment"))
    }

    fn skip_prolog_and_misc(&mut self) -> Result<(), XmlError> {
        self.skip_ws();
        if self.starts_with("<?xml") {
            while !self.at_end() {
                if self.eat("?>") {
                    break;
                }
                self.bump();
            }
        }
        self.skip_ws_and_comments()
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        // Called after '&' was consumed.
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b';' {
                let name = &self.input[start..self.pos];
                self.bump();
                return match name {
                    b"lt" => Ok('<'),
                    b"gt" => Ok('>'),
                    b"amp" => Ok('&'),
                    b"quot" => Ok('"'),
                    b"apos" => Ok('\''),
                    _ => Err(self.error(format!(
                        "unknown entity &{};",
                        String::from_utf8_lossy(name)
                    ))),
                };
            }
            if !c.is_ascii_alphanumeric() && c != b'#' {
                break;
            }
            self.bump();
        }
        Err(self.error("unterminated entity"))
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = self
            .bump()
            .filter(|c| *c == b'"' || *c == b'\'')
            .ok_or_else(|| self.error("expected a quoted attribute value"))?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated attribute value")),
                Some(c) if c == quote => return Ok(out),
                Some(b'&') => out.push(self.parse_entity()?),
                Some(c) => out.push(c as char),
            }
        }
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attributes.push((attr_name, value));
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }

        // Content.
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(format!("unterminated element <{}>", element.name))),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("</") {
                        self.expect("</")?;
                        let close = self.parse_name()?;
                        if close != element.name {
                            return Err(self.error(format!(
                                "mismatched closing tag </{close}> for <{}>",
                                element.name
                            )));
                        }
                        self.skip_ws();
                        self.expect(">")?;
                        element.text = text.trim().to_string();
                        return Ok(element);
                    } else {
                        element.children.push(self.parse_element()?);
                    }
                }
                Some(b'&') => {
                    self.bump();
                    text.push(self.parse_entity()?);
                }
                Some(c) => {
                    text.push(c as char);
                    self.bump();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let e = parse("<root/>").unwrap();
        assert_eq!(e.name, "root");
        assert!(e.children.is_empty());
    }

    #[test]
    fn parses_prolog_attributes_and_nesting() {
        let doc = r#"<?xml version="1.0"?>
<config version="2">
  <!-- a comment -->
  <item name="a" value="1"/>
  <item name="b" value="2">text here</item>
</config>"#;
        let e = parse(doc).unwrap();
        assert_eq!(e.name, "config");
        assert_eq!(e.attribute("version"), Some("2"));
        let items: Vec<_> = e.find_all("item").collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].attribute("name"), Some("a"));
        assert_eq!(items[1].text, "text here");
    }

    #[test]
    fn entities_roundtrip() {
        let original = Element::new("e").attr("v", "a<b&c>\"d'");
        let xml = original.to_xml();
        let parsed = parse(&xml).unwrap();
        assert_eq!(parsed.attribute("v"), Some("a<b&c>\"d'"));
    }

    #[test]
    fn text_entities_parse() {
        let e = parse("<t>&lt;hello &amp; bye&gt;</t>").unwrap();
        assert_eq!(e.text, "<hello & bye>");
    }

    #[test]
    fn reports_position_on_error() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        match err {
            XmlError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched"));
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = parse("<a>&nope;</a>").unwrap_err();
        assert!(err.to_string().contains("unknown entity"));
    }

    #[test]
    fn require_helpers() {
        let e = parse(r#"<a n="5" s="x"><kid/></a>"#).unwrap();
        assert_eq!(e.require_i64("n").unwrap(), 5);
        assert!(e.require_i64("s").is_err());
        assert!(e.require_i64("missing").is_err());
        assert!(e.require("kid").is_ok());
        assert!(e.require("nothing").is_err());
    }

    #[test]
    fn writer_indents_nested_elements() {
        let e = Element::new("a").child(Element::new("b").child(Element::new("c")));
        let xml = e.to_xml();
        assert!(xml.contains("\n  <b>"));
        assert!(xml.contains("\n    <c/>"));
    }
}
