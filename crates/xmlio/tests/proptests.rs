//! Property-based tests: the XML writer and parser are inverse on
//! arbitrary element trees and attribute contents (entity escaping).

// Gated: compiling this suite requires the non-default `proptest-tests`
// feature plus a re-added `proptest` dev-dependency (network access).
#![cfg(feature = "proptest-tests")]
use proptest::prelude::*;
use swa_xmlio::xml::{escape, parse, Element};

/// XML name: starts with a letter, continues with word characters.
fn any_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_.-]{0,8}"
}

/// Attribute values may contain anything printable, including the five
/// escaped characters.
fn any_value() -> impl Strategy<Value = String> {
    "[ -~]{0,20}"
}

fn any_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf = (
        any_name(),
        prop::collection::vec((any_name(), any_value()), 0..4),
        any_value(),
    )
        .prop_map(|(name, attributes, text)| {
            let mut attributes = attributes;
            // XML attribute names must be unique within an element.
            attributes.sort();
            attributes.dedup_by(|a, b| a.0 == b.0);
            Element {
                name,
                attributes,
                children: Vec::new(),
                // Parsed text is whitespace-trimmed; generate pre-trimmed
                // text so equality is exact.
                text: text.trim().to_string(),
            }
        });
    if depth == 0 {
        return leaf.boxed();
    }
    (leaf, prop::collection::vec(any_element(depth - 1), 0..3))
        .prop_map(|(mut e, children)| {
            // Mixed content (text + children) round-trips only if the text
            // is attached before the children; keep it element-only or
            // text-only for exact equality.
            if !children.is_empty() {
                e.text = String::new();
            }
            e.children = children;
            e
        })
        .boxed()
}

proptest! {
    /// `parse(to_xml(e)) == e` for arbitrary trees.
    #[test]
    fn write_then_parse_is_identity(element in any_element(2)) {
        let xml = element.to_xml();
        let parsed = parse(&xml).unwrap_or_else(|err| panic!("{err}\n{xml}"));
        prop_assert_eq!(parsed, element);
    }

    /// Escaping is total and parsing undoes it inside attribute values.
    #[test]
    fn escaping_roundtrips_any_printable_value(value in "[ -~]{0,40}") {
        let e = Element::new("x").attr("v", &value);
        let parsed = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(parsed.attribute("v"), Some(value.as_str()));
    }

    /// `escape` leaves no raw markup characters behind.
    #[test]
    fn escape_removes_markup(value in "[ -~]{0,40}") {
        let escaped = escape(&value);
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('>'));
        prop_assert!(!escaped.contains('"'));
    }
}

proptest! {
    /// The parser never panics, whatever bytes arrive — malformed input is
    /// always a structured `Err`.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC*") {
        let _ = parse(&input);
    }

    /// Same for inputs that look almost like XML.
    #[test]
    fn parser_never_panics_on_xmlish_input(
        junk in "[<>&;/a-z\"'= \\n-]{0,120}",
    ) {
        let _ = parse(&junk);
        let _ = parse(&format!("<a>{junk}</a>"));
        let _ = parse(&format!("<a {junk}/>"));
    }

    /// Configuration loading never panics either.
    #[test]
    fn config_loader_never_panics(junk in "[<>&;/a-zA-Z\"'= \\n-]{0,160}") {
        let _ = swa_xmlio::configuration_from_xml(&junk);
        let _ = swa_xmlio::configuration_with_topology_from_xml(
            &format!("<configuration>{junk}</configuration>"),
        );
    }
}
