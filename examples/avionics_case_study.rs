//! An avionics-style case study: two modules with heterogeneous cores,
//! four partitions under three different schedulers, and a sensor → fusion
//! → actuation data-flow over virtual links — the kind of workload the
//! paper's introduction motivates.
//!
//! Run with: `cargo run --example avionics_case_study`

use swa::ima::{
    Configuration, Core, CoreRef, CoreType, CoreTypeId, Message, Module, ModuleId, Partition,
    PartitionId, SchedulerKind, Task, TaskRef, Window,
};
use swa::mc::verify::check_whole_model_requirements;

fn tref(partition: u32, task: u32) -> TaskRef {
    TaskRef::new(PartitionId::from_raw(partition), task)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast = CoreTypeId::from_raw(0);
    let slow = CoreTypeId::from_raw(1);

    let config = Configuration {
        core_types: vec![CoreType::new("e500-fast"), CoreType::new("e500-slow")],
        modules: vec![
            Module::new(
                "io-module",
                vec![Core::new("io.cpu0", slow), Core::new("io.cpu1", slow)],
            ),
            Module::new("compute-module", vec![Core::new("comp.cpu0", fast)]),
        ],
        partitions: vec![
            // 0: sensor acquisition, FPPS, on the IO module.
            Partition::new(
                "sensors",
                SchedulerKind::Fpps,
                vec![
                    // wcet = [on fast, on slow]
                    Task::new("imu_read", 3, vec![2, 4], 25),
                    Task::new("gps_read", 2, vec![3, 6], 100),
                    Task::new("baro_read", 1, vec![2, 3], 100),
                ],
            ),
            // 1: sensor fusion, EDF, on the compute module.
            Partition::new(
                "fusion",
                SchedulerKind::Edf,
                vec![
                    Task::new("kalman", 1, vec![8, 20], 100).with_deadline(80),
                    Task::new("attitude", 1, vec![3, 8], 25).with_deadline(20),
                ],
            ),
            // 2: actuation, non-preemptive (commands must not be torn).
            Partition::new(
                "actuation",
                SchedulerKind::Fpnps,
                vec![Task::new("surface_cmd", 1, vec![2, 5], 25)],
            ),
            // 3: maintenance logging, low priority, shares the IO module.
            Partition::new(
                "maintenance",
                SchedulerKind::Fpps,
                vec![Task::new("logger", 1, vec![10, 20], 100)],
            ),
        ],
        binding: vec![
            CoreRef::new(ModuleId::from_raw(0), 0), // sensors -> io.cpu0
            CoreRef::new(ModuleId::from_raw(1), 0), // fusion -> comp.cpu0
            CoreRef::new(ModuleId::from_raw(0), 1), // actuation -> io.cpu1
            CoreRef::new(ModuleId::from_raw(0), 0), // maintenance -> io.cpu0 (shared!)
        ],
        windows: vec![
            // sensors and maintenance share io.cpu0 through disjoint
            // windows repeating each 25-tick frame.
            vec![
                Window::new(0, 15),
                Window::new(25, 40),
                Window::new(50, 65),
                Window::new(75, 90),
            ],
            vec![Window::new(0, 100)],
            vec![Window::new(0, 100)],
            vec![
                Window::new(15, 25),
                Window::new(40, 50),
                Window::new(65, 75),
                Window::new(90, 100),
            ],
        ],
        messages: vec![
            // imu -> attitude crosses modules: network delay applies.
            Message::new("vl_imu", tref(0, 0), tref(1, 1), 1, 3),
            // gps -> kalman crosses modules too.
            Message::new("vl_gps", tref(0, 1), tref(1, 0), 1, 5),
            // attitude -> surface command back to the IO module.
            Message::new("vl_cmd", tref(1, 1), tref(2, 0), 1, 3),
        ],
    };

    let report = swa::analyze_configuration(&config)?;
    println!("=== avionics case study ===");
    println!(
        "{} partitions, {} tasks, {} virtual links, {} jobs over L = {}",
        config.partitions.len(),
        config.tasks().count(),
        config.messages.len(),
        report.analysis.jobs.len(),
        report.analysis.hyperperiod
    );
    println!();
    println!("{}", report.analysis.summary());

    // End-to-end latency of the sensing -> actuation chain, per period.
    let chain = swa::core::chain_latency(
        &config,
        &report.analysis,
        &[tref(0, 0), tref(1, 1), tref(2, 0)],
    )?;
    println!("imu -> attitude -> surface command chain:");
    for instance in &chain.instances {
        match instance.latency() {
            Some(latency) => println!(
                "  period {}: released at {}, actuated by {} (latency {latency} ticks)",
                instance.job,
                instance.start_release,
                instance.end_completion.expect("complete instance"),
            ),
            None => println!("  period {}: chain incomplete", instance.job),
        }
    }
    println!(
        "worst-case chain latency: {} ticks",
        chain.worst().expect("complete chain")
    );
    assert!(chain.all_complete());
    println!();

    // The whole-model requirement of the paper's Sect. 3 holds on this
    // trace: receivers start only after sender completion + transfer bound.
    let violations = check_whole_model_requirements(&config, &report.analysis);
    println!(
        "whole-model data-dependency requirement: {}",
        if violations.is_empty() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    for v in &violations {
        println!("  !! {v}");
    }

    assert!(report.schedulable(), "case study should be schedulable");
    assert!(violations.is_empty());
    Ok(())
}
