//! The scheduling-tool integration (the paper's Sect. 4): search for a
//! schedulable configuration using the model as the oracle — candidate
//! checks fan out over the parallel batch engine — exchange the result
//! through the XML interface, and re-verify the winner with the
//! [`Analyzer`].
//!
//! Run with: `cargo run --example config_search`

use swa::prelude::*;

fn main() -> Result<(), Error> {
    // A design problem: hardware and workload fixed, binding and windows
    // open.
    let problem = DesignProblem {
        core_types: vec![CoreType::new("generic")],
        modules: vec![Module::homogeneous("M1", 2, CoreTypeId::from_raw(0))],
        partitions: vec![
            Partition::new(
                "guidance",
                SchedulerKind::Fpps,
                vec![
                    Task::new("nav", 2, vec![8], 50),
                    Task::new("plan", 1, vec![15], 100),
                ],
            ),
            Partition::new(
                "comms",
                SchedulerKind::Edf,
                vec![
                    Task::new("uplink", 1, vec![10], 100).with_deadline(60),
                    Task::new("downlink", 1, vec![5], 50),
                ],
            ),
            Partition::new(
                "payload",
                SchedulerKind::Fpps,
                vec![Task::new("camera", 1, vec![30], 100)],
            ),
        ],
        messages: vec![],
    };

    // `parallelism: 0` spreads each round's speculative candidates over all
    // available cores; the found configuration is identical at any
    // parallelism.
    let options = SearchOptions {
        parallelism: 0,
        ..SearchOptions::default()
    };
    let outcome = search(&problem, &options)?;
    println!(
        "search finished after {} iteration(s):",
        outcome.iterations.len()
    );
    for it in &outcome.iterations {
        println!(
            "  #{}: schedulable={} missed_jobs={} check_time={:?}",
            it.index, it.schedulable, it.missed_jobs, it.check_time
        );
    }

    let config = match outcome.configuration {
        Some(c) => c,
        None => {
            eprintln!("no schedulable configuration found");
            std::process::exit(1);
        }
    };

    println!();
    println!("binding found:");
    for (pi, core) in config.binding.iter().enumerate() {
        println!(
            "  {} -> {core} with windows {:?}",
            config.partitions[pi].name,
            config.windows[pi]
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
        );
    }

    // Round-trip through the XML interface (what the paper's toolchain
    // exchanges between the scheduling tool and the model).
    let xml = configuration_to_xml(&config);
    let restored = configuration_from_xml(&xml)?;
    assert_eq!(restored, config);
    println!();
    println!(
        "configuration XML ({} bytes) round-trips losslessly:",
        xml.len()
    );
    for line in xml.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");

    // Final sanity: the found configuration really is schedulable.
    let report = Analyzer::new(&config).run()?;
    assert_eq!(report.verdict(), Verdict::Schedulable);
    println!();
    println!("re-verified verdict = {}", report.verdict());
    Ok(())
}
