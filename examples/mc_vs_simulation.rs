//! Model checking vs single-run simulation on the same NSA instance — a
//! miniature of the paper's Table 1. Both engines answer the same question
//! ("is the configuration schedulable?"); the model checker explores every
//! interleaving while the simulator exploits the determinism theorem and
//! runs once.
//!
//! Run with: `cargo run --release --example mc_vs_simulation`

use std::time::Instant;

use swa::core::SystemModel;
use swa::mc::check_schedulable_mc;
use swa::workload::table1_config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("jobs | MC time      | MC states | sim time     | agree");
    println!("-----+--------------+-----------+--------------+------");
    for jobs in [4usize, 6, 8, 10] {
        let config = table1_config(jobs);
        let model = SystemModel::build(&config)?;

        let t0 = Instant::now();
        let mc = check_schedulable_mc(&model)?;
        let mc_time = t0.elapsed();

        let t1 = Instant::now();
        let report = swa::analyze_configuration(&config)?;
        let sim_time = t1.elapsed();

        println!(
            "{jobs:4} | {mc_time:>12?} | {:>9} | {sim_time:>12?} | {}",
            mc.states,
            mc.schedulable == report.schedulable()
        );
        assert_eq!(mc.schedulable, report.schedulable());
    }
    println!();
    println!(
        "the model checker's cost grows exponentially with the number of \
         simultaneous jobs;\nthe simulator's one deterministic run stays \
         effectively constant — the paper's headline result."
    );
    Ok(())
}
