//! Observer-based component verification (the paper's Sect. 3 / Fig. 2):
//! build the observers for a model, check "bad location unreachable" by
//! runtime monitoring and by exhaustive model checking, and export the
//! Fig. 2 observer as Graphviz DOT.
//!
//! Run with: `cargo run --example observer_verification`

use swa::core::SystemModel;
use swa::ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, SchedulerKind, Task,
    Window,
};
use swa::mc::observers::{all_observers, fig2_dot};
use swa::mc::verify::{verify_by_model_checking, verify_by_simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Configuration {
        core_types: vec![CoreType::new("generic")],
        modules: vec![Module::homogeneous("M1", 1, CoreTypeId::from_raw(0))],
        partitions: vec![Partition::new(
            "P1",
            SchedulerKind::Fpps,
            vec![
                Task::new("high", 3, vec![2], 10),
                Task::new("mid", 2, vec![3], 20),
                Task::new("low", 1, vec![4], 40),
            ],
        )],
        binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
        windows: vec![vec![Window::new(0, 40)]],
        messages: vec![],
    };
    let model = SystemModel::build(&config)?;

    // The observers derived from the ARINC 653 requirements.
    let observers = all_observers(&model, &config);
    println!("observers for this model:");
    for o in &observers {
        println!("  - {}", o.name);
    }
    println!();

    // The paper's Fig. 2 observer, rendered as DOT (pipe into `dot -Tpng`).
    println!("Fig. 2 observer as Graphviz DOT:");
    println!("{}", fig2_dot(&model, 0));

    // 1. Runtime monitoring of the deterministic run.
    let sim = verify_by_simulation(&model, &config)?;
    println!(
        "runtime monitoring: {} ({} observers)",
        if sim.ok() {
            "no violations"
        } else {
            "VIOLATIONS"
        },
        sim.observers
    );

    // 2. Exhaustive product exploration: every interleaving, observers
    //    attached; bad locations must be unreachable.
    let mc = verify_by_model_checking(&model, &config, 10_000_000)?;
    println!(
        "model checking:     {} ({} product states explored)",
        if mc.ok() {
            "bad locations unreachable"
        } else {
            "VIOLATIONS"
        },
        mc.states
    );
    for v in sim.violations.iter().chain(&mc.violations) {
        println!("  !! {v}");
    }

    assert!(sim.ok() && mc.ok());
    Ok(())
}
