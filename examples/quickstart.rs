//! Quickstart: build a small IMA configuration, run the stopwatch-automata
//! model through the [`Analyzer`], and read the schedulability verdict.
//!
//! Run with: `cargo run --example quickstart`

use swa::prelude::*;

fn main() -> Result<(), Error> {
    // One module with one generic core.
    let config = Configuration {
        core_types: vec![CoreType::new("generic")],
        modules: vec![Module::homogeneous("M1", 1, CoreTypeId::from_raw(0))],
        // One partition, fixed-priority preemptive scheduling, two tasks.
        partitions: vec![Partition::new(
            "flight_control",
            SchedulerKind::Fpps,
            vec![
                Task::new(
                    "control_law",
                    /* priority */ 2,
                    /* wcet */ vec![3],
                    /* period */ 25,
                ),
                Task::new("telemetry", 1, vec![24], 50),
            ],
        )],
        // The partition owns the whole core.
        binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
        windows: vec![vec![Window::new(0, 50)]],
        messages: vec![],
    };

    // Configuration -> NSA instance -> trace -> analysis, in one call.
    let report = Analyzer::new(&config).run()?;

    println!("hyperperiod: {}", report.analysis.hyperperiod);
    println!("verdict: {}", report.verdict());
    println!();
    println!("system operation trace (EX = execute, PR = preempt, FIN = finish):");
    print!("{}", report.trace.render());
    println!();
    println!("{}", report.analysis.summary());

    // The control law runs the moment it is released; telemetry fills the
    // gaps and is preempted at t = 25 when the control law's second job
    // arrives, resuming (its execution stopwatch intact) at t = 28.
    assert_eq!(report.verdict(), Verdict::Schedulable);
    let telemetry_stats = &report.analysis.task_stats[1];
    assert_eq!(telemetry_stats.preemptions, 1);

    Ok(())
}
