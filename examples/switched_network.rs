//! The switched-network extension (the paper's future work): a virtual
//! link routed over two switches, modeled hop by hop, with the end-to-end
//! behavior compared against the single-jump link of the base model.
//!
//! Run with: `cargo run --example switched_network`

use swa::core::{analyze, extract_system_trace, render_gantt, SystemModel};
use swa::ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Message, MessageId, Module, ModuleId, Partition,
    PartitionId, SchedulerKind, Switch, Task, TaskRef, Topology, Window,
};

fn tr(p: u32, t: u32) -> TaskRef {
    TaskRef::new(PartitionId::from_raw(p), t)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sensor module -> two switches -> actuator module.
    let config = Configuration {
        core_types: vec![CoreType::new("generic")],
        modules: vec![
            Module::homogeneous("sensor-module", 1, CoreTypeId::from_raw(0)),
            Module::homogeneous("actuator-module", 1, CoreTypeId::from_raw(0)),
        ],
        partitions: vec![
            Partition::new(
                "sensing",
                SchedulerKind::Fpps,
                vec![Task::new("sample", 1, vec![8], 100)],
            ),
            Partition::new(
                "actuation",
                SchedulerKind::Fpps,
                vec![Task::new("drive", 1, vec![6], 100)],
            ),
        ],
        binding: vec![
            CoreRef::new(ModuleId::from_raw(0), 0),
            CoreRef::new(ModuleId::from_raw(1), 0),
        ],
        windows: vec![vec![Window::new(0, 100)], vec![Window::new(0, 100)]],
        // Wire transmission bound 4 ticks.
        messages: vec![Message::new("vl_cmd", tr(0, 0), tr(1, 0), 1, 4)],
    };

    // The AFDX-like fabric: two switches with store-and-forward latencies.
    let topology = Topology::new(vec![Switch::new("SW-A", 3), Switch::new("SW-B", 5)])
        .with_route(MessageId::from_raw(0), vec![0, 1]);

    let model = SystemModel::build_with_topology(&config, Some(&topology))?;
    println!(
        "message route: sender -> SW-A (3) -> SW-B (5) -> wire (4) = {} ticks end-to-end",
        model.map().link_delays[0]
    );
    println!(
        "hop automata: {:?}",
        model.map().link_chain_automata[0]
            .iter()
            .map(|&a| model.network().automaton(a).name.clone())
            .collect::<Vec<_>>()
    );

    let outcome = model.simulate()?;
    let trace = extract_system_trace(&model, &config, &outcome.trace);
    let analysis = analyze(&config, &trace);
    println!();
    println!("{}", analysis.summary());
    println!("{}", render_gantt(&config, &analysis, 100));

    // The consumer starts exactly at sender completion (8) + end-to-end
    // delay (12): t = 20.
    let drive = analysis.jobs.iter().find(|j| j.task == tr(1, 0)).unwrap();
    println!(
        "drive starts at t = {} (sender completed at 8, +12 network)",
        drive.intervals[0].0
    );
    assert_eq!(drive.intervals[0].0, 20);
    assert!(analysis.schedulable);
    Ok(())
}
