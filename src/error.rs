//! The one error type user code needs.
//!
//! Each crate in the workspace keeps its own precise error enum
//! ([`swa_ima::ConfigError`], [`swa_core::PipelineError`],
//! [`swa_xmlio::XmlError`], …); this module wraps them so a program using
//! the facade can `?` any of them into a single [`enum@Error`]. Nothing is
//! deprecated — the per-crate types remain the right choice inside the
//! crates themselves.

use std::fmt;

/// Any error the `swa` toolchain can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration failed structural validation.
    Config(swa_ima::ConfigError),
    /// The analysis pipeline failed (model construction or
    /// interpretation).
    Pipeline(swa_core::PipelineError),
    /// The XML interface failed to parse or validate a document.
    Xml(swa_xmlio::XmlError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::Pipeline(e) => e.fmt(f),
            Self::Xml(e) => write!(f, "xml interface: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::Pipeline(e) => Some(e),
            Self::Xml(e) => Some(e),
        }
    }
}

impl From<swa_ima::ConfigError> for Error {
    fn from(e: swa_ima::ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<swa_core::PipelineError> for Error {
    fn from(e: swa_core::PipelineError) -> Self {
        Self::Pipeline(e)
    }
}

impl From<swa_core::ModelError> for Error {
    fn from(e: swa_core::ModelError) -> Self {
        Self::Pipeline(swa_core::PipelineError::Model(e))
    }
}

impl From<swa_xmlio::XmlError> for Error {
    fn from(e: swa_xmlio::XmlError) -> Self {
        Self::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_compose_with_question_mark() {
        fn config() -> Result<(), Error> {
            Err(swa_ima::ConfigError::NoModules)?
        }
        fn pipeline() -> Result<(), Error> {
            Err(swa_core::PipelineError::Model(
                swa_core::ModelError::InvalidConfig(vec![]),
            ))?
        }
        fn xml() -> Result<(), Error> {
            swa_xmlio::configuration_from_xml("<not-a-configuration/>")?;
            Ok(())
        }
        assert!(matches!(config(), Err(Error::Config(_))));
        assert!(matches!(pipeline(), Err(Error::Pipeline(_))));
        assert!(matches!(xml(), Err(Error::Xml(_))));
    }

    #[test]
    fn display_and_source_are_informative() {
        let e = Error::from(swa_ima::ConfigError::NoModules);
        assert!(e.to_string().contains("invalid configuration"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
