//! # swa — stopwatch-automata schedulability analysis for modular computer
//! systems
//!
//! A Rust implementation of the approach of *“Stopwatch Automata-Based
//! Model for Efficient Schedulability Analysis of Modular Computer
//! Systems”* (Glonina & Bahmurov): Integrated Modular Avionics (IMA)
//! system operation is modeled as a network of stopwatch automata (NSA);
//! because the model is deterministic under the worst-case assumptions,
//! a *single* simulated run yields the system operation trace and the
//! schedulability verdict — orders of magnitude faster than model checking
//! all interleavings.
//!
//! ## Quickstart
//!
//! [`prelude`] imports everything the common workflow needs; [`Analyzer`]
//! is the entry point for running the analysis:
//!
//! ```
//! use swa::prelude::*;
//!
//! let config = Configuration {
//!     core_types: vec![CoreType::new("generic")],
//!     modules: vec![Module::homogeneous("M1", 1, CoreTypeId::from_raw(0))],
//!     partitions: vec![Partition::new(
//!         "P1",
//!         SchedulerKind::Fpps,
//!         vec![Task::new("t", 1, vec![10], 50)],
//!     )],
//!     binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
//!     windows: vec![vec![Window::new(0, 50)]],
//!     messages: vec![],
//! };
//!
//! let report = Analyzer::new(&config).run()?;
//! assert_eq!(report.verdict(), Verdict::Schedulable);
//! # Ok::<(), swa::Error>(())
//! ```
//!
//! To evaluate a *family* of candidate configurations in parallel —
//! stopping as soon as the first (lowest-index) schedulable one is known —
//! use the batch engine behind the same builder:
//!
//! ```
//! use swa::prelude::*;
//! # use swa::workload::{industrial_config, IndustrialSpec};
//! # let candidates: Vec<Configuration> = (0..4)
//! #     .map(|i| industrial_config(&IndustrialSpec {
//! #         core_utilization: 0.9 - 0.1 * f64::from(i),
//! #         ..IndustrialSpec::default()
//! #     }))
//! #     .collect();
//!
//! let outcome = Analyzer::configure()
//!     .parallelism(0) // 0 = one worker per available core
//!     .first_schedulable(&candidates)?;
//! if let Some(report) = outcome.winner_report() {
//!     println!(
//!         "candidate {} is schedulable ({:.0} checks/s)",
//!         outcome.winner.unwrap(),
//!         outcome.metrics.checks_per_sec()
//!     );
//!     assert!(report.schedulable());
//! }
//! # Ok::<(), swa::Error>(())
//! ```
//!
//! The verdict is deterministic: the winner is always the lowest-index
//! schedulable candidate, identical to a sequential scan, at any
//! parallelism.
//!
//! ## Crates
//!
//! This facade re-exports the project's crates for direct access:
//!
//! * [`nsa`] — the NSA formalism and the deterministic simulator;
//! * [`ima`] — the IMA configuration domain (`⟨HW, WL, Bind, Sched⟩`);
//! * [`core`] — the concrete automata (task, FPPS/FPNPS/EDF schedulers,
//!   core scheduler, virtual link), Algorithm 1 instance construction,
//!   trace translation, the schedulability criterion, and the
//!   [`Analyzer`]/batch engine;
//! * [`mc`] — the explicit-state model checker (the paper's baseline) and
//!   observer-based verification (Fig. 2);
//! * [`xmlio`] — the XML configuration/trace interface of Sect. 4;
//! * [`workload`] — synthetic configuration generators for the
//!   experiments (with the in-repo seeded PRNG [`workload::rng`]);
//! * [`schedtool`] — the configuration-search integration of Sect. 4,
//!   running on the batch engine;
//! * [`rta`] — classical response-time analysis for cross-validation;
//! * [`serve`] — a long-running analysis server (`swa serve`) with a
//!   content-addressed verdict cache shared with the search loop;
//! * [`sweep`] — parametric sensitivity and breakdown analysis (`swa
//!   sweep`): how far a configuration's WCETs/periods/offsets can scale
//!   before schedulability breaks, with certified bracketing bounds.
//!
//! Errors from any layer convert into the unified [`enum@Error`] via `?`.

#![warn(missing_docs)]

pub mod prelude;

mod error;
pub use error::Error;

pub use swa_core as core;
pub use swa_ima as ima;
pub use swa_mc as mc;
pub use swa_nsa as nsa;
pub use swa_rta as rta;
pub use swa_schedtool as schedtool;
pub use swa_serve as serve;
pub use swa_sweep as sweep;
pub use swa_workload as workload;
pub use swa_xmlio as xmlio;

pub use swa_core::{Analysis, AnalysisReport, Analyzer, SystemModel, Verdict, VerdictDiagnosis};

// Compatibility re-exports for pre-`Analyzer` call sites; new code should
// use `Analyzer::new(&config).run()` / `Analyzer::configure()`.
pub use swa_core::{analyze_configuration, analyze_configuration_with};
