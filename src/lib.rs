//! # swa — stopwatch-automata schedulability analysis for modular computer
//! systems
//!
//! A Rust implementation of the approach of *“Stopwatch Automata-Based
//! Model for Efficient Schedulability Analysis of Modular Computer
//! Systems”* (Glonina & Bahmurov): Integrated Modular Avionics (IMA)
//! system operation is modeled as a network of stopwatch automata (NSA);
//! because the model is deterministic under the worst-case assumptions,
//! a *single* simulated run yields the system operation trace and the
//! schedulability verdict — orders of magnitude faster than model checking
//! all interleavings.
//!
//! This facade re-exports the project's crates:
//!
//! * [`nsa`] — the NSA formalism and the deterministic simulator;
//! * [`ima`] — the IMA configuration domain (`⟨HW, WL, Bind, Sched⟩`);
//! * [`core`] — the concrete automata (task, FPPS/FPNPS/EDF schedulers,
//!   core scheduler, virtual link), Algorithm 1 instance construction,
//!   trace translation and the schedulability criterion;
//! * [`mc`] — the explicit-state model checker (the paper's baseline) and
//!   observer-based verification (Fig. 2);
//! * [`xmlio`] — the XML configuration/trace interface of Sect. 4;
//! * [`workload`] — synthetic configuration generators for the
//!   experiments;
//! * [`schedtool`] — the configuration-search integration of Sect. 4.
//!
//! ## Quickstart
//!
//! ```
//! use swa::ima::{
//!     Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition,
//!     SchedulerKind, Task, Window,
//! };
//!
//! let config = Configuration {
//!     core_types: vec![CoreType::new("generic")],
//!     modules: vec![Module::homogeneous("M1", 1, CoreTypeId::from_raw(0))],
//!     partitions: vec![Partition::new(
//!         "P1",
//!         SchedulerKind::Fpps,
//!         vec![Task::new("t", 1, vec![10], 50)],
//!     )],
//!     binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
//!     windows: vec![vec![Window::new(0, 50)]],
//!     messages: vec![],
//! };
//!
//! let report = swa::analyze_configuration(&config)?;
//! assert!(report.schedulable());
//! # Ok::<(), swa::core::PipelineError>(())
//! ```

#![warn(missing_docs)]

pub use swa_core as core;
pub use swa_ima as ima;
pub use swa_mc as mc;
pub use swa_nsa as nsa;
pub use swa_rta as rta;
pub use swa_schedtool as schedtool;
pub use swa_workload as workload;
pub use swa_xmlio as xmlio;

pub use swa_core::{
    analyze_configuration, analyze_configuration_with, Analysis, AnalysisReport, SystemModel,
};
