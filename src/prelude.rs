//! One-stop imports for the common workflow.
//!
//! ```
//! use swa::prelude::*;
//! ```
//!
//! brings in everything needed to describe a configuration, run the
//! analyzer (single or batch), inspect the verdict, search for a
//! schedulable configuration and exchange XML documents — without knowing
//! which workspace crate each type lives in. Programs with narrower needs
//! can keep importing from the per-crate facades ([`crate::core`],
//! [`crate::ima`], …) instead; the prelude is a convenience, not a
//! boundary.

pub use crate::Error;

// Describing a system: the IMA configuration domain ⟨HW, WL, Bind, Sched⟩.
pub use swa_ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Message, MessageId, Module, ModuleId, Partition,
    PartitionId, SchedulerKind, Switch, Task, TaskRef, Topology, Window,
};

// Running the analysis: the builder entry point and its results.
pub use swa_core::{
    Analysis, AnalysisReport, Analyzer, BatchMetrics, BatchMode, BatchOptions, BatchOutcome,
    CandidateResult, RunMetrics, Verdict, VerdictDiagnosis,
};

// The simulator knob exposed through `Analyzer::tie_break`.
pub use swa_nsa::TieBreak;

// Searching for a schedulable configuration (Sect. 4 integration).
pub use swa_schedtool::{search, DesignProblem, SearchOptions, SearchOutcome};

// Sensitivity sweeps and breakdown analysis. (The sweep's own
// `SearchOptions` lives at `swa::sweep::SearchOptions`, inside
// `SweepOptions::search` — the name here stays the schedtool one.)
pub use swa_sweep::{run_sweep, Axis, BreakdownOutcome, BreakdownResult, SweepEngine, SweepOptions, SweepReport};

// The XML interface (Sect. 4).
pub use swa_xmlio::{
    configuration_from_xml, configuration_to_xml, trace_from_xml, trace_to_xml,
};
