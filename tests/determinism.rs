//! Property-level check of the paper's determinism theorem across the
//! crates: for randomly generated configurations and random interleaving
//! orders, every interpretation yields the same schedulability analysis.

use proptest::prelude::*;
use swa::analyze_configuration_with;
use swa::nsa::TieBreak;
use swa::workload::{industrial_config, IndustrialSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_order_yields_the_same_analysis(
        seed in 0u64..1000,
        perm_seed in 0u64..1000,
        message_fraction in 0.0f64..0.5,
    ) {
        let config = industrial_config(&IndustrialSpec {
            modules: 1,
            cores_per_module: 2,
            partitions_per_core: 2,
            tasks_per_partition: 3,
            message_fraction,
            seed,
            ..IndustrialSpec::default()
        });
        let canonical = analyze_configuration_with(&config, TieBreak::Canonical).unwrap();
        let reversed = analyze_configuration_with(&config, TieBreak::Reversed).unwrap();
        prop_assert_eq!(
            canonical.analysis.signature(),
            reversed.analysis.signature()
        );

        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let model = swa::SystemModel::build(&config).unwrap();
        let n = model.network().automata().len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<u32> = (0..u32::try_from(n).unwrap()).collect();
        perm.shuffle(&mut rng);
        let permuted = analyze_configuration_with(&config, TieBreak::Permuted(perm)).unwrap();
        prop_assert_eq!(
            canonical.analysis.signature(),
            permuted.analysis.signature()
        );
    }
}
