//! Check of the paper's determinism theorem across the crates: for
//! generated configurations and varied interleaving orders, every
//! interpretation yields the same schedulability analysis.
//!
//! This is the seeded-loop variant of the property (the proptest-powered
//! suites live behind the non-default `proptest-tests` feature); the seeds
//! are fixed so the tier-1 gate is fully deterministic and offline.

use swa::analyze_configuration_with;
use swa::nsa::TieBreak;
use swa::workload::rng::Rng64;
use swa::workload::{industrial_config, IndustrialSpec};

#[test]
fn any_order_yields_the_same_analysis() {
    for (seed, perm_seed, message_fraction) in [
        (0u64, 17u64, 0.0f64),
        (1, 23, 0.2),
        (2, 31, 0.35),
        (3, 47, 0.5),
        (995, 101, 0.1),
        (996, 103, 0.45),
    ] {
        let config = industrial_config(&IndustrialSpec {
            modules: 1,
            cores_per_module: 2,
            partitions_per_core: 2,
            tasks_per_partition: 3,
            message_fraction,
            seed,
            ..IndustrialSpec::default()
        });
        let canonical = analyze_configuration_with(&config, TieBreak::Canonical).unwrap();
        let reversed = analyze_configuration_with(&config, TieBreak::Reversed).unwrap();
        assert_eq!(
            canonical.analysis.signature(),
            reversed.analysis.signature(),
            "seed {seed}: reversed order changed the analysis"
        );

        let model = swa::SystemModel::build(&config).unwrap();
        let n = model.network().automata().len();
        let mut rng = Rng64::seed_from_u64(perm_seed);
        let mut perm: Vec<u32> = (0..u32::try_from(n).unwrap()).collect();
        rng.shuffle(&mut perm);
        let permuted = analyze_configuration_with(&config, TieBreak::Permuted(perm)).unwrap();
        assert_eq!(
            canonical.analysis.signature(),
            permuted.analysis.signature(),
            "seed {seed}/{perm_seed}: permuted order changed the analysis"
        );
    }
}
