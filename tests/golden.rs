//! Golden-trace regression corpus.
//!
//! Each fixture in `tests/fixtures/` pins one scheduling behavior the
//! paper's model distinguishes — FPPS preemption, FPNPS blocking (with a
//! deadline miss it causes), EDF deadline ordering, and virtual-link
//! delivery over both shared memory and the switched network. For each
//! one the corpus stores the configuration (`<name>.xml`), the expected
//! system trace (`<name>.trace.xml`, via [`swa::xmlio`]'s `trace_io`) and
//! the expected verdict (`<name>.verdict.txt`). The error-path fixtures
//! (time lock, Zeno run) are hand-built NSA networks whose expected
//! diagnosis renderings are pinned the same way.
//!
//! A mismatch fails with a line-level diff of the rendered traces, so a
//! semantics change shows *which event moved*, not just "bytes differ".
//! Intentional changes re-bless the corpus with:
//!
//! ```console
//! SWA_UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use swa::ima::{
    Configuration, CoreRef, CoreType, Message, Module, Partition, SchedulerKind, Task, TaskRef,
    Window,
};
use swa::ima::{CoreTypeId, ModuleId, PartitionId};
use swa::nsa::{
    AutomatonBuilder, ClockAtom, CmpOp, DiagnosisKind, Edge, EvalEngine, Guard, Invariant,
    NetworkBuilder, SimError, Simulator,
};
use swa::xmlio::{configuration_from_xml, configuration_to_xml, trace_from_xml, trace_to_xml};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn blessing() -> bool {
    std::env::var_os("SWA_UPDATE_GOLDEN").is_some()
}

/// Compares `actual` against the golden file, blessing it instead when
/// `SWA_UPDATE_GOLDEN` is set. Fails with a line diff on mismatch.
fn assert_golden(name: &str, file: &str, actual: &str) {
    let path = fixture_dir().join(file);
    if blessing() {
        std::fs::create_dir_all(fixture_dir()).expect("create fixture dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); run with SWA_UPDATE_GOLDEN=1 to create it", path.display())
    });
    if expected == actual {
        return;
    }
    panic!("golden mismatch for {name} ({file}):\n{}", line_diff(&expected, actual));
}

/// A minimal unified-style diff: every differing line, with a little
/// context, so the failure names the event that moved.
fn line_diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let n = e.len().max(a.len());
    let mut shown = 0usize;
    for i in 0..n {
        let el = e.get(i).copied();
        let al = a.get(i).copied();
        if el == al {
            continue;
        }
        if shown == 0 {
            if let Some(ctx) = i.checked_sub(1).and_then(|j| e.get(j)) {
                let _ = writeln!(out, "    {ctx}");
            }
        }
        if let Some(l) = el {
            let _ = writeln!(out, "  - {l}");
        }
        if let Some(l) = al {
            let _ = writeln!(out, "  + {l}");
        }
        shown += 1;
        if shown >= 20 {
            let _ = writeln!(out, "  ... ({} expected / {} actual lines total)", e.len(), a.len());
            break;
        }
    }
    if out.is_empty() {
        out.push_str("  (traces differ only in trailing whitespace)");
    }
    out
}

/// The stable verdict rendering stored in `<name>.verdict.txt`.
fn render_verdict(report: &swa::AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schedulable: {}", report.schedulable());
    let _ = writeln!(out, "missed_jobs: {}", report.analysis.missed_jobs().count());
    for j in report.analysis.missed_jobs() {
        let _ = writeln!(
            out,
            "miss: partition={} task={} job={} deadline={}",
            j.task.partition.raw(),
            j.task.task,
            j.job,
            j.abs_deadline
        );
    }
    out
}

/// Runs one config fixture end to end: XML round-trip, analysis, golden
/// trace and golden verdict.
fn check_config_fixture(name: &str, config: &Configuration) {
    config.validate().unwrap_or_else(|e| panic!("{name}: invalid fixture: {e:?}"));
    let xml = configuration_to_xml(config);
    assert_golden(name, &format!("{name}.xml"), &xml);
    // The checked-in XML — not just the in-memory value — must analyze
    // identically: parse it back and run the analysis on the parsed copy.
    let parsed = configuration_from_xml(&xml).expect("fixture XML parses");
    assert_eq!(&parsed, config, "{name}: XML round-trip changed the configuration");

    let report = swa::analyze_configuration(&parsed).expect("fixture analyzes");
    let trace_xml = trace_to_xml(&report.trace);
    assert_golden(name, &format!("{name}.trace.xml"), &trace_xml);
    assert_golden(name, &format!("{name}.verdict.txt"), &render_verdict(&report));

    // The stored golden trace must itself parse back to the same trace.
    if !blessing() {
        let stored = std::fs::read_to_string(fixture_dir().join(format!("{name}.trace.xml")))
            .expect("golden trace exists");
        assert_eq!(
            trace_from_xml(&stored).expect("golden trace parses"),
            report.trace,
            "{name}: golden trace does not round-trip"
        );
    }
}

fn one_core_config(partitions: Vec<Partition>, windows: Vec<Vec<Window>>) -> Configuration {
    let core = CoreRef::new(ModuleId::from_raw(0), 0);
    let binding = vec![core; partitions.len()];
    Configuration {
        core_types: vec![CoreType::new("generic")],
        modules: vec![Module::homogeneous("M0", 1, CoreTypeId::from_raw(0))],
        partitions,
        binding,
        windows,
        messages: Vec::new(),
    }
}

/// FPPS: the high-priority task preempts the low-priority one at its
/// second release, inside a two-partition window schedule.
#[test]
fn golden_fpps_preemption() {
    let config = one_core_config(
        vec![
            Partition::new(
                "P0",
                SchedulerKind::Fpps,
                vec![
                    Task::new("hi", 2, vec![3], 10),
                    Task::new("lo", 1, vec![6], 20),
                ],
            ),
            Partition::new("P1", SchedulerKind::Fpps, vec![Task::new("solo", 1, vec![2], 20)]),
        ],
        vec![
            vec![Window::new(0, 7), Window::new(10, 17)],
            vec![Window::new(7, 10), Window::new(17, 20)],
        ],
    );
    check_config_fixture("fpps", &config);
}

/// FPNPS: the long low-priority job starts first and blocks the
/// high-priority task past its constrained deadline — a miss *caused by
/// non-preemption* (the same workload under FPPS is schedulable).
#[test]
fn golden_fpnps_blocking_miss() {
    let mk = |kind| {
        one_core_config(
            vec![Partition::new(
                "P0",
                kind,
                vec![
                    Task::new("urgent", 2, vec![2], 10).with_deadline(4).with_offset(1),
                    Task::new("bulk", 1, vec![6], 10),
                ],
            )],
            vec![vec![Window::new(0, 10)]],
        )
    };
    check_config_fixture("fpnps", &mk(SchedulerKind::Fpnps));

    // The control experiment is part of the regression: preemption fixes
    // exactly this miss.
    let fpps = swa::analyze_configuration(&mk(SchedulerKind::Fpps)).unwrap();
    assert!(fpps.schedulable(), "the FPPS control must be schedulable");
}

/// EDF: equal periods, distinct deadlines — the earlier-deadline task
/// runs first regardless of declaration order.
#[test]
fn golden_edf_deadline_order() {
    let config = one_core_config(
        vec![Partition::new(
            "P0",
            SchedulerKind::Edf,
            vec![
                Task::new("late", 1, vec![3], 10).with_deadline(9),
                Task::new("soon", 1, vec![2], 10).with_deadline(4),
            ],
        )],
        vec![vec![Window::new(0, 10)]],
    );
    check_config_fixture("edf", &config);
}

/// Virtual links: one message through shared memory (same module), one
/// through the switched network (cross-module), with window placement
/// that only works because the delays are what the model says they are.
#[test]
fn golden_virtual_link_delivery() {
    let m0 = ModuleId::from_raw(0);
    let m1 = ModuleId::from_raw(1);
    let config = Configuration {
        core_types: vec![CoreType::new("generic")],
        modules: vec![
            Module::homogeneous("M0", 1, CoreTypeId::from_raw(0)),
            Module::homogeneous("M1", 1, CoreTypeId::from_raw(0)),
        ],
        partitions: vec![
            Partition::new("sender", SchedulerKind::Fpps, vec![Task::new("s", 1, vec![2], 20)]),
            Partition::new("mem_rx", SchedulerKind::Fpps, vec![Task::new("rm", 1, vec![2], 20)]),
            Partition::new("net_rx", SchedulerKind::Fpps, vec![Task::new("rn", 1, vec![2], 20)]),
        ],
        binding: vec![
            CoreRef::new(m0, 0),
            CoreRef::new(m0, 0),
            CoreRef::new(m1, 0),
        ],
        windows: vec![
            vec![Window::new(0, 4)],
            vec![Window::new(4, 8)],
            vec![Window::new(8, 12)],
        ],
        messages: vec![
            Message::new(
                "vl_mem",
                TaskRef::new(PartitionId::from_raw(0), 0),
                TaskRef::new(PartitionId::from_raw(1), 0),
                1,
                5,
            ),
            Message::new(
                "vl_net",
                TaskRef::new(PartitionId::from_raw(0), 0),
                TaskRef::new(PartitionId::from_raw(2), 0),
                1,
                5,
            ),
        ],
    };
    check_config_fixture("virtual_link", &config);
}

/// Time lock: the invariant forces action by t = 5 but the only edge
/// needs c >= 10. Both engines must produce the pinned diagnosis.
#[test]
fn golden_timelock_diagnosis() {
    let mut nb = NetworkBuilder::new();
    let c = nb.clock("c");
    let mut a = AutomatonBuilder::new("stuck");
    let l0 = a.location_with_invariant("l0", Invariant::upper_bound(c, 5));
    let l1 = a.location("l1");
    a.edge(
        Edge::new(l0, l1)
            .with_guard(Guard::always().and_clock(ClockAtom::new(c, CmpOp::Ge, 10)))
            .with_label("go"),
    );
    nb.automaton(a.finish(l0));
    let network = nb.build().unwrap();

    for engine in [EvalEngine::Ast, EvalEngine::Bytecode] {
        let err = Simulator::new(&network)
            .horizon(100)
            .engine(engine)
            .run_explained()
            .unwrap_err();
        assert!(matches!(err.error, SimError::TimeLock { .. }), "{:?}", err.error);
        let diagnosis = err.diagnosis.expect("diagnosis captured");
        assert_eq!(diagnosis.kind, DiagnosisKind::TimeLock);
        assert_golden("timelock", "timelock.diagnosis.txt", &diagnosis.render());
    }
}

/// Zeno run: an unguarded self-loop fires forever at t = 0. Both engines
/// must produce the pinned diagnosis naming the repeating cycle.
#[test]
fn golden_zeno_diagnosis() {
    let mut nb = NetworkBuilder::new();
    let mut a = AutomatonBuilder::new("spin");
    let l0 = a.location("l0");
    a.edge(Edge::new(l0, l0).with_label("again"));
    nb.automaton(a.finish(l0));
    let network = nb.build().unwrap();

    for engine in [EvalEngine::Ast, EvalEngine::Bytecode] {
        let err = Simulator::new(&network)
            .horizon(10)
            .max_steps_per_instant(64)
            .engine(engine)
            .run_explained()
            .unwrap_err();
        assert!(matches!(err.error, SimError::ZenoViolation { time: 0, .. }), "{:?}", err.error);
        let diagnosis = err.diagnosis.expect("diagnosis captured");
        assert_eq!(diagnosis.kind, DiagnosisKind::Zeno);
        assert_golden("zeno", "zeno.diagnosis.txt", &diagnosis.render());
    }
}

/// The corpus itself is pinned: a fixture file that exists on disk but is
/// no longer produced by any test would rot silently.
#[test]
fn corpus_has_no_stray_fixtures() {
    let expected = [
        "fpps.xml",
        "fpps.trace.xml",
        "fpps.verdict.txt",
        "fpnps.xml",
        "fpnps.trace.xml",
        "fpnps.verdict.txt",
        "edf.xml",
        "edf.trace.xml",
        "edf.verdict.txt",
        "virtual_link.xml",
        "virtual_link.trace.xml",
        "virtual_link.verdict.txt",
        "timelock.diagnosis.txt",
        "zeno.diagnosis.txt",
    ];
    let mut found: Vec<String> = std::fs::read_dir(fixture_dir())
        .expect("fixture dir exists (run with SWA_UPDATE_GOLDEN=1 once)")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    found.sort();
    let mut want: Vec<&str> = expected.to_vec();
    want.sort_unstable();
    assert_eq!(found, want, "fixture corpus drifted");
}
