//! Cross-tier soundness corpus for the verdict ladder (DESIGN.md §4.20).
//!
//! The ladder's analytic tiers are only useful if they never contradict
//! the exact simulation: T0 is a *necessary* test (an Unschedulable
//! verdict must be confirmed by the simulator), T1/T2 are *sufficient*
//! tests (a Schedulable verdict must be confirmed by the simulator).
//! This suite sweeps a seeded corpus of 240 generated workloads across
//! the schedulability spectrum — comfortable, contested, and overloaded
//! utilizations, with and without inter-partition messages, and with
//! some partitions mutated to EDF so the applicability guards are
//! exercised — and checks every ladder decision against the simulator
//! under **both** evaluation engines and **both** whole-system and
//! compositional analysis.
//!
//! A violation panics with the offending configuration serialized as
//! XML so it can be re-blessed as a fixture for regression.

use swa_core::{Analyzer, EvalEngine, LadderMode, NoopRecorder, VerdictLadder};
use swa_ima::{Configuration, SchedulerKind};
use swa_workload::{industrial_config, IndustrialSpec};
use swa_xmlio::configuration_to_xml;

/// Utilization levels spanning clearly-schedulable through clearly
/// overloaded. The contested middle is where the ladder must abstain
/// (forward to simulation) rather than guess.
const UTILIZATIONS: [f64; 4] = [0.30, 0.60, 0.90, 1.20];

/// Seeds per utilization level; 60 × 4 = 240 workloads ≥ the 200-config
/// corpus floor.
const SEEDS_PER_LEVEL: u64 = 60;

/// Builds one corpus entry. Every third seed adds a message workload
/// (receivers make T1's window RTA inapplicable on those partitions);
/// every fifth seed flips the first partition to EDF (exercising the
/// FPPS applicability guard in both sufficient tiers).
fn corpus_config(utilization: f64, seed: u64) -> Configuration {
    let spec = IndustrialSpec {
        modules: 2,
        cores_per_module: 1,
        partitions_per_core: 2,
        tasks_per_partition: 3,
        core_utilization: utilization,
        message_fraction: if seed.is_multiple_of(3) { 0.25 } else { 0.0 },
        seed: seed.wrapping_mul(0x9e37_79b9) ^ utilization.to_bits(),
        ..IndustrialSpec::default()
    };
    let mut config = industrial_config(&spec);
    if seed.is_multiple_of(5) {
        config.partitions[0].scheduler = SchedulerKind::Edf;
    }
    config
}

/// Exact ground truth: the simulator's verdict must be identical across
/// engines and across whole-system vs compositional analysis, so any of
/// the four runs is authoritative — but we check all four, because a
/// ladder bug that only disagrees with one engine is still a bug.
fn simulated_verdicts(config: &Configuration) -> Vec<(String, bool)> {
    let mut verdicts = Vec::with_capacity(4);
    for engine in [EvalEngine::Ast, EvalEngine::Bytecode] {
        for compositional in [false, true] {
            let schedulable = Analyzer::new(config)
                .engine(engine)
                .compositional(compositional)
                .run()
                .expect("corpus config analyzes")
                .schedulable();
            verdicts.push((format!("{engine:?}/compositional={compositional}"), schedulable));
        }
    }
    verdicts
}

#[test]
fn ladder_decisions_are_sound_across_engines_and_composition() {
    let ladder = VerdictLadder::new(LadderMode::Full);
    let recorder = NoopRecorder;

    let mut total = 0usize;
    let mut t0_unschedulable = 0usize;
    let mut sufficient_schedulable = 0usize;
    let mut undecided = 0usize;

    for utilization in UTILIZATIONS {
        for seed in 0..SEEDS_PER_LEVEL {
            let config = corpus_config(utilization, seed);
            total += 1;

            let Some(decision) = ladder.evaluate(&config, &recorder) else {
                undecided += 1;
                continue;
            };

            // A tier produced a verdict: it must be confirmed by every
            // simulator variant. (The engine/composition cross-check is
            // part of the corpus on decided configs for free.)
            let claims_schedulable = decision.verdict.is_schedulable();
            if claims_schedulable {
                sufficient_schedulable += 1;
            } else {
                t0_unschedulable += 1;
            }
            for (variant, simulated) in simulated_verdicts(&config) {
                assert_eq!(
                    simulated,
                    claims_schedulable,
                    "UNSOUND ladder decision at utilization {utilization} seed {seed}: \
                     tier {} says schedulable={claims_schedulable}, simulator ({variant}) \
                     says schedulable={simulated}.\nRe-blessable configuration:\n{}",
                    decision.decided_by,
                    configuration_to_xml(&config),
                );
            }
        }
    }

    assert!(total >= 200, "corpus shrank below 200 configs ({total})");
    // Non-vacuity: both directions of the soundness implication must
    // actually fire on this corpus, and the contested band must exist
    // (otherwise the ladder's abstention path is untested).
    assert!(
        t0_unschedulable >= 10,
        "T0 never fired meaningfully ({t0_unschedulable} of {total}) — \
         the overloaded band is not reaching the necessary tier"
    );
    assert!(
        sufficient_schedulable >= 10,
        "T1/T2 never fired meaningfully ({sufficient_schedulable} of {total}) — \
         the comfortable band is not reaching the sufficient tiers"
    );
    assert!(
        undecided >= 1,
        "every config was decided analytically — the forwarded band is untested"
    );
}

/// The Fast mode (T0 + T1 only) is a strict subset of Full: anything it
/// decides, Full decides identically — Fast must never flip a verdict
/// relative to the deeper ladder.
#[test]
fn fast_mode_is_a_prefix_of_full_mode() {
    let fast = VerdictLadder::new(LadderMode::Fast);
    let full = VerdictLadder::new(LadderMode::Full);
    let recorder = NoopRecorder;

    let mut fast_decided = 0usize;
    for utilization in UTILIZATIONS {
        for seed in 0..SEEDS_PER_LEVEL / 2 {
            let config = corpus_config(utilization, seed);
            if let Some(decision) = fast.evaluate(&config, &recorder) {
                fast_decided += 1;
                let deeper = full.evaluate(&config, &recorder).unwrap_or_else(|| {
                    panic!(
                        "Full ladder abstained where Fast decided (utilization \
                         {utilization} seed {seed}):\n{}",
                        configuration_to_xml(&config)
                    )
                });
                assert_eq!(
                    decision, deeper,
                    "Fast and Full ladders disagree at utilization {utilization} seed \
                     {seed}:\n{}",
                    configuration_to_xml(&config)
                );
            }
        }
    }
    assert!(fast_decided >= 10, "Fast mode decided almost nothing ({fast_decided})");
}
