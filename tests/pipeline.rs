//! Cross-crate integration: the complete toolchain of the paper's Fig. 3 —
//! workload generation, the XML interface, Algorithm 1, simulation, trace
//! analysis, model checking, observer verification and configuration
//! search, all agreeing with each other.

use swa::core::SystemModel;
use swa::mc::check_schedulable_mc;
use swa::mc::verify::{check_whole_model_requirements, verify_by_simulation};
use swa::schedtool::{search, DesignProblem, SearchOptions};
use swa::workload::{industrial_config, table1_config, IndustrialSpec};
use swa::xmlio::{configuration_from_xml, configuration_to_xml, trace_from_xml, trace_to_xml};

#[test]
fn generated_configs_roundtrip_through_xml_and_analyze() {
    for seed in 0..3 {
        let config = industrial_config(&IndustrialSpec {
            tasks_per_partition: 3,
            message_fraction: 0.3,
            seed,
            ..IndustrialSpec::default()
        });
        config.validate().unwrap();

        // XML roundtrip (the Sect. 4 interface).
        let xml = configuration_to_xml(&config);
        let restored = configuration_from_xml(&xml).unwrap();
        assert_eq!(restored, config);

        // The analysis runs and the trace roundtrips too.
        let report = swa::analyze_configuration(&restored).unwrap();
        let trace_xml = trace_to_xml(&report.trace);
        let trace = trace_from_xml(&trace_xml).unwrap();
        assert_eq!(trace, report.trace);

        // Whole-model requirements hold on every generated trace.
        let violations = check_whole_model_requirements(&config, &report.analysis);
        assert!(violations.is_empty(), "seed {seed}: {violations:#?}");
    }
}

#[test]
fn simulation_and_model_checking_agree_on_small_configs() {
    for jobs in [3usize, 5, 7] {
        let config = table1_config(jobs);
        let model = SystemModel::build(&config).unwrap();
        let mc = check_schedulable_mc(&model).unwrap();
        let sim = swa::analyze_configuration(&config).unwrap();
        assert_eq!(
            mc.schedulable,
            sim.schedulable(),
            "engines disagree at {jobs} jobs"
        );
    }
}

#[test]
fn observers_hold_on_generated_configs() {
    for seed in [1, 9] {
        let config = industrial_config(&IndustrialSpec {
            modules: 1,
            cores_per_module: 2,
            partitions_per_core: 2,
            tasks_per_partition: 3,
            message_fraction: 0.25,
            seed,
            ..IndustrialSpec::default()
        });
        let model = SystemModel::build(&config).unwrap();
        let report = verify_by_simulation(&model, &config).unwrap();
        assert!(report.ok(), "seed {seed}: {:#?}", report.violations);
    }
}

#[test]
fn search_produces_verified_configurations() {
    let base = industrial_config(&IndustrialSpec {
        modules: 1,
        cores_per_module: 2,
        partitions_per_core: 2,
        tasks_per_partition: 3,
        core_utilization: 0.4,
        message_fraction: 0.0,
        seed: 5,
        ..IndustrialSpec::default()
    });
    let problem = DesignProblem::from_configuration(&base);
    let outcome = search(&problem, &SearchOptions::default()).unwrap();
    assert!(outcome.found(), "{:#?}", outcome.iterations);
    let config = outcome.configuration.unwrap();
    config.validate().unwrap();
    let report = swa::analyze_configuration(&config).unwrap();
    assert!(report.schedulable());

    // And the found configuration still satisfies the observers.
    let model = SystemModel::build(&config).unwrap();
    let verification = verify_by_simulation(&model, &config).unwrap();
    assert!(verification.ok(), "{:#?}", verification.violations);
}

#[test]
fn facade_reexports_cover_the_pipeline() {
    // Compile-time check that the facade exposes the main entry points.
    let config = table1_config(3);
    let model: swa::SystemModel = swa::SystemModel::build(&config).unwrap();
    let report: swa::AnalysisReport = swa::analyze_configuration(&config).unwrap();
    let _analysis: &swa::Analysis = &report.analysis;
    assert!(model.hyperperiod() > 0);
}

#[test]
fn mc_and_simulation_agree_across_scheduler_features() {
    use swa::ima::{
        Configuration, CoreRef, CoreType, CoreTypeId, Module, ModuleId, Partition, SchedulerKind,
        Task, Window,
    };
    // Small configs exercising RR, EDF, offsets and windows; MC explores
    // all interleavings, simulation runs once — verdicts must agree.
    let cases: Vec<(SchedulerKind, Vec<Task>)> = vec![
        (
            SchedulerKind::RoundRobin { quantum: 2 },
            vec![
                Task::new("a", 0, vec![3], 10),
                Task::new("b", 0, vec![3], 10),
            ],
        ),
        (
            SchedulerKind::Edf,
            vec![
                Task::new("a", 0, vec![3], 10).with_deadline(6),
                Task::new("b", 0, vec![3], 10).with_deadline(9),
            ],
        ),
        (
            SchedulerKind::Fpps,
            vec![
                Task::new("a", 2, vec![3], 10).with_offset(2),
                Task::new("b", 1, vec![4], 10),
            ],
        ),
        // Overloaded: both engines must say unschedulable.
        (
            SchedulerKind::Fpps,
            vec![
                Task::new("a", 2, vec![6], 10),
                Task::new("b", 1, vec![6], 10),
            ],
        ),
    ];
    for (i, (kind, tasks)) in cases.into_iter().enumerate() {
        let config = Configuration {
            core_types: vec![CoreType::new("ct")],
            modules: vec![Module::homogeneous("M", 1, CoreTypeId::from_raw(0))],
            partitions: vec![Partition::new("P", kind, tasks)],
            binding: vec![CoreRef::new(ModuleId::from_raw(0), 0)],
            windows: vec![vec![Window::new(0, 10)]],
            messages: vec![],
        };
        let model = SystemModel::build(&config).unwrap();
        let mc = swa::mc::check_schedulable_mc(&model).unwrap();
        let sim = swa::analyze_configuration(&config).unwrap();
        assert_eq!(
            mc.schedulable,
            sim.schedulable(),
            "case {i} ({kind}): engines disagree"
        );
    }
}
