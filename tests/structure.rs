//! Experiment F1 — validates that Algorithm 1 builds exactly the general
//! NSA structure of the paper's Fig. 1: one T automaton per task, one TS
//! per partition, one CS per used core, one L per message, wired through
//! the interface channels (`exec`/`preempt`/`send`/`receive` per task;
//! `ready`/`finished`/`wakeup`/`sleep` per partition) and shared variables
//! (`is_ready`, `is_failed`, `prio`, `abs_deadline`, `is_data_ready`).

use swa::core::{ChannelRole, SystemModel};
use swa::ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Message, Module, ModuleId, Partition,
    PartitionId, SchedulerKind, Task, TaskRef, Window,
};
use swa::nsa::{ChannelKind, Sync};

fn config() -> Configuration {
    Configuration {
        core_types: vec![CoreType::new("generic")],
        modules: vec![
            Module::homogeneous("M1", 2, CoreTypeId::from_raw(0)),
            Module::homogeneous("M2", 1, CoreTypeId::from_raw(0)),
        ],
        partitions: vec![
            Partition::new(
                "PA",
                SchedulerKind::Fpps,
                vec![
                    Task::new("a1", 2, vec![5], 50),
                    Task::new("a2", 1, vec![5], 100),
                ],
            ),
            Partition::new(
                "PB",
                SchedulerKind::Edf,
                vec![Task::new("b1", 1, vec![5], 50)],
            ),
            Partition::new(
                "PC",
                SchedulerKind::Fpnps,
                vec![Task::new("c1", 1, vec![5], 100)],
            ),
        ],
        binding: vec![
            CoreRef::new(ModuleId::from_raw(0), 0),
            CoreRef::new(ModuleId::from_raw(0), 1),
            CoreRef::new(ModuleId::from_raw(1), 0),
        ],
        windows: vec![
            vec![Window::new(0, 100)],
            vec![Window::new(0, 100)],
            vec![Window::new(0, 100)],
        ],
        messages: vec![Message::new(
            "m",
            TaskRef::new(PartitionId::from_raw(0), 0),
            TaskRef::new(PartitionId::from_raw(1), 0),
            1,
            5,
        )],
    }
}

#[test]
fn one_automaton_per_component() {
    let model = SystemModel::build(&config()).unwrap();
    let map = model.map();
    // 4 tasks + 3 TS + 3 used cores (M1.0, M1.1, M2.0) + 1 link.
    assert_eq!(map.task_automata.len(), 4);
    assert_eq!(map.ts_automata.len(), 3);
    assert_eq!(map.cs_automata.len(), 3);
    assert_eq!(map.link_automata.len(), 1);
    assert_eq!(model.network().automata().len(), 11);
}

#[test]
fn interface_channels_exist_per_component() {
    let model = SystemModel::build(&config()).unwrap();
    let map = model.map();
    let network = model.network();

    // Per task: exec, preempt (binary); send, receive (broadcast).
    assert_eq!(map.exec_ch.len(), 4);
    assert_eq!(map.preempt_ch.len(), 4);
    assert_eq!(map.send_ch.len(), 4);
    assert_eq!(map.receive_ch.len(), 4);
    for g in 0..4 {
        assert_eq!(
            network.channels()[map.exec_ch[g].index()].kind,
            ChannelKind::Binary
        );
        assert_eq!(
            network.channels()[map.preempt_ch[g].index()].kind,
            ChannelKind::Binary
        );
        assert_eq!(
            network.channels()[map.send_ch[g].index()].kind,
            ChannelKind::Broadcast
        );
        assert_eq!(
            network.channels()[map.receive_ch[g].index()].kind,
            ChannelKind::Broadcast
        );
    }

    // Per partition: wakeup, sleep, ready, finished (binary).
    for j in 0..3 {
        for ch in [
            map.ready_ch[j],
            map.finished_ch[j],
            map.wakeup_ch[j],
            map.sleep_ch[j],
        ] {
            assert_eq!(network.channels()[ch.index()].kind, ChannelKind::Binary);
        }
    }
}

#[test]
fn channel_roles_cover_every_interface_channel() {
    let model = SystemModel::build(&config()).unwrap();
    let map = model.map();
    let mut exec = 0;
    let mut preempt = 0;
    let mut ready = 0;
    let mut finished = 0;
    let mut wakeup = 0;
    let mut sleep = 0;
    let mut send = 0;
    let mut receive = 0;
    for role in map.channel_roles.values() {
        match role {
            ChannelRole::Exec(_) => exec += 1,
            ChannelRole::Preempt(_) => preempt += 1,
            ChannelRole::Ready(_) => ready += 1,
            ChannelRole::Finished(_) => finished += 1,
            ChannelRole::Wakeup(_) => wakeup += 1,
            ChannelRole::Sleep(_) => sleep += 1,
            ChannelRole::Send(_) => send += 1,
            ChannelRole::Receive(_) => receive += 1,
        }
    }
    assert_eq!((exec, preempt, send, receive), (4, 4, 4, 4));
    assert_eq!((ready, finished, wakeup, sleep), (3, 3, 3, 3));
}

/// Fig. 1's wiring, checked edge by edge: T receives `exec`/`preempt` and
/// sends `ready`/`finished`/`send`; TS receives `ready`/`finished`/
/// `wakeup`/`sleep` and sends `exec`/`preempt`; CS sends `wakeup`/`sleep`;
/// L receives `send` and sends `receive`.
#[test]
fn automata_use_exactly_their_interface() {
    let model = SystemModel::build(&config()).unwrap();
    let map = model.map();
    let network = model.network();

    for (g, &aid) in map.task_automata.iter().enumerate() {
        let j = map.task_refs[g].partition.index();
        let automaton = network.automaton(aid);
        for e in &automaton.edges {
            match e.sync {
                Sync::Internal => {}
                Sync::Recv(ch) => assert!(
                    ch == map.exec_ch[g] || ch == map.preempt_ch[g] || ch == map.receive_ch[g],
                    "task {g} receives unexpected channel"
                ),
                Sync::Send(ch) => assert!(
                    ch == map.ready_ch[j] || ch == map.finished_ch[j] || ch == map.send_ch[g],
                    "task {g} sends unexpected channel"
                ),
            }
        }
    }

    for (j, &aid) in map.ts_automata.iter().enumerate() {
        let automaton = network.automaton(aid);
        let base = map.partition_base[j];
        let next = map
            .partition_base
            .get(j + 1)
            .copied()
            .unwrap_or(map.task_refs.len());
        for e in &automaton.edges {
            match e.sync {
                Sync::Internal => {}
                Sync::Recv(ch) => assert!(
                    ch == map.ready_ch[j]
                        || ch == map.finished_ch[j]
                        || ch == map.wakeup_ch[j]
                        || ch == map.sleep_ch[j],
                    "TS {j} receives unexpected channel"
                ),
                Sync::Send(ch) => assert!(
                    (base..next).any(|g| ch == map.exec_ch[g] || ch == map.preempt_ch[g]),
                    "TS {j} sends unexpected channel"
                ),
            }
        }
    }

    for &(_, aid) in &map.cs_automata {
        let automaton = network.automaton(aid);
        for e in &automaton.edges {
            match e.sync {
                Sync::Internal => {}
                Sync::Send(ch) => assert!(
                    map.wakeup_ch.contains(&ch) || map.sleep_ch.contains(&ch),
                    "CS sends unexpected channel"
                ),
                Sync::Recv(_) => panic!("CS never receives"),
            }
        }
    }

    for (h, &aid) in map.link_automata.iter().enumerate() {
        let automaton = network.automaton(aid);
        let _ = h;
        for e in &automaton.edges {
            match e.sync {
                Sync::Internal => {}
                Sync::Recv(ch) => assert!(
                    map.send_ch.contains(&ch),
                    "link receives unexpected channel"
                ),
                Sync::Send(ch) => assert!(
                    map.receive_ch.contains(&ch),
                    "link sends unexpected channel"
                ),
            }
        }
    }
}

#[test]
fn shared_variable_arrays_match_fig1() {
    let model = SystemModel::build(&config()).unwrap();
    let network = model.network();
    for name in ["is_ready", "is_failed", "prio", "abs_deadline", "nrel"] {
        let arr = network.array_by_name(name).expect(name);
        assert_eq!(network.array_len(arr), 4, "{name} has one slot per task");
    }
    let data = network.array_by_name("is_data_ready").unwrap();
    assert_eq!(network.array_len(data), 1, "one slot per message");
}

#[test]
fn network_dot_export_shows_wiring() {
    let model = SystemModel::build(&config()).unwrap();
    let dot = swa::nsa::dot::network_to_dot(model.network());
    assert!(dot.contains("digraph"));
    // TS -> T wiring on exec channels appears.
    assert!(dot.contains("exec_0"));
    // CS -> TS wiring appears.
    assert!(dot.contains("wakeup_0"));
}
