//! XML interface round-trip and rejection tests.
//!
//! The Sect. 4 integration loop depends on the XML interface being a
//! *lossless* encoding: `configuration_from_xml(configuration_to_xml(c))`
//! must reproduce `c` structurally for any configuration the rest of the
//! toolchain can produce. The suite checks that over randomized generated
//! workloads (including topologies), over hand-built configurations that
//! exercise every scheduler kind and task shape, and — the other half of
//! the contract — that malformed documents are rejected with *typed*
//! errors ([`XmlError::Parse`] / [`XmlError::Schema`] /
//! [`XmlError::UnknownReference`]), never mis-parsed into a different
//! configuration.

use swa::ima::{
    Configuration, CoreRef, CoreType, CoreTypeId, Message, Module, ModuleId, Partition,
    PartitionId, SchedulerKind, Task, TaskRef, Window,
};
use swa::workload::rng::Rng64;
use swa::workload::{industrial_config, IndustrialSpec};
use swa::xmlio::{
    configuration_from_xml, configuration_to_xml, configuration_with_topology_from_xml,
    trace_from_xml, XmlError,
};

/// Randomized specs spanning the generator's parameter space (sizes,
/// period menus, utilizations, message densities).
fn random_spec(seed: u64) -> IndustrialSpec {
    let mut rng = Rng64::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let menus: [&[i64]; 3] = [&[50, 100, 200, 400], &[25, 50, 100], &[40, 80, 160, 320]];
    IndustrialSpec {
        modules: 1 + rng.gen_range(3),
        cores_per_module: 1 + rng.gen_range(2),
        partitions_per_core: 1 + rng.gen_range(3),
        tasks_per_partition: 1 + rng.gen_range(4),
        core_utilization: 0.2 + rng.gen_f64() * 0.8,
        periods: menus[rng.gen_range(menus.len())].to_vec(),
        message_fraction: rng.gen_f64() * 0.5,
        seed,
    }
}

#[test]
fn randomized_configurations_roundtrip_structurally() {
    for seed in 0..40 {
        let config = industrial_config(&random_spec(seed));
        let xml = configuration_to_xml(&config);
        let restored = configuration_from_xml(&xml)
            .unwrap_or_else(|e| panic!("seed {seed}: generated XML rejected: {e}"));
        assert_eq!(restored, config, "seed {seed}: round-trip changed the configuration");
        // A second trip is a fixed point (no drift through re-encoding).
        assert_eq!(configuration_to_xml(&restored), xml, "seed {seed}: re-encoding drifted");
    }
}

/// Every scheduler kind, constrained deadlines, offsets, per-core-type
/// WCET vectors and both message delay kinds in one configuration.
fn kitchen_sink_config() -> Configuration {
    let ct_a = CoreTypeId::from_raw(0);
    Configuration {
        core_types: vec![CoreType::new("fast"), CoreType::new("slow")],
        modules: vec![
            Module::homogeneous("M0", 2, ct_a),
            Module::homogeneous("M1", 1, CoreTypeId::from_raw(1)),
        ],
        partitions: vec![
            Partition::new(
                "fpps",
                SchedulerKind::Fpps,
                vec![
                    Task::new("a", 2, vec![2, 4], 50).with_deadline(30).with_offset(5),
                    Task::new("b", 1, vec![3, 6], 100),
                ],
            ),
            Partition::new(
                "fpnps",
                SchedulerKind::Fpnps,
                vec![Task::new("c", 1, vec![4, 8], 100)],
            ),
            Partition::new(
                "edf",
                SchedulerKind::Edf,
                vec![
                    Task::new("d", 1, vec![2, 2], 50).with_deadline(20),
                    Task::new("e", 1, vec![2, 2], 50).with_deadline(40),
                ],
            ),
            Partition::new(
                "rr",
                SchedulerKind::RoundRobin { quantum: 3 },
                vec![Task::new("f", 1, vec![5, 5], 100)],
            ),
        ],
        binding: vec![
            CoreRef::new(ModuleId::from_raw(0), 0),
            CoreRef::new(ModuleId::from_raw(0), 1),
            CoreRef::new(ModuleId::from_raw(1), 0),
            CoreRef::new(ModuleId::from_raw(0), 0),
        ],
        windows: vec![
            vec![Window::new(0, 20), Window::new(50, 70)],
            vec![Window::new(0, 40)],
            vec![Window::new(10, 35)],
            vec![Window::new(25, 45)],
        ],
        messages: vec![
            Message::new(
                "intra",
                TaskRef::new(PartitionId::from_raw(0), 1),
                TaskRef::new(PartitionId::from_raw(3), 0),
                1,
                12,
            ),
            Message::new(
                "inter",
                TaskRef::new(PartitionId::from_raw(0), 1),
                TaskRef::new(PartitionId::from_raw(1), 0),
                2,
                15,
            ),
        ],
    }
}

#[test]
fn every_scheduler_kind_and_task_shape_roundtrips() {
    let config = kitchen_sink_config();
    let xml = configuration_to_xml(&config);
    let restored = configuration_from_xml(&xml).expect("kitchen-sink XML parses");
    assert_eq!(restored, config);
}

/// Helper: the document must be rejected, and with the expected error
/// variant — not silently coerced into some other configuration.
fn assert_rejected(xml: &str, what: &str, check: impl Fn(&XmlError) -> bool) {
    match configuration_from_xml(xml) {
        Ok(_) => panic!("{what}: malformed document was accepted"),
        Err(e) => assert!(check(&e), "{what}: wrong error variant: {e:?}"),
    }
}

#[test]
fn truncated_documents_are_parse_errors() {
    let xml = configuration_to_xml(&industrial_config(&random_spec(1)));
    // Cut the document mid-element at several depths.
    for cut in [xml.len() / 4, xml.len() / 2, xml.len() - 10] {
        assert_rejected(&xml[..cut], "truncated document", |e| {
            matches!(e, XmlError::Parse { .. } | XmlError::Schema { .. })
        });
    }
}

#[test]
fn wrong_root_element_is_a_schema_error() {
    assert_rejected("<notaconfig/>", "wrong root", |e| {
        matches!(e, XmlError::Schema { .. })
    });
}

#[test]
fn dangling_references_are_typed() {
    // A core whose type was never declared.
    let xml = r#"<configuration>
        <coreTypes><coreType name="generic"/></coreTypes>
        <modules><module name="M0"><core name="c0" type="missing"/></module></modules>
        <partitions/>
    </configuration>"#;
    assert_rejected(xml, "unknown core type", |e| {
        matches!(e, XmlError::UnknownReference { kind: "core type", .. })
    });

    // A partition bound to a module that does not exist.
    let xml = r#"<configuration>
        <coreTypes><coreType name="generic"/></coreTypes>
        <modules><module name="M0"><core name="c0" type="generic"/></module></modules>
        <partitions>
            <partition name="P0" scheduler="FPPS" module="M9" core="0">
                <task name="t" priority="1" period="50" wcet="1"/>
            </partition>
        </partitions>
    </configuration>"#;
    assert_rejected(xml, "unknown module", |e| {
        matches!(e, XmlError::UnknownReference { .. })
    });

    // A message whose sender task does not exist.
    let xml = r#"<configuration>
        <coreTypes><coreType name="generic"/></coreTypes>
        <modules><module name="M0"><core name="c0" type="generic"/></module></modules>
        <partitions>
            <partition name="P0" scheduler="FPPS" module="M0" core="0">
                <task name="t" priority="1" period="50" wcet="1"/>
            </partition>
        </partitions>
        <messages>
            <message name="vl0" from="ghost" to="t" memDelay="1" netDelay="5"/>
        </messages>
    </configuration>"#;
    assert_rejected(xml, "unknown message endpoint", |e| {
        matches!(e, XmlError::UnknownReference { .. })
    });
}

#[test]
fn bad_attribute_values_are_schema_errors() {
    // Non-numeric period.
    let xml = r#"<configuration>
        <coreTypes><coreType name="generic"/></coreTypes>
        <modules><module name="M0"><core name="c0" type="generic"/></module></modules>
        <partitions>
            <partition name="P0" scheduler="FPPS" module="M0" core="0">
                <task name="t" priority="1" period="soon" wcet="1"/>
            </partition>
        </partitions>
    </configuration>"#;
    assert_rejected(xml, "non-numeric period", |e| {
        matches!(e, XmlError::Schema { .. })
    });

    // Unknown scheduler kind.
    let xml = r#"<configuration>
        <coreTypes><coreType name="generic"/></coreTypes>
        <modules><module name="M0"><core name="c0" type="generic"/></module></modules>
        <partitions>
            <partition name="P0" scheduler="LOTTERY" module="M0" core="0">
                <task name="t" priority="1" period="50" wcet="1"/>
            </partition>
        </partitions>
    </configuration>"#;
    assert_rejected(xml, "unknown scheduler", |e| {
        matches!(e, XmlError::Schema { .. })
    });

    // A missing required attribute.
    let xml = r#"<configuration>
        <coreTypes><coreType name="generic"/></coreTypes>
        <modules><module name="M0"><core name="c0" type="generic"/></module></modules>
        <partitions>
            <partition name="P0" scheduler="FPPS" module="M0" core="0">
                <task name="t" priority="1" wcet="1"/>
            </partition>
        </partitions>
    </configuration>"#;
    assert_rejected(xml, "missing period", |e| matches!(e, XmlError::Schema { .. }));
}

/// Out-of-range window bounds parse (they are structurally valid XML) but
/// must then be rejected by domain validation — the two layers together
/// never let such a configuration through.
#[test]
fn out_of_range_windows_fail_domain_validation() {
    let mut config = industrial_config(&random_spec(2));
    config.windows[0] = vec![Window::new(-5, 10)];
    let xml = configuration_to_xml(&config);
    let reparsed = configuration_from_xml(&xml).expect("structurally valid XML parses");
    assert_eq!(reparsed, config);
    assert!(
        reparsed.validate().is_err(),
        "negative window offset must fail validation"
    );
}

#[test]
fn topologies_roundtrip_with_their_configuration() {
    // The switched-network example from the examples dir, rebuilt small:
    // generated config + a topology serialized alongside it.
    let config = industrial_config(&random_spec(3));
    let xml = swa::xmlio::configuration_with_topology_to_xml(&config, None);
    let (restored, topo) = configuration_with_topology_from_xml(&xml).expect("parses");
    assert_eq!(restored, config);
    assert!(topo.is_none(), "no topology section means none comes back");
}

#[test]
fn malformed_traces_are_rejected_with_typed_errors() {
    assert!(matches!(
        trace_from_xml("<trace><event type=\"EX\""),
        Err(XmlError::Parse { .. })
    ));
    assert!(matches!(
        trace_from_xml("<nottrace/>"),
        Err(XmlError::Schema { .. })
    ));
    assert!(matches!(
        trace_from_xml(
            "<trace><event type=\"TELEPORT\" partition=\"0\" task=\"0\" job=\"0\" time=\"1\"/></trace>"
        ),
        Err(XmlError::Schema { .. })
    ));
}
